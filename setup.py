"""Legacy setup shim; all metadata lives in pyproject.toml.

Kept so ``pip install -e . --no-build-isolation`` works in offline
environments with older pip versions that still invoke setup.py.
"""

from setuptools import setup

setup()
