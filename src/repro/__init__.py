"""repro — reproduction of "Living in Parallel Realities: Co-Existing
Schema Versions with a Bidirectional Database Evolution Language"
(Herrmann, Voigt, Behrend, Rausch, Lehner; SIGMOD 2017).

Public entry points:

- :class:`InVerDa` — the engine: execute BiDEL scripts, connect to any
  schema version, and migrate the physical table schema with one call.
- :func:`connect` — a PEP-249 (DB-API) connection to one schema version:
  cursors, SQL with ``?`` parameter binding, commit/rollback.
- :func:`open` — reopen a SQLite file whose catalog was persisted by a
  previous process: replays the stored BiDEL log, verifies fingerprints,
  and returns a ready engine serving every schema version again.
- :func:`serve` / :func:`connect_remote` — the same connection surface
  over TCP: a threaded wire-protocol server and its client driver.
- :func:`parse_script` / :func:`parse_smo` — the BiDEL parser.
- :mod:`repro.verification` — formal (symbolic) and runtime
  bidirectionality checks.
- :mod:`repro.workloads` — TasKy, Wikimedia, and micro-benchmark scenarios.
- :mod:`repro.bench` — the harness regenerating every table and figure of
  the paper's evaluation (``python -m repro.bench --list``).
"""

from repro.bidel import parse_script, parse_smo
from repro.core import InVerDa, VersionConnection
from repro.errors import ReproError
from repro.persist.recovery import open_database as open
from repro.server import ReproServer, connect_remote, serve
from repro.sql import Connection, Cursor, connect

__version__ = "1.5.0"

__all__ = [
    "InVerDa",
    "connect",
    "open",
    "connect_remote",
    "serve",
    "ReproServer",
    "Connection",
    "Cursor",
    "VersionConnection",
    "parse_script",
    "parse_smo",
    "ReproError",
    "__version__",
]
