"""Online MATERIALIZE: the journaled backfill / change-capture plan.

The offline migration (:func:`repro.backend.codegen.migration_statements`)
copies every new physical table in one transaction under the engine's
catalog write lock — a stop-the-world outage proportional to data volume.
The online pipeline splits the same move into three phases:

1. **prepare** — create one (empty) backfill staging table per new
   physical data table, a single change-capture table
   (``_repro_backfill_dirty``), and ``AFTER INSERT/UPDATE/DELETE``
   capture triggers on every physical table the moved views read from,
   then journal the move in ``_repro_catalog_backfill`` — all in one
   transaction, under a brief write-lock window.
2. **backfill** — chunked keyset-paginated copies from the *live* views
   into the staging tables, each chunk its own transaction holding only
   the read side of the engine RWLock, with the journal cursor advanced
   in the same transaction.  Concurrent writes keep flowing: the capture
   triggers record every touched row identifier, and each chunk repairs
   the staged rows those identifiers name, so staging is never more than
   one chunk stale.
3. **cutover** — a brief write-lock window that drains the capture
   table, copies the keyset tail, verifies counts, tears the capture
   machinery down, and reuses the offline swap path (with the staged
   tables standing in for the one-shot copies).

**Trackability.**  Incremental repair keys staged rows by the row
identifier ``p``.  That is sound exactly when the moved view *preserves*
identifiers — no SMO on its storage route generates fresh ones (shared
ID auxiliary tables, :func:`~repro.backend.handlers.has_shared_aux`).
Targets routed through an identifier-generating SMO are planned as
non-trackable: they skip the chunked copy and are staged in full during
cutover (bounded work under the write lock, same as the offline path,
but only for those tables).  Auxiliary tables are always rebuilt at
cutover by the reused offline machinery.

All transitional objects are named ``_repro_bf…`` /
``_repro_backfill_dirty`` so :func:`codegen.generated_object_names`
(``v%`` / ``tg__%``) never drops them with the delta code, and the
static verifier can bound them against the journal (RPC107).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.backend.emit import q, qcols, table_ddl
from repro.backend.handlers import has_shared_aux
from repro.catalog.materialization import physical_table_versions
from repro.errors import CatalogError
from repro.util.naming import physical_name

if TYPE_CHECKING:  # pragma: no cover
    from repro.catalog.genealogy import SmoInstance, TableVersion
    from repro.core.engine import InVerDa

#: Rows copied per backfill chunk transaction unless overridden.
DEFAULT_CHUNK_ROWS = 4096

#: Name prefix shared by every transitional backfill object.
TRANSITIONAL_PREFIX = "_repro_bf"

#: The single change-capture table (row identifiers touched by live
#: writes during a backfill, in arrival order).
DIRTY_TABLE = "_repro_backfill_dirty"

_CAPTURE_OPS = ("INSERT", "UPDATE", "DELETE")


def is_transitional(name: str) -> bool:
    """Is ``name`` an online-backfill object (staging table, capture
    trigger, or the dirty table)?"""
    return name.startswith(TRANSITIONAL_PREFIX) or name == DIRTY_TABLE


def stage_name(tv: "TableVersion") -> str:
    return physical_name(TRANSITIONAL_PREFIX, str(tv.uid), tv.name)


def capture_trigger_name(table: str, op: str) -> str:
    return physical_name(TRANSITIONAL_PREFIX, "cap", table, op.lower())


@dataclass
class TableMove:
    """One new physical data table in the move."""

    uid: int
    name: str
    data: str  # final physical data table name
    stage: str  # backfill staging table
    view: str  # the live view serving the table version's extent
    columns: list[str]
    trackable: bool


@dataclass
class MovePlan:
    """Everything the backfill needs, reconstructible from the journal."""

    smos: list[int]  # sorted target SMO uids (the materialization schema)
    tables: list[TableMove]
    sources: list[str]  # physical tables carrying capture triggers

    def trackable(self) -> list[TableMove]:
        return [move for move in self.tables if move.trackable]

    def staged_map(self) -> dict[int, str]:
        """tv uid -> pre-staged table, for the offline swap generator."""
        return {move.uid: move.stage for move in self.trackable()}

    def transitional_names(self) -> set[str]:
        names = {DIRTY_TABLE}
        names.update(move.stage for move in self.trackable())
        for table in self.sources:
            for op in _CAPTURE_OPS:
                names.add(capture_trigger_name(table, op))
        return names


@dataclass
class OnlineMove:
    """In-memory progress of one running (or resumed) move."""

    plan: MovePlan
    chunk_rows: int = DEFAULT_CHUNK_ROWS
    cursors: dict[str, int] = field(default_factory=dict)
    chunks: int = 0
    rows: int = 0


# ---------------------------------------------------------------------------
# Planning
# ---------------------------------------------------------------------------


def _route_walk(
    engine: "InVerDa", tv: "TableVersion"
) -> tuple[list["SmoInstance"], list["TableVersion"]]:
    """(SMOs, physical table versions) on ``tv``'s current read route,
    walked the same way the code generator installs views — siblings
    included, so the result over-approximates what the view touches
    (conservative for both trackability and capture coverage)."""
    from repro.backend import codegen

    seen: set[int] = set()
    smo_uids: set[int] = set()
    smos: list[SmoInstance] = []
    physicals: list[TableVersion] = []

    def walk(t: "TableVersion") -> None:
        if t.uid in seen:
            return
        seen.add(t.uid)
        route = codegen.route_for(engine, t)
        if route is None:
            physicals.append(t)
            return
        smo, direction = route
        if smo.uid not in smo_uids:
            smo_uids.add(smo.uid)
            smos.append(smo)
        neighbors = smo.targets if direction == "forward" else smo.sources
        for neighbor in neighbors:
            walk(neighbor)
        for sibling in (*smo.sources, *smo.targets):
            walk(sibling)

    walk(tv)
    return smos, physicals


def build_plan(engine: "InVerDa", schema: frozenset["SmoInstance"]) -> MovePlan:
    """Plan the move of the physical representation to ``schema`` from
    the *current* catalog state (deterministic: the same catalog and
    target always plan the same object names, which is what lets a
    resumed move pick up a journaled plan)."""
    tables: list[TableMove] = []
    sources: set[str] = set()
    for tv in physical_table_versions(engine.genealogy, schema):
        smos, physicals = _route_walk(engine, tv)
        trackable = not any(has_shared_aux(smo) for smo in smos)
        if trackable:
            for ptv in physicals:
                sources.add(ptv.data_table_name)
            for smo in smos:
                semantics = smo.semantics
                if semantics is None:
                    continue
                roles = set(semantics.aux_shared()) | set(
                    semantics.aux_tgt() if smo.materialized else semantics.aux_src()
                )
                for role in roles:
                    name = smo.aux_table_name(role)
                    if engine.database.has_table(name):
                        sources.add(name)
        tables.append(
            TableMove(
                uid=tv.uid,
                name=tv.name,
                data=tv.data_table_name,
                stage=stage_name(tv),
                view=tv.view_name,
                columns=list(tv.schema.column_names),
                trackable=trackable,
            )
        )
    return MovePlan(
        smos=sorted(smo.uid for smo in schema),
        tables=tables,
        sources=sorted(sources),
    )


def plan_payload(plan: MovePlan) -> dict:
    """The journal serialization of a plan."""
    return {
        "smos": plan.smos,
        "sources": plan.sources,
        "tables": [
            {
                "uid": move.uid,
                "name": move.name,
                "data": move.data,
                "stage": move.stage,
                "view": move.view,
                "columns": move.columns,
                "trackable": move.trackable,
            }
            for move in plan.tables
        ],
    }


def plan_from_payload(payload: dict) -> MovePlan:
    try:
        return MovePlan(
            smos=[int(uid) for uid in payload["smos"]],
            tables=[
                TableMove(
                    uid=int(entry["uid"]),
                    name=entry["name"],
                    data=entry["data"],
                    stage=entry["stage"],
                    view=entry["view"],
                    columns=list(entry["columns"]),
                    trackable=bool(entry["trackable"]),
                )
                for entry in payload["tables"]
            ],
            sources=list(payload["sources"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CatalogError(f"corrupt backfill journal plan: {exc}") from exc


# ---------------------------------------------------------------------------
# Phase 1: prepare
# ---------------------------------------------------------------------------


def prepare_statements(plan: MovePlan) -> list[str]:
    """DDL installing the capture machinery and empty staging tables."""
    statements = [
        f"DROP TABLE IF EXISTS {q(DIRTY_TABLE)}",
        f"CREATE TABLE {q(DIRTY_TABLE)} "
        "(seq INTEGER PRIMARY KEY, p INTEGER NOT NULL)",
    ]
    for move in plan.trackable():
        statements.append(f"DROP TABLE IF EXISTS {q(move.stage)}")
        statements.append(table_ddl(move.stage, move.columns))
    record = f"INSERT INTO {q(DIRTY_TABLE)} (p) VALUES"
    for table in plan.sources:
        for op in _CAPTURE_OPS:
            rows = {"INSERT": ["NEW"], "DELETE": ["OLD"], "UPDATE": ["NEW", "OLD"]}[op]
            body = " ".join(f"{record} ({var}.p);" for var in rows)
            statements.append(
                f"CREATE TRIGGER IF NOT EXISTS "
                f"{q(capture_trigger_name(table, op))} AFTER {op} ON {q(table)} "
                f"BEGIN {body} END"
            )
    return statements


# ---------------------------------------------------------------------------
# Phase 2: backfill chunks
# ---------------------------------------------------------------------------


def chunk_copy_sql(move: TableMove, cursor: int, limit: int) -> str:
    """Copy the next keyset page ``p > cursor`` into the staging table."""
    columns = ", ".join(["p", *qcols(move.columns)])
    return (
        f"INSERT INTO {q(move.stage)} ({columns}) "
        f"SELECT {columns} FROM {q(move.view)} "
        f"WHERE p > {int(cursor)} ORDER BY p LIMIT {int(limit)}"
    )


def staged_max_sql(move: TableMove) -> str:
    return f"SELECT MAX(p) FROM {q(move.stage)}"


def dirty_bound_sql() -> str:
    return f"SELECT COALESCE(MAX(seq), 0) FROM {q(DIRTY_TABLE)}"


def repair_statements(
    plan: MovePlan, cursors: dict[str, int], bound: int, *, final: bool = False
) -> list[str]:
    """Re-derive every staged row whose identifier the capture triggers
    recorded up to ``bound``, then forget those capture rows.  Bounded to
    the chunk cursor during the backfill (rows beyond it arrive with a
    later chunk); unbounded at cutover (``final=True``)."""
    dirty = f"SELECT p FROM {q(DIRTY_TABLE)} WHERE seq <= {int(bound)}"
    statements: list[str] = []
    for move in plan.trackable():
        fence = "" if final else f" AND p <= {int(cursors.get(move.stage, 0))}"
        columns = ", ".join(["p", *qcols(move.columns)])
        statements.append(
            f"DELETE FROM {q(move.stage)} WHERE p IN ({dirty})"
        )
        statements.append(
            f"INSERT INTO {q(move.stage)} ({columns}) "
            f"SELECT {columns} FROM {q(move.view)} WHERE p IN ({dirty}){fence}"
        )
    statements.append(f"DELETE FROM {q(DIRTY_TABLE)} WHERE seq <= {int(bound)}")
    return statements


# ---------------------------------------------------------------------------
# Phase 3: cutover
# ---------------------------------------------------------------------------


def tail_copy_statements(plan: MovePlan, cursors: dict[str, int]) -> list[str]:
    """Copy everything beyond each chunk cursor (runs under the write
    lock, so the tail is final)."""
    statements = []
    for move in plan.trackable():
        columns = ", ".join(["p", *qcols(move.columns)])
        statements.append(
            f"INSERT INTO {q(move.stage)} ({columns}) "
            f"SELECT {columns} FROM {q(move.view)} "
            f"WHERE p > {int(cursors.get(move.stage, 0))}"
        )
    return statements


def count_check_sql(move: TableMove) -> tuple[str, str]:
    return (
        f"SELECT COUNT(*) FROM {q(move.stage)}",
        f"SELECT COUNT(*) FROM {q(move.view)}",
    )


def capture_teardown_statements(plan: MovePlan) -> list[str]:
    """Drop the capture triggers and the dirty table (staging tables are
    renamed into place by the swap, or dropped by ``rollback``)."""
    statements = []
    for table in plan.sources:
        for op in _CAPTURE_OPS:
            statements.append(
                f"DROP TRIGGER IF EXISTS {q(capture_trigger_name(table, op))}"
            )
    statements.append(f"DROP TABLE IF EXISTS {q(DIRTY_TABLE)}")
    return statements


def rollback_statements(plan: MovePlan) -> list[str]:
    """Undo the prepare phase entirely: capture machinery and staging."""
    statements = capture_teardown_statements(plan)
    for move in plan.trackable():
        statements.append(f"DROP TABLE IF EXISTS {q(move.stage)}")
    return statements
