"""The engine <-> backend synchronisation contract.

An execution backend mirrors the engine's catalog inside an external DBMS.
The engine remains the single owner of the *catalog* (schema versions,
SMO instances, materialization flags); an attached backend owns the *data
plane*.  The engine notifies the backend at every catalog transition so the
backend can regenerate its delta code:

- :meth:`ExecutionBackend.on_evolution` after a ``CREATE SCHEMA VERSION``
  committed new table versions and SMO instances to the catalog;
- :meth:`ExecutionBackend.on_materialize` when a ``MATERIALIZE`` statement
  moves the physical table schema (called *before* the engine mutates its
  own in-memory storage, so the backend migrates from its current state);
- :meth:`ExecutionBackend.on_drop` after ``DROP SCHEMA VERSION`` removed
  SMO instances from the catalog.

Catalog transitions are pool-wide events: the engine takes its catalog
write lock (draining every in-flight session statement), calls
:meth:`ExecutionBackend.quiesce` so the backend can end every session's
open transaction (DDL is not transactional), and only then runs the
hooks above — so delta code is regenerated exactly once and republished
atomically to all sessions.

Once DML flows through an attached backend, the engine's in-memory tables
no longer track the data (they are a snapshot from attach time); reads and
writes must go through backend sessions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover
    from repro.catalog.genealogy import SmoInstance
    from repro.catalog.versions import SchemaVersion


@runtime_checkable
class ExecutionBackend(Protocol):
    """What the engine expects of an attached execution backend."""

    def on_evolution(self, version: "SchemaVersion") -> None:
        """A new schema version (and its SMO instances) entered the catalog."""

    def on_materialize(self, schema: frozenset["SmoInstance"]) -> None:
        """The materialization schema is about to become ``schema``; stage
        and swap the backend's physical storage in place (the catalog still
        carries the old materialization flags at this point)."""

    def after_materialize(self) -> None:
        """The catalog now carries the new materialization flags; regenerate
        views and triggers."""

    def on_drop(self, version_name: str, removed: list["SmoInstance"]) -> None:
        """A schema version was dropped; ``removed`` SMOs left the catalog."""

    def quiesce(self) -> None:
        """A catalog transition is imminent (the engine holds the catalog
        write lock): commit every session's open transaction so the
        transition starts from a clean, fully committed data plane."""

    def close(self) -> None:
        """Release the backend's resources."""
