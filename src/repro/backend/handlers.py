"""Per-SMO compilation of bidirectional mappings into SQLite delta code.

Each handler knows how to render, for one SMO instance under the current
materialization,

- the ``SELECT`` body of a derived table version's view (reads), and
- the statement list of its ``INSTEAD OF`` trigger programs (writes),

mirroring the engine's native semantics: the rule-backed SMOs follow their
``propagate_forward``/``propagate_backward`` fast paths, the identifier
generating SMOs (FK and condition DECOMPOSE/JOIN) follow the same
recorded-id / payload-reuse / fresh-allocation decision procedure, with
identifiers drawn from the backend's sequence table.

The engine also maintains *shared* auxiliary tables (the ID tables) of SMOs
that are not on a write's storage route; handlers expose the same programs
with ``apply_data=False`` (only shared-aux effects) and an extent-level
:meth:`SmoHandler.repair_statements` used for distant branches and for the
eager identifier initialization at evolution time.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.backend import emit
from repro.backend.emit import (
    all_null,
    delete_row,
    empty_relation,
    ident,
    new_refs,
    not_all_null,
    q,
    qcols,
    render_expression,
    rows_differ,
    seq_value,
    upsert_row,
)
from repro.bidel.smo.columns import AddColumnSemantics, DropColumnSemantics
from repro.bidel.smo.conditional import (
    DecomposeCondSemantics,
    InnerJoinCondSemantics,
)
from repro.bidel.smo.foreign_key import DecomposeFkSemantics, OuterJoinFkSemantics
from repro.bidel.smo.partition import MergeSemantics, SplitSemantics
from repro.bidel.smo.simple import (
    CreateTableSemantics,
    DropTableSemantics,
    RenameColumnSemantics,
    RenameTableSemantics,
)
from repro.bidel.smo.vertical import (
    DecomposePkSemantics,
    InnerJoinPkSemantics,
    OuterJoinPkSemantics,
)
from repro.catalog.genealogy import SmoInstance, TableVersion
from repro.errors import BackendError
from repro.expr.ast import Expression
from repro.sqlgen.views import branches_for_rules, select_sql_for_rules

# The engine draws every identifier (tuple ids and generated FK/condition
# ids) from one global sequence; the backend mirrors that.
GLOBAL_SEQUENCE = "p"


@dataclass
class HandlerContext:
    """Catalog-aware naming and storage-state lookups for handlers."""

    engine: object  # InVerDa; duck-typed to avoid an import cycle

    def view(self, tv: TableVersion) -> str:
        return tv.view_name

    def aux_is_stored(self, smo: SmoInstance, role: str) -> bool:
        semantics = smo.semantics
        if role in semantics.aux_shared():
            return True
        if role in semantics.aux_src():
            return not smo.materialized
        if role in semantics.aux_tgt():
            return smo.materialized
        return False

    def aux_schema(self, smo: SmoInstance, role: str):
        semantics = smo.semantics
        for group in (semantics.aux_shared(), semantics.aux_src(), semantics.aux_tgt()):
            if role in group:
                return group[role]
        raise BackendError(f"SMO {smo!r} has no aux role {role!r}")

    def aux_ref(self, smo: SmoInstance, role: str) -> str:
        """Table reference for an aux role: its physical table when stored
        under the current materialization, an empty relation otherwise."""
        if self.aux_is_stored(smo, role):
            return smo.aux_table_name(role)
        return empty_relation(self.aux_schema(smo, role).column_names)


def cond_true(expression: Expression, refs: dict[str, str]) -> str:
    return f"({render_expression(expression, refs)}) IS TRUE"


def cond_not_true(expression: Expression, refs: dict[str, str]) -> str:
    return f"({render_expression(expression, refs)}) IS NOT TRUE"


def payload_match(left: Sequence[str], right: Sequence[str]) -> str:
    """Null-safe conjunction ``l1 IS r1 AND ...`` (``1`` when empty)."""
    if not left:
        return "1"
    return " AND ".join(ident(a, b) for a, b in zip(left, right))


class SmoHandler:
    """Base: compile one SMO instance's delta code."""

    def __init__(self, ctx: HandlerContext, smo: SmoInstance):
        self.ctx = ctx
        self.smo = smo
        self.sem = smo.semantics

    # -- helpers -----------------------------------------------------------

    def side_of(self, tv: TableVersion) -> str:
        return "source" if tv in self.smo.sources else "target"

    def role_of(self, tv: TableVersion) -> str:
        if tv in self.smo.sources:
            return self.sem.source_roles[self.smo.sources.index(tv)]
        return self.sem.target_roles[self.smo.targets.index(tv)]

    def _role_tables(self) -> tuple[dict[str, str], dict[str, tuple[str, ...]]]:
        """Role -> SQL reference and role -> payload columns, with data
        roles resolved to views and aux roles to stored-or-empty."""
        names: dict[str, str] = {}
        columns: dict[str, tuple[str, ...]] = {}
        for role, tv in zip(self.sem.source_roles, self.smo.sources):
            names[role] = self.ctx.view(tv)
            columns[role] = tv.schema.column_names
        for role, tv in zip(self.sem.target_roles, self.smo.targets):
            names[role] = self.ctx.view(tv)
            columns[role] = tv.schema.column_names
        for group in (self.sem.aux_src(), self.sem.aux_tgt(), self.sem.aux_shared()):
            for role, schema in group.items():
                names[role] = self.ctx.aux_ref(self.smo, role)
                columns[role] = schema.column_names
        return names, columns

    # -- API ---------------------------------------------------------------

    def view_select(self, tv: TableVersion) -> str:
        """SELECT body deriving ``tv``'s visible extent from the far side."""
        raise NotImplementedError

    def view_branches(self, tv: TableVersion):
        """Structured UNION branches of :meth:`view_select`, for the view
        composer — or ``None`` when this SMO's view is hand-written SQL
        the composer must treat as opaque (flattening then falls back to
        referencing the generated view by name)."""
        return None

    def write_statements(
        self, tv: TableVersion, op: str, *, apply_data: bool = True
    ) -> list[str]:
        """Trigger-body statements propagating one row-level ``op``
        (INSERT/UPDATE/DELETE with NEW/OLD in scope) across this SMO.

        ``apply_data=False`` restricts the program to shared-aux (ID)
        maintenance — the off-route case."""
        raise NotImplementedError

    def repair_statements(self) -> list[str]:
        """Idempotent extent-level upkeep of shared aux tables (default:
        none)."""
        return []

    def stored_role_selects(self, will_materialize: bool) -> dict[str, str]:
        """Migration: SELECT statements deriving the contents of each side
        aux table of the *newly stored* side, reading pre-migration views."""
        return {}

    def put_tables(self) -> dict[str, tuple[str, ...]]:
        """Scratch/staging tables this SMO's trigger programs write into
        (name -> payload columns; every table also carries the ``p`` key)."""
        tables: dict[str, tuple[str, ...]] = {}
        for role, tv in zip(self.sem.source_roles, self.smo.sources):
            tables[self.smo.put_table_name(role)] = tv.schema.column_names
        for role, tv in zip(self.sem.target_roles, self.smo.targets):
            tables[self.smo.put_table_name(role)] = tv.schema.column_names
        tables[self.smo.put_table_name("scratch")] = ("a", "b", "rnk", "rnk2")
        return tables


class RuleBackedHandler(SmoHandler):
    """Views from the SMO's instantiated Datalog rule sets."""

    def _view_rules(self, tv: TableVersion):
        if self.side_of(tv) == "source":
            rules = self.sem.gamma_src_rules()
        else:
            rules = self.sem.gamma_tgt_rules()
        if rules is None:
            raise BackendError(f"SMO {self.smo!r} has no rules for {tv!r}")
        return rules

    def view_select(self, tv: TableVersion) -> str:
        names, columns = self._role_tables()
        return select_sql_for_rules(
            self.role_of(tv),
            self._view_rules(tv),
            table_names=names,
            table_columns=columns,
            head_columns=tv.schema.column_names,
        )

    def view_branches(self, tv: TableVersion):
        names, columns = self._role_tables()
        return branches_for_rules(
            self.role_of(tv),
            self._view_rules(tv),
            table_names=names,
            table_columns=columns,
            head_columns=tv.schema.column_names,
        )

    def stored_role_selects(self, will_materialize: bool) -> dict[str, str]:
        rules = (
            self.sem.gamma_tgt_rules() if will_materialize else self.sem.gamma_src_rules()
        )
        side_aux = self.sem.aux_tgt() if will_materialize else self.sem.aux_src()
        if rules is None or not side_aux:
            return {}
        names, columns = self._role_tables()
        out: dict[str, str] = {}
        for role, schema in side_aux.items():
            out[role] = select_sql_for_rules(
                role,
                rules,
                table_names=names,
                table_columns=columns,
                head_columns=schema.column_names,
            )
        return out


# ---------------------------------------------------------------------------
# Structurally trivial SMOs
# ---------------------------------------------------------------------------


class DropTableHandler(RuleBackedHandler):
    """DROP TABLE: identity between the retired table and its aux home."""

    def write_statements(self, tv, op, *, apply_data=True):
        if not apply_data:
            return []
        aux = self.smo.aux_table_name("R_retired")
        columns = tv.schema.column_names
        if op == "DELETE":
            return [delete_row(aux, "OLD.p")]
        return upsert_row(
            aux, columns, "NEW.p", list(new_refs(columns).values()), plain_table=True
        )


class IdentityHandler(RuleBackedHandler):
    """RENAME TABLE / RENAME COLUMN: positional identity on rows."""

    def write_statements(self, tv, op, *, apply_data=True):
        if not apply_data:
            return []
        if self.side_of(tv) == "source":
            other = self.smo.targets[0]
        else:
            other = self.smo.sources[0]
        if op == "DELETE":
            return [delete_row(self.ctx.view(other), "OLD.p")]
        values = [f"NEW.{q(c)}" for c in tv.schema.column_names]
        return upsert_row(
            self.ctx.view(other), other.schema.column_names, "NEW.p", values
        )


# ---------------------------------------------------------------------------
# ADD COLUMN / DROP COLUMN
# ---------------------------------------------------------------------------


class AddColumnHandler(RuleBackedHandler):
    def write_statements(self, tv, op, *, apply_data=True):
        if not apply_data:
            return []
        node = self.sem.node
        narrow_cols = self.smo.sources[0].schema.column_names
        wide_tv = self.smo.targets[0]
        if self.side_of(tv) == "source":
            # Forward (SMO materialized): compute the new column; the aux
            # override table B is not stored on this side.
            if op == "DELETE":
                return [delete_row(self.ctx.view(wide_tv), "OLD.p")]
            values = [f"NEW.{q(c)}" for c in narrow_cols]
            values.append(render_expression(node.function, new_refs(narrow_cols)))
            return upsert_row(
                self.ctx.view(wide_tv), wide_tv.schema.column_names, "NEW.p", values
            )
        # Backward (virtualized): narrow the row and record the written
        # value in the aux table B for repeatable reads.
        narrow_tv = self.smo.sources[0]
        aux = self.smo.aux_table_name("B")
        if op == "DELETE":
            return [
                delete_row(self.ctx.view(narrow_tv), "OLD.p"),
                delete_row(aux, "OLD.p"),
            ]
        statements = upsert_row(
            self.ctx.view(narrow_tv),
            narrow_cols,
            "NEW.p",
            [f"NEW.{q(c)}" for c in narrow_cols],
        )
        statements += upsert_row(
            aux, (node.column,), "NEW.p", [f"NEW.{q(node.column)}"], plain_table=True
        )
        return statements


class DropColumnHandler(RuleBackedHandler):
    def write_statements(self, tv, op, *, apply_data=True):
        if not apply_data:
            return []
        node = self.sem.node
        wide_tv = self.smo.sources[0]
        narrow_tv = self.smo.targets[0]
        narrow_cols = narrow_tv.schema.column_names
        if self.side_of(tv) == "source":
            # Forward (materialized): project the column away, keep its
            # value in the target-side aux table B.
            aux = self.smo.aux_table_name("B")
            if op == "DELETE":
                return [
                    delete_row(self.ctx.view(narrow_tv), "OLD.p"),
                    delete_row(aux, "OLD.p"),
                ]
            statements = upsert_row(
                self.ctx.view(narrow_tv),
                narrow_cols,
                "NEW.p",
                [f"NEW.{q(c)}" for c in narrow_cols],
            )
            statements += upsert_row(
                aux, (node.column,), "NEW.p", [f"NEW.{q(node.column)}"], plain_table=True
            )
            return statements
        # Backward (virtualized): widen with the DEFAULT function (the aux
        # override B is not stored on this side).
        if op == "DELETE":
            return [delete_row(self.ctx.view(wide_tv), "OLD.p")]
        index = self.smo.sources[0].schema.index_of(node.column)
        values = [f"NEW.{q(c)}" for c in narrow_cols]
        values.insert(index, render_expression(node.default, new_refs(narrow_cols)))
        return upsert_row(
            self.ctx.view(wide_tv), wide_tv.schema.column_names, "NEW.p", values
        )


# ---------------------------------------------------------------------------
# Key-preserving vertical SMOs (DECOMPOSE/OUTER JOIN/JOIN ON PK)
# ---------------------------------------------------------------------------


class _VerticalBase(RuleBackedHandler):
    """Shared write templates between the wide table and two key-sharing
    projections (the paper's omega-filling outer-join lens)."""

    def _wide_parts(self):
        lens = self.sem._lens
        wide_cols = lens.wide_schema.column_names
        first_cols = tuple(wide_cols[i] for i in lens.first_indices)
        second_cols = tuple(wide_cols[i] for i in lens.second_indices)
        return lens, wide_cols, first_cols, second_cols

    def _split_write(self, narrow_views: list[tuple[str, tuple[str, ...]]], op):
        """Write at the wide table: project both parts, suppressing all-null
        (omega) parts."""
        statements = []
        for view, columns in narrow_views:
            if op == "DELETE":
                statements.append(delete_row(view, "OLD.p"))
                continue
            refs = [f"NEW.{q(c)}" for c in columns]
            statements.append(delete_row(view, "NEW.p", guard=all_null(refs)))
            statements += upsert_row(
                view, columns, "NEW.p", refs, guard=not_all_null(refs)
            )
        return statements

    def _combine_write(
        self,
        wide_tv: TableVersion,
        own_cols: tuple[str, ...],
        other_view: str,
        other_cols: tuple[str, ...],
        put_other: str,
        op,
    ):
        """Write at one projection: re-derive the wide row together with the
        current other-side part (snapshotted first, because applying the
        wide row changes the derived other-side view)."""
        key = "OLD.p" if op == "DELETE" else "NEW.p"
        statements = [
            f"DELETE FROM {put_other}",
            f"INSERT INTO {put_other} SELECT p, {', '.join(qcols(other_cols))} "
            f"FROM {other_view} WHERE p IS {key}",
        ]
        wide_view = self.ctx.view(wide_tv)
        other_exists = f"EXISTS (SELECT 1 FROM {put_other})"

        def wide_values(own_sql: dict[str, str]) -> list[str]:
            values = []
            for column in wide_tv.schema.column_names:
                if column in own_sql:
                    values.append(own_sql[column])
                elif column in other_cols:
                    values.append(f"(SELECT {q(column)} FROM {put_other})")
                else:  # pragma: no cover - partitions cover all columns
                    values.append("NULL")
            return values

        if op == "DELETE":
            statements += upsert_row(
                wide_view,
                wide_tv.schema.column_names,
                key,
                wide_values({c: "NULL" for c in own_cols}),
                guard=other_exists,
            )
            statements.append(
                delete_row(wide_view, key, guard=f"NOT {other_exists}")
            )
            return statements
        statements += upsert_row(
            wide_view,
            wide_tv.schema.column_names,
            key,
            wide_values({c: f"NEW.{q(c)}" for c in own_cols}),
        )
        return statements


class DecomposePkHandler(_VerticalBase):
    def write_statements(self, tv, op, *, apply_data=True):
        if not apply_data:
            return []
        _lens, _wide, first_cols, second_cols = self._wide_parts()
        first_tv, second_tv = self.smo.targets
        if self.side_of(tv) == "source":
            return self._split_write(
                [
                    (self.ctx.view(first_tv), first_cols),
                    (self.ctx.view(second_tv), second_cols),
                ],
                op,
            )
        wide_tv = self.smo.sources[0]
        if tv is first_tv:
            own, other_tv, other_cols = first_cols, second_tv, second_cols
        else:
            own, other_tv, other_cols = second_cols, first_tv, first_cols
        return self._combine_write(
            wide_tv,
            own,
            self.ctx.view(other_tv),
            other_cols,
            self.smo.put_table_name(self.role_of(other_tv)),
            op,
        )


class OuterJoinPkHandler(_VerticalBase):
    def write_statements(self, tv, op, *, apply_data=True):
        if not apply_data:
            return []
        _lens, _wide, first_cols, second_cols = self._wide_parts()
        first_tv, second_tv = self.smo.sources
        wide_tv = self.smo.targets[0]
        if self.side_of(tv) == "target":
            return self._split_write(
                [
                    (self.ctx.view(first_tv), first_cols),
                    (self.ctx.view(second_tv), second_cols),
                ],
                op,
            )
        if tv is first_tv:
            own, other_tv, other_cols = first_cols, second_tv, second_cols
        else:
            own, other_tv, other_cols = second_cols, first_tv, first_cols
        return self._combine_write(
            wide_tv,
            own,
            self.ctx.view(other_tv),
            other_cols,
            self.smo.put_table_name(self.role_of(other_tv)),
            op,
        )


class InnerJoinPkHandler(RuleBackedHandler):
    """JOIN ON PK with the Rplus/Splus preservation aux tables."""

    def write_statements(self, tv, op, *, apply_data=True):
        if not apply_data:
            return []
        first_tv, second_tv = self.smo.sources
        joined_tv = self.smo.targets[0]
        if self.side_of(tv) == "target":
            # Backward (virtualized): split the joined row into both parts.
            first_cols = first_tv.schema.column_names
            second_cols = second_tv.schema.column_names
            if op == "DELETE":
                return [
                    delete_row(self.ctx.view(first_tv), "OLD.p"),
                    delete_row(self.ctx.view(second_tv), "OLD.p"),
                ]
            statements = upsert_row(
                self.ctx.view(first_tv),
                first_cols,
                "NEW.p",
                [f"NEW.{q(c)}" for c in first_cols],
            )
            statements += upsert_row(
                self.ctx.view(second_tv),
                second_cols,
                "NEW.p",
                [f"NEW.{q(c)}" for c in second_cols],
            )
            return statements
        # Forward (materialized): join with the other source's current row.
        own_tv = tv
        other_tv = second_tv if tv is first_tv else first_tv
        own_plus = self.smo.aux_table_name("Rplus" if tv is first_tv else "Splus")
        other_plus = self.smo.aux_table_name("Splus" if tv is first_tv else "Rplus")
        put_other = self.smo.put_table_name(self.role_of(other_tv))
        other_cols = other_tv.schema.column_names
        own_cols = own_tv.schema.column_names
        key = "OLD.p" if op == "DELETE" else "NEW.p"
        statements = [
            f"DELETE FROM {put_other}",
            f"INSERT INTO {put_other} SELECT p, {', '.join(qcols(other_cols))} "
            f"FROM {self.ctx.view(other_tv)} WHERE p IS {key}",
        ]
        other_exists = f"EXISTS (SELECT 1 FROM {put_other})"
        joined_view = self.ctx.view(joined_tv)
        if op == "DELETE":
            statements.append(delete_row(joined_view, key))
            statements.append(delete_row(own_plus, key))
            statements += upsert_row(
                other_plus,
                other_cols,
                key,
                [f"(SELECT {q(c)} FROM {put_other})" for c in other_cols],
                guard=other_exists,
                plain_table=True,
            )
            statements.append(
                delete_row(other_plus, key, guard=f"NOT {other_exists}")
            )
            return statements
        joined_values = []
        for column in joined_tv.schema.column_names:
            if column in own_cols:
                joined_values.append(f"NEW.{q(column)}")
            else:
                joined_values.append(f"(SELECT {q(column)} FROM {put_other})")
        statements += upsert_row(
            joined_view,
            joined_tv.schema.column_names,
            key,
            joined_values,
            guard=other_exists,
        )
        statements.append(delete_row(joined_view, key, guard=f"NOT {other_exists}"))
        statements += upsert_row(
            own_plus,
            own_cols,
            key,
            [f"NEW.{q(c)}" for c in own_cols],
            guard=f"NOT {other_exists}",
            plain_table=True,
        )
        statements.append(delete_row(own_plus, key, guard=other_exists))
        statements.append(delete_row(other_plus, key))
        return statements


# ---------------------------------------------------------------------------
# SPLIT / MERGE (horizontal partitioning)
# ---------------------------------------------------------------------------


class _PartitionBase(RuleBackedHandler):
    """Shared templates of the unified <-> partitioned lens."""

    def _lens(self):
        return self.sem._lens

    def _tvs(self):
        """(unified_tv, first_tv, second_tv|None) regardless of SMO kind."""
        if isinstance(self.sem, SplitSemantics):
            unified = self.smo.sources[0]
            first = self.smo.targets[0]
            second = self.smo.targets[1] if len(self.smo.targets) > 1 else None
        else:
            first, second = self.smo.sources
            unified = self.smo.targets[0]
        return unified, first, second

    def is_unified(self, tv: TableVersion) -> bool:
        unified, _first, _second = self._tvs()
        return tv is unified

    def _to_partitions(self, op) -> list[str]:
        """Write at the unified table; the partitioned side (including its
        Uprime aux) is stored."""
        lens = self._lens()
        _unified, first, second = self._tvs()
        columns = lens.schema.column_names
        uprime = self.smo.aux_table_name(lens.roles.uprime)
        if op == "DELETE":
            statements = [delete_row(self.ctx.view(first), "OLD.p")]
            if second is not None:
                statements.append(delete_row(self.ctx.view(second), "OLD.p"))
            statements.append(delete_row(uprime, "OLD.p"))
            return statements
        refs = new_refs(columns)
        values = [f"NEW.{q(c)}" for c in columns]
        cr = cond_true(lens.c_first, refs)
        not_cr = cond_not_true(lens.c_first, refs)
        statements = upsert_row(self.ctx.view(first), columns, "NEW.p", values, guard=cr)
        statements.append(delete_row(self.ctx.view(first), "NEW.p", guard=not_cr))
        if second is not None and lens.c_second is not None:
            cs = cond_true(lens.c_second, refs)
            not_cs = cond_not_true(lens.c_second, refs)
            statements += upsert_row(
                self.ctx.view(second), columns, "NEW.p", values, guard=cs
            )
            statements.append(delete_row(self.ctx.view(second), "NEW.p", guard=not_cs))
            neither = f"{not_cr} AND {not_cs}"
            either = f"({cr} OR {cs})"
        else:
            neither = not_cr
            either = cr
        statements += upsert_row(
            uprime, columns, "NEW.p", values, guard=neither, plain_table=True
        )
        statements.append(delete_row(uprime, "NEW.p", guard=either))
        return statements

    def _member_statements(self, aux: str, key: str, present: str, payload_select: str | None, columns) -> list[str]:
        """Maintain one aux membership (Rules 21-25, key-restricted)."""
        statements = []
        collist = ", ".join(["p", *qcols(columns)])
        if payload_select is None:
            statements.append(
                f"INSERT OR REPLACE INTO {aux} (p) SELECT {key} WHERE {present}"
            )
        else:
            statements.append(
                f"INSERT OR REPLACE INTO {aux} ({collist}) {payload_select}"
            )
        statements.append(delete_row(aux, key, guard=f"NOT ({present})"))
        return statements

    def _to_unified(self, tv: TableVersion, op) -> list[str]:
        """Write at one partition; the unified side (and its aux tables) is
        stored.  Mirrors ``_PartitionLens.propagate_to_unified``."""
        lens = self._lens()
        unified, first, second = self._tvs()
        roles = lens.roles
        columns = lens.schema.column_names
        key = "OLD.p" if op == "DELETE" else "NEW.p"
        writing_first = tv is first
        put_first = self.smo.put_table_name(roles.first)
        put_second = self.smo.put_table_name(roles.second or "S2")
        collist = ", ".join(["p", *qcols(columns)])

        statements = [f"DELETE FROM {put_first}", f"DELETE FROM {put_second}"]
        # The written partition's post-write row; the twin's current row.
        own_put, twin_put = (put_first, put_second) if writing_first else (put_second, put_first)
        twin_tv = second if writing_first else first
        if op != "DELETE":
            statements.append(
                f"INSERT INTO {own_put} ({collist}) "
                f"VALUES ({', '.join([key, *[f'NEW.{q(c)}' for c in columns]])})"
            )
        if twin_tv is not None:
            statements.append(
                f"INSERT INTO {twin_put} SELECT p, {', '.join(qcols(columns))} "
                f"FROM {self.ctx.view(twin_tv)} WHERE p IS {key}"
            )

        first_exists = f"EXISTS (SELECT 1 FROM {put_first})"
        second_exists = f"EXISTS (SELECT 1 FROM {put_second})"
        first_refs = {c: f"(SELECT {q(c)} FROM {put_first})" for c in columns}
        second_refs = {c: f"(SELECT {q(c)} FROM {put_second})" for c in columns}

        unified_view = self.ctx.view(unified)
        statements += upsert_row(
            unified_view,
            columns,
            key,
            list(first_refs.values()),
            guard=first_exists,
        )
        statements += upsert_row(
            unified_view,
            columns,
            key,
            list(second_refs.values()),
            guard=f"NOT {first_exists} AND {second_exists}",
        )
        # A stored unified row matching neither condition stays put; the
        # engine reads the unified table's routed extent here, which is
        # exactly its generated view.
        drefs = {c: f"d.{q(c)}" for c in columns}
        keeper = (
            f"EXISTS (SELECT 1 FROM {unified_view} d WHERE d.p IS {key} "
            f"AND {cond_not_true(lens.c_first, drefs)}"
            + (
                f" AND {cond_not_true(lens.c_second, drefs)}"
                if lens.c_second is not None
                else ""
            )
            + ")"
        )
        statements.append(
            delete_row(
                unified_view,
                key,
                guard=f"NOT {first_exists} AND NOT {second_exists} AND NOT ({keeper})",
            )
        )

        # Aux memberships on the unified side.
        def aux_name(role: str) -> str:
            return self.smo.aux_table_name(role)

        statements += self._member_statements(
            aux_name(roles.rstar),
            key,
            f"{first_exists} AND EXISTS (SELECT 1 FROM {put_first} f "
            f"WHERE {cond_not_true(lens.c_first, {c: f'f.{q(c)}' for c in columns})})",
            None,
            (),
        )
        if roles.second is not None and lens.c_second is not None:
            f_refs = {c: f"f.{q(c)}" for c in columns}
            s_refs = {c: f"s.{q(c)}" for c in columns}
            statements += self._member_statements(
                aux_name(roles.rminus),
                key,
                f"{second_exists} AND NOT {first_exists} AND EXISTS "
                f"(SELECT 1 FROM {put_second} s WHERE {cond_true(lens.c_first, s_refs)})",
                None,
                (),
            )
            differ = rows_differ("f", "s", columns)
            splus_present = (
                f"EXISTS (SELECT 1 FROM {put_first} f, {put_second} s WHERE {differ})"
            )
            payload = (
                f"SELECT s.p, {', '.join(f's.{q(c)}' for c in columns)} "
                f"FROM {put_second} s, {put_first} f WHERE {differ}"
            )
            statements += self._member_statements(
                aux_name(roles.splus), key, splus_present, payload, columns
            )
            statements += self._member_statements(
                aux_name(roles.sminus),
                key,
                f"{first_exists} AND NOT {second_exists} AND EXISTS "
                f"(SELECT 1 FROM {put_first} f WHERE {cond_true(lens.c_second, f_refs)})",
                None,
                (),
            )
            statements += self._member_statements(
                aux_name(roles.sstar),
                key,
                f"{second_exists} AND EXISTS (SELECT 1 FROM {put_second} s "
                f"WHERE {cond_not_true(lens.c_second, s_refs)})",
                None,
                (),
            )
        return statements

    def write_statements(self, tv, op, *, apply_data=True):
        if not apply_data:
            return []
        if self.is_unified(tv):
            return self._to_partitions(op)
        return self._to_unified(tv, op)


class SplitHandler(_PartitionBase):
    def put_tables(self):
        tables = super().put_tables()
        lens = self._lens()
        if lens.roles.second is None:
            tables[self.smo.put_table_name("S2")] = lens.schema.column_names
        return tables


class MergeHandler(_PartitionBase):
    pass


# ---------------------------------------------------------------------------
# DECOMPOSE / OUTER JOIN ON FOREIGN KEY
# ---------------------------------------------------------------------------


class FkHandler(SmoHandler):
    """The FK lens: a wide table versus S(A, fk) / T(id, B) with generated
    identifiers recorded in the always-stored ID table."""

    def _parts(self):
        lens = self.sem._lens
        if isinstance(self.sem, DecomposeFkSemantics):
            wide_tv = self.smo.sources[0]
            s_tv, t_tv = self.smo.targets
        else:
            s_tv, t_tv = self.smo.sources
            wide_tv = self.smo.targets[0]
        id_col = t_tv.schema.column_names[0]
        return wide_tv, s_tv, t_tv, lens.fk_column, id_col, lens.s_columns, lens.t_columns

    def _wide_stored_ward(self) -> bool:
        """Is the wide table on the side data is routed toward (its view
        independent of this SMO)?"""
        wide_is_target = isinstance(self.sem, OuterJoinFkSemantics)
        return self.smo.materialized == wide_is_target

    def _id_table(self) -> str:
        return self.smo.aux_table_name("ID")

    def put_tables(self) -> dict[str, tuple[str, ...]]:
        tables = super().put_tables()
        tables[self.smo.put_table_name("ID")] = ("fk",)
        return tables

    # -- views -------------------------------------------------------------

    def view_select(self, tv: TableVersion) -> str:
        wide_tv, s_tv, t_tv, fk, id_col, a_cols, b_cols = self._parts()
        vs, vt, vw = self.ctx.view(s_tv), self.ctx.view(t_tv), self.ctx.view(wide_tv)
        id_table = self._id_table()
        if tv is wide_tv:
            joined = []
            padded = []
            for column in wide_tv.schema.column_names:
                side = "s" if column in a_cols else "t"
                joined.append(f"{side}.{q(column)} AS {q(column)}")
                padded.append(
                    f"NULL AS {q(column)}" if column in a_cols else f"t.{q(column)} AS {q(column)}"
                )
            return (
                f"SELECT s.p AS p, {', '.join(joined)} FROM {vs} s "
                f"LEFT JOIN {vt} t ON t.{q(id_col)} = s.{q(fk)}\n"
                f"UNION ALL\n"
                f"SELECT t.{q(id_col)} AS p, {', '.join(padded)} FROM {vt} t "
                f"WHERE NOT EXISTS (SELECT 1 FROM {vs} s WHERE s.{q(fk)} = t.{q(id_col)})"
            )
        if tv is s_tv:
            items = [
                f"i.fk AS {q(c)}" if c == fk else f"r.{q(c)} AS {q(c)}"
                for c in s_tv.schema.column_names
            ]
            return (
                f"SELECT r.p AS p, {', '.join(items)} "
                f"FROM {vw} r JOIN {id_table} i ON i.p = r.p"
            )
        items = [
            f"i.fk AS {q(c)}" if c == id_col else f"r.{q(c)} AS {q(c)}"
            for c in t_tv.schema.column_names
        ]
        return (
            f"SELECT i.fk AS p, {', '.join(items)} "
            f"FROM {vw} r JOIN {id_table} i ON i.p = r.p "
            f"WHERE i.fk IS NOT NULL GROUP BY i.fk"
        )

    # -- writes ------------------------------------------------------------

    def _payload_cond(self, alias: str, b_cols, row: str = "NEW") -> str:
        return payload_match(
            [f"{alias}.{q(c)}" for c in b_cols], [f"{row}.{q(c)}" for c in b_cols]
        )

    def _wide_write(self, op, apply_data: bool) -> list[str]:
        wide_tv, s_tv, t_tv, fk, id_col, a_cols, b_cols = self._parts()
        vs, vt = self.ctx.view(s_tv), self.ctx.view(t_tv)
        id_table = self._id_table()
        put = self.smo.put_table_name("ID")
        if op == "DELETE":
            recorded = f"(SELECT fk FROM {id_table} WHERE p IS OLD.p)"
            statements = []
            if apply_data:
                statements.append(
                    f"DELETE FROM {vt} WHERE p IS {recorded} AND {recorded} IS NOT NULL "
                    f"AND NOT EXISTS (SELECT 1 FROM {id_table} i2 "
                    f"WHERE i2.p IS NOT OLD.p AND i2.fk IS {recorded})"
                )
                statements.append(delete_row(vs, "OLD.p"))
            statements.append(delete_row(id_table, "OLD.p"))
            return statements
        b_new = [f"NEW.{q(c)}" for c in b_cols]
        b_null = all_null(b_new)
        match_t = self._payload_cond("t", b_cols)
        if isinstance(self.sem, OuterJoinFkSemantics):
            # Backward writes at the wide table run through the engine's
            # full lens put, whose first pass keeps a recorded identifier
            # unconditionally (Rules 141/143).
            decision = (
                f"CASE WHEN EXISTS (SELECT 1 FROM {id_table} WHERE p IS NEW.p) "
                f"THEN (SELECT fk FROM {id_table} WHERE p IS NEW.p) "
                f"WHEN {b_null} THEN NULL "
                f"WHEN EXISTS (SELECT 1 FROM {vt} t WHERE {match_t}) "
                f"THEN (SELECT MIN(t.{q(id_col)}) FROM {vt} t WHERE {match_t}) "
                f"ELSE NULL END"
            )
        else:
            # Forward writes take the incremental fast path: a recorded id
            # survives only while its payload still matches; otherwise the
            # row reuses a payload match or gets a fresh identifier.
            decision = (
                f"CASE WHEN {b_null} THEN NULL "
                f"WHEN EXISTS (SELECT 1 FROM {id_table} i JOIN {vt} t "
                f"ON t.{q(id_col)} = i.fk WHERE i.p IS NEW.p AND {match_t}) "
                f"THEN (SELECT fk FROM {id_table} WHERE p IS NEW.p) "
                f"WHEN EXISTS (SELECT 1 FROM {vt} t WHERE {match_t}) "
                f"THEN (SELECT MIN(t.{q(id_col)}) FROM {vt} t WHERE {match_t}) "
                f"ELSE NULL END"
            )
        unresolved = f"EXISTS (SELECT 1 FROM {put} WHERE fk IS NULL) AND NOT {b_null}"
        statements = [
            f"DELETE FROM {put}",
            f"INSERT INTO {put} (p, fk) SELECT NEW.p, {decision}",
            *emit.seq_next_statements(GLOBAL_SEQUENCE, guard=unresolved),
            f"UPDATE {put} SET fk = {seq_value(GLOBAL_SEQUENCE)} "
            f"WHERE fk IS NULL AND NOT {b_null}",
            f"INSERT OR REPLACE INTO {id_table} (p, fk) SELECT p, fk FROM {put}",
        ]
        if apply_data:
            # The recorded assignment survives nested trigger invocations
            # (which may clobber the put table); read the id back from ID.
            fk_sql = f"(SELECT fk FROM {id_table} WHERE p IS NEW.p)"
            # T before S: when S's write cascades, its nested shared-aux
            # maintenance probes the T row, which must already exist.
            t_values = [
                fk_sql if c == id_col else f"NEW.{q(c)}"
                for c in t_tv.schema.column_names
            ]
            statements += upsert_row(
                vt,
                t_tv.schema.column_names,
                fk_sql,
                t_values,
                guard=f"{fk_sql} IS NOT NULL AND NOT {b_null}",
            )
            s_values = [
                fk_sql if c == fk else f"NEW.{q(c)}" for c in s_tv.schema.column_names
            ]
            statements += upsert_row(vs, s_tv.schema.column_names, "NEW.p", s_values)
        return statements

    def _s_write(self, op, apply_data: bool) -> list[str]:
        wide_tv, s_tv, t_tv, fk, id_col, a_cols, b_cols = self._parts()
        vw, vt = self.ctx.view(wide_tv), self.ctx.view(t_tv)
        id_table = self._id_table()
        if op == "DELETE":
            statements = []
            if apply_data:
                statements.append(delete_row(vw, "OLD.p"))
            statements.append(delete_row(id_table, "OLD.p"))
            return statements
        put_t = self.smo.put_table_name("T")
        t_cols = t_tv.schema.column_names
        statements = [
            f"DELETE FROM {put_t}",
            f"INSERT INTO {put_t} SELECT p, {', '.join(qcols(t_cols))} "
            f"FROM {vt} WHERE p IS NEW.{q(fk)}",
        ]
        if apply_data:
            values = []
            for column in wide_tv.schema.column_names:
                if column in a_cols:
                    values.append(f"NEW.{q(column)}")
                else:
                    values.append(f"(SELECT {q(column)} FROM {put_t})")
            statements += upsert_row(vw, wide_tv.schema.column_names, "NEW.p", values)
            if isinstance(self.sem, OuterJoinFkSemantics):
                # The engine's full put regenerates the stored wide table:
                # a T row surfaced as an unreferenced padded row disappears
                # once this S row references it.
                statements.append(
                    f"DELETE FROM {vw} WHERE p IS NEW.{q(fk)} "
                    f"AND NEW.{q(fk)} IS NOT NEW.p "
                    f"AND {all_null(qcols(a_cols))}"
                )
        statements.append(
            # Skip when the recorded assignment already matches: an S write
            # arriving as part of a wide-row cascade must not re-derive (and
            # possibly NULL out) the identifier the outer program recorded.
            f"INSERT OR REPLACE INTO {id_table} (p, fk) SELECT NEW.p, "
            f"CASE WHEN EXISTS (SELECT 1 FROM {put_t}) THEN NEW.{q(fk)} ELSE NULL END "
            f"WHERE NOT EXISTS (SELECT 1 FROM {id_table} "
            f"WHERE p IS NEW.p AND fk IS NEW.{q(fk)})"
        )
        return statements

    def _t_write(self, op, apply_data: bool) -> list[str]:
        wide_tv, s_tv, t_tv, fk, id_col, a_cols, b_cols = self._parts()
        vw, vs = self.ctx.view(wide_tv), self.ctx.view(s_tv)
        id_table = self._id_table()
        row = "OLD" if op == "DELETE" else "NEW"
        key = f"{row}.{q(id_col)}"
        put_s = self.smo.put_table_name("S")
        s_cols = s_tv.schema.column_names
        statements = [
            f"DELETE FROM {put_s}",
            f"INSERT INTO {put_s} SELECT p, {', '.join(qcols(s_cols))} "
            f"FROM {vs} WHERE {q(fk)} IS {key}",
        ]
        refs_exist = f"EXISTS (SELECT 1 FROM {put_s})"
        if op == "DELETE":
            if apply_data:
                statements.append(f"DELETE FROM {vw} WHERE p IS {key}")
                if b_cols:
                    sets = ", ".join(f"{q(c)} = NULL" for c in b_cols)
                    statements.append(
                        f"UPDATE {vw} SET {sets} WHERE p IN (SELECT p FROM {put_s})"
                    )
            statements.append(
                f"INSERT OR REPLACE INTO {id_table} (p, fk) "
                f"SELECT p, NULL FROM {put_s}"
            )
            return statements
        if apply_data:
            if b_cols:
                sets = ", ".join(f"{q(c)} = NEW.{q(c)}" for c in b_cols)
                statements.append(
                    f"UPDATE {vw} SET {sets} WHERE p IN (SELECT p FROM {put_s})"
                )
            values = [
                "NULL" if c in a_cols else f"NEW.{q(c)}"
                for c in wide_tv.schema.column_names
            ]
            statements += upsert_row(
                vw,
                wide_tv.schema.column_names,
                key,
                values,
                guard=f"NOT {refs_exist}",
            )
        statements.append(
            f"INSERT OR REPLACE INTO {id_table} (p, fk) SELECT p, {key} FROM {put_s}"
        )
        statements.append(
            # "Unreferenced T row surfaces in the wide table" — unless some
            # recorded assignment already references this identifier (the T
            # write is then part of a wide-row cascade, not a lone insert).
            f"INSERT OR REPLACE INTO {id_table} (p, fk) SELECT {key}, {key} "
            f"WHERE NOT {refs_exist} AND NOT EXISTS "
            f"(SELECT 1 FROM {id_table} WHERE fk IS {key})"
        )
        return statements

    def write_statements(self, tv, op, *, apply_data=True):
        wide_tv, s_tv, t_tv, *_ = self._parts()
        if tv is wide_tv:
            return self._wide_write(op, apply_data)
        if tv is s_tv:
            return self._s_write(op, apply_data)
        return self._t_write(op, apply_data)

    # -- repair ------------------------------------------------------------

    def repair_statements(self) -> list[str]:
        wide_tv, s_tv, t_tv, fk, id_col, a_cols, b_cols = self._parts()
        vw, vs, vt = self.ctx.view(wide_tv), self.ctx.view(s_tv), self.ctx.view(t_tv)
        id_table = self._id_table()
        scratch = self.smo.put_table_name("scratch")
        missing = f"NOT IN (SELECT p FROM {id_table})"
        # No dangling-entry cleanup here: repairs run inside triggers whose
        # enclosing cascade may not have made the written row visible yet,
        # and stale entries are invisible through the generated views (the
        # row-delete programs maintain ID themselves).
        statements = []
        if not self._wide_stored_ward():
            # Narrow side independent: record the actual foreign keys.
            statements += [
                f"INSERT INTO {id_table} (p, fk) SELECT s.p, "
                f"CASE WHEN EXISTS (SELECT 1 FROM {vt} t "
                f"WHERE t.{q(id_col)} = s.{q(fk)}) THEN s.{q(fk)} ELSE NULL END "
                f"FROM {vs} s WHERE s.p {missing}",
                f"INSERT INTO {id_table} (p, fk) SELECT t.{q(id_col)}, t.{q(id_col)} "
                f"FROM {vt} t WHERE t.{q(id_col)} {missing} AND NOT EXISTS "
                f"(SELECT 1 FROM {vs} s WHERE s.{q(fk)} = t.{q(id_col)})",
            ]
            return statements
        w_null = all_null([f"w.{q(c)}" for c in b_cols])
        match_w = payload_match(
            [f"t.{q(c)}" for c in b_cols], [f"w.{q(c)}" for c in b_cols]
        )
        group = payload_match(
            [f"w2.{q(c)}" for c in b_cols], [f"w.{q(c)}" for c in b_cols]
        )
        statements += [
            f"INSERT INTO {id_table} (p, fk) SELECT w.p, NULL FROM {vw} w "
            f"WHERE w.p {missing} AND {w_null}",
            f"INSERT INTO {id_table} (p, fk) SELECT w.p, "
            f"(SELECT MIN(t.{q(id_col)}) FROM {vt} t WHERE {match_w}) "
            f"FROM {vw} w WHERE w.p {missing} "
            f"AND EXISTS (SELECT 1 FROM {vt} t WHERE {match_w})",
            f"DELETE FROM {scratch}",
            f"INSERT INTO {scratch} (p, a, rnk) SELECT w.p, NULL, "
            f"DENSE_RANK() OVER (ORDER BY "
            f"(SELECT MIN(w2.p) FROM {vw} w2 WHERE {group})) "
            f"FROM {vw} w WHERE w.p {missing}",
            f"INSERT INTO {id_table} (p, fk) "
            f"SELECT p, {seq_value(GLOBAL_SEQUENCE)} + rnk FROM {scratch}",
            f"UPDATE {emit.SEQUENCES_TABLE} SET value = value + "
            f"COALESCE((SELECT MAX(rnk) FROM {scratch}), 0) "
            f"WHERE name = '{GLOBAL_SEQUENCE}'",
        ]
        return statements


class DecomposeFkHandler(FkHandler):
    pass


class OuterJoinFkHandler(FkHandler):
    pass


# ---------------------------------------------------------------------------
# DECOMPOSE / JOIN ON condition
# ---------------------------------------------------------------------------


class CondHandler(SmoHandler):
    """The condition lens: S(id, A) x T(id, B) joined under c(A, B) with
    generated identifiers on both sides, recorded in ID(r -> s, t); Rminus
    suppresses join results deleted through the wide side (Rule 200)."""

    def _parts(self):
        lens = self.sem._lens
        if isinstance(self.sem, DecomposeCondSemantics):
            wide_tv = self.smo.sources[0]
            s_tv, t_tv = self.smo.targets
        else:
            s_tv, t_tv = self.smo.sources
            wide_tv = self.smo.targets[0]
        s_payload = s_tv.schema.column_names[1:]
        t_payload = t_tv.schema.column_names[1:]
        return wide_tv, s_tv, t_tv, s_payload, t_payload, lens.condition

    def _wide_stored_ward(self) -> bool:
        wide_is_target = isinstance(self.sem, InnerJoinCondSemantics)
        return self.smo.materialized == wide_is_target

    def _id_table(self) -> str:
        return self.smo.aux_table_name("ID")

    def put_tables(self) -> dict[str, tuple[str, ...]]:
        tables = super().put_tables()
        wide_tv, s_tv, t_tv, *_ = self._parts()
        tables[self.smo.put_table_name("regen_W")] = wide_tv.schema.column_names
        tables[self.smo.put_table_name("regen_" + self.role_of(s_tv))] = (
            s_tv.schema.column_names
        )
        tables[self.smo.put_table_name("regen_" + self.role_of(t_tv))] = (
            t_tv.schema.column_names
        )
        tables[self.smo.put_table_name("regen_scratch")] = ("a", "b", "rnk", "rnk2")
        return tables

    def _scratch(self) -> str:
        return self.smo.put_table_name("scratch")

    def _cond(self, s_refs: dict[str, str], t_refs: dict[str, str]) -> str:
        _w, _s, _t, s_payload, t_payload, condition = self._parts()
        refs = {**{c: s_refs[c] for c in s_payload}, **{c: t_refs[c] for c in t_payload}}
        return cond_true(condition, refs)

    def _alias_refs(self, columns, alias: str) -> dict[str, str]:
        return {c: f"{alias}.{q(c)}" for c in columns}

    def _wide_values(self, s_refs: dict[str, str], t_refs: dict[str, str]) -> list[str]:
        wide_tv, _s, _t, s_payload, _tp, _c = self._parts()
        return [
            s_refs[c] if c in s_payload else t_refs[c]
            for c in wide_tv.schema.column_names
        ]

    # -- views -------------------------------------------------------------

    def view_select(self, tv: TableVersion) -> str:
        wide_tv, s_tv, t_tv, s_payload, t_payload, _cond = self._parts()
        vw, vs, vt = self.ctx.view(wide_tv), self.ctx.view(s_tv), self.ctx.view(t_tv)
        id_table = self._id_table()
        if tv is wide_tv:
            rminus = self.ctx.aux_ref(self.smo, "Rminus")
            cond = self._cond(self._alias_refs(s_payload, "s"), self._alias_refs(t_payload, "t"))
            values = self._wide_values(
                {c: f"s.{q(c)} AS {q(c)}" for c in s_payload},
                {c: f"t.{q(c)} AS {q(c)}" for c in t_payload},
            )
            return (
                f"SELECT i.p AS p, {', '.join(values)} FROM {id_table} i "
                f"JOIN {vs} s ON s.p = i.s JOIN {vt} t ON t.p = i.t "
                f"WHERE {cond} AND NOT EXISTS "
                f"(SELECT 1 FROM {rminus} m WHERE m.s IS i.s AND m.t IS i.t)"
            )
        if tv is s_tv:
            own, key_of = s_tv, "s"
            plus = self.ctx.aux_ref(self.smo, "Splus")
        else:
            own, key_of = t_tv, "t"
            plus = self.ctx.aux_ref(self.smo, "Tplus")
        id_col = own.schema.column_names[0]
        items = [
            f"i.{key_of} AS {q(c)}" if c == id_col else f"r.{q(c)} AS {q(c)}"
            for c in own.schema.column_names
        ]
        derived_keys = f"SELECT i.{key_of} FROM {id_table} i JOIN {vw} r ON r.p = i.p"
        plus_items = ", ".join(f"x.{q(c)} AS {q(c)}" for c in own.schema.column_names)
        return (
            f"SELECT i.{key_of} AS p, {', '.join(items)} "
            f"FROM {vw} r JOIN {id_table} i ON i.p = r.p GROUP BY i.{key_of}\n"
            f"UNION ALL\n"
            f"SELECT x.p AS p, {plus_items} FROM {plus} x "
            f"WHERE x.p NOT IN ({derived_keys})"
        )

    # -- writes ------------------------------------------------------------

    def _rminus_recompute(self) -> list[str]:
        """Rule 200, full-state: matching pairs without a wide row."""
        _w, s_tv, t_tv, s_payload, t_payload, _c = self._parts()
        rminus = self.smo.aux_table_name("Rminus")
        cond = self._cond(self._alias_refs(s_payload, "s"), self._alias_refs(t_payload, "t"))
        id_table = self._id_table()
        return [
            f"DELETE FROM {rminus}",
            f"INSERT INTO {rminus} (p, s, t) "
            f"SELECT ROW_NUMBER() OVER (ORDER BY s.p, t.p), s.p, t.p "
            f"FROM {self.ctx.view(s_tv)} s, {self.ctx.view(t_tv)} t "
            f"WHERE {cond} AND NOT EXISTS "
            f"(SELECT 1 FROM {id_table} i WHERE i.s IS s.p AND i.t IS t.p)",
        ]

    def _wide_write(self, op, apply_data: bool) -> list[str]:
        """Write at the wide table: the engine runs a full lens put here
        (the condition SMOs have no incremental fast path), regenerating the
        stored narrow side from the post-write wide extent — identifiers
        recorded in ID survive, payload duplicates reuse, the rest is
        allocated fresh; narrow rows no longer derivable disappear."""
        wide_tv, s_tv, t_tv, s_payload, t_payload, _c = self._parts()
        vw = self.ctx.view(wide_tv)
        vs, vt = self.ctx.view(s_tv), self.ctx.view(t_tv)
        id_table = self._id_table()
        # Dedicated staging: applying the regenerated narrow rows fires
        # nested maintenance triggers of this same SMO, which snapshot into
        # the ordinary put/scratch tables.
        scratch = self.smo.put_table_name("regen_scratch")
        put_wide = self.smo.put_table_name("regen_W")
        key = "OLD.p" if op == "DELETE" else "NEW.p"
        wide_cols = wide_tv.schema.column_names

        def group(payload):
            return payload_match(
                [f"w2.{q(c)}" for c in payload], [f"w.{q(c)}" for c in payload]
            )

        # 1. Stage the post-write wide extent.
        statements = [
            f"DELETE FROM {put_wide}",
            f"INSERT INTO {put_wide} SELECT p, {', '.join(qcols(wide_cols))} "
            f"FROM {vw} WHERE p IS NOT {key}",
        ]
        if op != "DELETE":
            statements.append(
                f"INSERT INTO {put_wide} (p, {', '.join(qcols(wide_cols))}) "
                f"VALUES ({key}, {', '.join(f'NEW.{q(c)}' for c in wide_cols)})"
            )
        # 2. Identifier assignment: recorded, then payload reuse among
        #    recorded rows, then fresh per distinct payload.
        statements += [
            f"DELETE FROM {scratch}",
            f"INSERT INTO {scratch} (p, a, b, rnk, rnk2) SELECT w.p, "
            f"COALESCE((SELECT i.s FROM {id_table} i WHERE i.p = w.p), "
            f"(SELECT MIN(i.s) FROM {id_table} i JOIN {put_wide} w2 ON w2.p = i.p "
            f"WHERE {group(s_payload)})), "
            f"COALESCE((SELECT i.t FROM {id_table} i WHERE i.p = w.p), "
            f"(SELECT MIN(i.t) FROM {id_table} i JOIN {put_wide} w2 ON w2.p = i.p "
            f"WHERE {group(t_payload)})), "
            f"DENSE_RANK() OVER (ORDER BY (SELECT MIN(w2.p) FROM {put_wide} w2 "
            f"WHERE {group(s_payload)})), "
            f"DENSE_RANK() OVER (ORDER BY (SELECT MIN(w2.p) FROM {put_wide} w2 "
            f"WHERE {group(t_payload)})) "
            f"FROM {put_wide} w",
            f"UPDATE {scratch} SET a = {seq_value(GLOBAL_SEQUENCE)} + rnk "
            f"WHERE a IS NULL",
            f"UPDATE {emit.SEQUENCES_TABLE} SET value = value + "
            f"COALESCE((SELECT MAX(rnk) FROM {scratch}), 0) "
            f"WHERE name = '{GLOBAL_SEQUENCE}'",
            f"UPDATE {scratch} SET b = {seq_value(GLOBAL_SEQUENCE)} + rnk2 "
            f"WHERE b IS NULL",
            f"UPDATE {emit.SEQUENCES_TABLE} SET value = value + "
            f"COALESCE((SELECT MAX(rnk2) FROM {scratch}), 0) "
            f"WHERE name = '{GLOBAL_SEQUENCE}'",
            # 3. Rewrite ID wholesale (entries of vanished rows go with it).
            f"DELETE FROM {id_table}",
            f"INSERT INTO {id_table} (p, s, t) SELECT p, a, b FROM {scratch}",
        ]
        if apply_data:
            # 4. Regenerate the narrow side.  Stage BOTH extents before
            #    applying either (applies cascade), then apply T first so
            #    cascaded nested maintenance finds T rows in place.
            for narrow_tv, id_sql in ((t_tv, "b"), (s_tv, "a")):
                put_narrow = self.smo.put_table_name(
                    "regen_" + self.role_of(narrow_tv)
                )
                id_col = narrow_tv.schema.column_names[0]
                items = [
                    f"sc.{id_sql} AS {q(c)}" if c == id_col else f"w.{q(c)} AS {q(c)}"
                    for c in narrow_tv.schema.column_names
                ]
                statements += [
                    f"DELETE FROM {put_narrow}",
                    f"INSERT INTO {put_narrow} "
                    f"SELECT sc.{id_sql}, {', '.join(items)} "
                    f"FROM {put_wide} w JOIN {scratch} sc ON sc.p = w.p "
                    f"GROUP BY sc.{id_sql}",
                ]
            for narrow_tv in (t_tv, s_tv):
                statements += emit.apply_extent(
                    self.ctx.view(narrow_tv),
                    narrow_tv.schema.column_names,
                    self.smo.put_table_name("regen_" + self.role_of(narrow_tv)),
                )
            statements += self._rminus_recompute()
        return statements

    def _narrow_write(self, tv: TableVersion, op, apply_data: bool) -> list[str]:
        wide_tv, s_tv, t_tv, s_payload, t_payload, _c = self._parts()
        vw = self.ctx.view(wide_tv)
        id_table = self._id_table()
        scratch = self._scratch()
        writing_s = tv is s_tv
        own_key, other_key = ("s", "t") if writing_s else ("t", "s")
        other_tv = t_tv if writing_s else s_tv
        v_other = self.ctx.view(other_tv)
        own_plus = self.smo.aux_table_name("Splus" if writing_s else "Tplus")
        other_plus = self.smo.aux_table_name("Tplus" if writing_s else "Splus")
        other_payload = t_payload if writing_s else s_payload
        own_payload = s_payload if writing_s else t_payload
        row = "OLD" if op == "DELETE" else "NEW"
        key = f"{row}.p"

        def pair_cond(other_alias: str, own_row: str = "NEW") -> str:
            own_refs = {c: f"{own_row}.{q(c)}" for c in own_payload}
            other_refs = self._alias_refs(other_payload, other_alias)
            if writing_s:
                return self._cond(own_refs, other_refs)
            return self._cond(other_refs, own_refs)

        # Snapshot the other narrow table's PRE-change extent: applying the
        # wide-side changes below makes derived rows vanish before the plus
        # bookkeeping reads them (the engine computes from pre-change
        # extents plus the change).
        put_other = self.smo.put_table_name("T" if writing_s else "S")
        other_cols = other_tv.schema.column_names
        snapshot = [
            f"DELETE FROM {put_other}",
            f"INSERT INTO {put_other} SELECT p, {', '.join(qcols(other_cols))} "
            f"FROM {v_other}",
        ]

        def other_plus_recompute() -> list[str]:
            """Rows of the other narrow table matching no row of this one
            belong in its plus table (and vice versa removals)."""
            o_refs = self._alias_refs(other_payload, "o")
            m_refs = self._alias_refs(own_payload, "m")
            cond = (
                self._cond(m_refs, o_refs) if writing_s else self._cond(o_refs, m_refs)
            )
            own_view = self.ctx.view(tv)
            collist = ", ".join(["p", *qcols(other_cols)])
            matched = (
                f"EXISTS (SELECT 1 FROM {own_view} m WHERE {cond})"
            )
            tp_refs = {c: f"{other_plus}.{q(c)}" for c in other_payload}
            cond_tp = (
                self._cond(m_refs, tp_refs) if writing_s else self._cond(tp_refs, m_refs)
            )
            return [
                f"DELETE FROM {other_plus} WHERE EXISTS "
                f"(SELECT 1 FROM {own_view} m WHERE {cond_tp})",
                f"INSERT OR REPLACE INTO {other_plus} ({collist}) "
                f"SELECT o.p, {', '.join(f'o.{q(c)}' for c in other_cols)} "
                f"FROM {put_other} o WHERE NOT {matched}",
            ]

        if op == "DELETE":
            statements = [
                *snapshot,
                f"DELETE FROM {scratch}",
                f"INSERT INTO {scratch} (p) SELECT i.p FROM {id_table} i "
                f"WHERE i.{own_key} IS OLD.p",
            ]
            if apply_data:
                statements.append(
                    f"DELETE FROM {vw} WHERE p IN (SELECT p FROM {scratch})"
                )
                statements.append(delete_row(own_plus, "OLD.p"))
                statements += other_plus_recompute()
            return statements

        put_wide = self.smo.put_table_name("R")
        statements = [
            *snapshot,
            f"DELETE FROM {scratch}",
            # New matching partners lacking a recorded pair.
            f"INSERT INTO {scratch} (p, rnk) SELECT o.p, "
            f"ROW_NUMBER() OVER (ORDER BY o.p) FROM {put_other} o "
            f"WHERE {pair_cond('o')} AND NOT EXISTS "
            f"(SELECT 1 FROM {id_table} i WHERE i.{own_key} IS {key} "
            f"AND i.{other_key} IS o.p)",
        ]
        own_refs = {c: f"NEW.{q(c)}" for c in own_payload}
        o_refs = self._alias_refs(other_payload, "o")
        s_refs, t_refs = (own_refs, o_refs) if writing_s else (o_refs, own_refs)
        wide_values = ", ".join(self._wide_values(s_refs, t_refs))
        if apply_data:
            statements += [
                f"DELETE FROM {put_wide}",
                # Recorded pairs that (still) match, with the written payload.
                f"INSERT INTO {put_wide} SELECT i.p, {wide_values} "
                f"FROM {id_table} i JOIN {put_other} o ON o.p = i.{other_key} "
                f"WHERE i.{own_key} IS {key} AND {pair_cond('o')}",
                # Fresh pairs about to be recorded.
                f"INSERT INTO {put_wide} SELECT {seq_value(GLOBAL_SEQUENCE)} + sc.rnk, "
                f"{wide_values} FROM {scratch} sc JOIN {put_other} o ON o.p = sc.p",
            ]
        id_cols = f"{own_key}, {other_key}"
        statements += [
            f"INSERT INTO {id_table} (p, {id_cols}) "
            f"SELECT {seq_value(GLOBAL_SEQUENCE)} + rnk, {key}, p FROM {scratch}",
            f"UPDATE {emit.SEQUENCES_TABLE} SET value = value + "
            f"COALESCE((SELECT MAX(rnk) FROM {scratch}), 0) "
            f"WHERE name = '{GLOBAL_SEQUENCE}'",
        ]
        if apply_data:
            wide_cols = wide_tv.schema.column_names
            statements += [
                # Recorded pairs that no longer match disappear.
                f"DELETE FROM {vw} WHERE p IN (SELECT i.p FROM {id_table} i "
                f"WHERE i.{own_key} IS {key} "
                f"AND i.p NOT IN (SELECT p FROM {put_wide}))",
                f"UPDATE {vw} SET ({', '.join(qcols(wide_cols))}) = "
                f"(SELECT {', '.join(qcols(wide_cols))} FROM {put_wide} s "
                f"WHERE s.p = {vw}.p) "
                f"WHERE p IN (SELECT p FROM {put_wide})",
                f"INSERT INTO {vw} (p, {', '.join(qcols(wide_cols))}) "
                f"SELECT p, {', '.join(qcols(wide_cols))} FROM {put_wide} "
                f"WHERE p NOT IN (SELECT p FROM {vw})",
            ]
            matched = f"EXISTS (SELECT 1 FROM {put_wide})"
            own_cols = tv.schema.column_names
            statements.append(delete_row(own_plus, key, guard=matched))
            statements += upsert_row(
                own_plus,
                own_cols,
                key,
                [f"NEW.{q(c)}" for c in own_cols],
                guard=f"NOT {matched}",
                plain_table=True,
            )
            statements += other_plus_recompute()
        return statements

    def write_statements(self, tv, op, *, apply_data=True):
        wide_tv, *_ = self._parts()
        if tv is wide_tv:
            return self._wide_write(op, apply_data)
        return self._narrow_write(tv, op, apply_data)

    # -- repair ------------------------------------------------------------

    def repair_statements(self) -> list[str]:
        wide_tv, s_tv, t_tv, s_payload, t_payload, _c = self._parts()
        vw, vs, vt = self.ctx.view(wide_tv), self.ctx.view(s_tv), self.ctx.view(t_tv)
        id_table = self._id_table()
        scratch = self._scratch()
        if not self._wide_stored_ward():
            # Pair-keyed: every matching, non-suppressed pair gets a wide id.
            rminus = self.ctx.aux_ref(self.smo, "Rminus")
            cond = self._cond(
                self._alias_refs(s_payload, "s"), self._alias_refs(t_payload, "t")
            )
            return [
                f"DELETE FROM {scratch}",
                f"INSERT INTO {scratch} (p, a, b, rnk) "
                f"SELECT 1000000 + ROW_NUMBER() OVER (ORDER BY s.p, t.p), s.p, t.p, "
                f"ROW_NUMBER() OVER (ORDER BY s.p, t.p) "
                f"FROM {vs} s, {vt} t WHERE {cond} "
                f"AND NOT EXISTS (SELECT 1 FROM {id_table} i "
                f"WHERE i.s IS s.p AND i.t IS t.p) "
                f"AND NOT EXISTS (SELECT 1 FROM {rminus} m "
                f"WHERE m.s IS s.p AND m.t IS t.p)",
                f"INSERT INTO {id_table} (p, s, t) "
                f"SELECT {seq_value(GLOBAL_SEQUENCE)} + rnk, a, b FROM {scratch}",
                f"UPDATE {emit.SEQUENCES_TABLE} SET value = value + "
                f"COALESCE((SELECT MAX(rnk) FROM {scratch}), 0) "
                f"WHERE name = '{GLOBAL_SEQUENCE}'",
            ]
        # Wide-keyed: every wide row gets recorded (s, t) identifiers,
        # reusing by payload (first-encounter order) before allocating.
        def group_match(payload):
            return payload_match(
                [f"w2.{q(c)}" for c in payload], [f"w.{q(c)}" for c in payload]
            )

        missing = f"w.p NOT IN (SELECT p FROM {id_table})"
        statements = [
            f"DELETE FROM {scratch}",
            f"INSERT INTO {scratch} (p, a, b, rnk, rnk2) SELECT w.p, "
            f"(SELECT MIN(i.s) FROM {id_table} i JOIN {vw} w2 ON w2.p = i.p "
            f"WHERE {group_match(s_payload)}), "
            f"(SELECT MIN(i.t) FROM {id_table} i JOIN {vw} w2 ON w2.p = i.p "
            f"WHERE {group_match(t_payload)}), "
            f"DENSE_RANK() OVER (ORDER BY (SELECT MIN(w2.p) FROM {vw} w2 "
            f"WHERE {group_match(s_payload)})), "
            f"DENSE_RANK() OVER (ORDER BY (SELECT MIN(w2.p) FROM {vw} w2 "
            f"WHERE {group_match(t_payload)})) "
            f"FROM {vw} w WHERE {missing}",
            f"UPDATE {scratch} SET a = {seq_value(GLOBAL_SEQUENCE)} + rnk "
            f"WHERE a IS NULL",
            f"UPDATE {emit.SEQUENCES_TABLE} SET value = value + "
            f"COALESCE((SELECT MAX(rnk) FROM {scratch}), 0) "
            f"WHERE name = '{GLOBAL_SEQUENCE}'",
            f"UPDATE {scratch} SET b = {seq_value(GLOBAL_SEQUENCE)} + rnk2 "
            f"WHERE b IS NULL",
            f"UPDATE {emit.SEQUENCES_TABLE} SET value = value + "
            f"COALESCE((SELECT MAX(rnk2) FROM {scratch}), 0) "
            f"WHERE name = '{GLOBAL_SEQUENCE}'",
            f"INSERT OR REPLACE INTO {id_table} (p, s, t) "
            f"SELECT p, a, b FROM {scratch}",
        ]
        return statements

    def stored_role_selects(self, will_materialize: bool) -> dict[str, str]:
        wide_tv, s_tv, t_tv, s_payload, t_payload, _c = self._parts()
        vw, vs, vt = self.ctx.view(wide_tv), self.ctx.view(s_tv), self.ctx.view(t_tv)
        id_table = self._id_table()
        decompose = isinstance(self.sem, DecomposeCondSemantics)
        wants_rminus = will_materialize if decompose else not will_materialize
        cond = self._cond(
            self._alias_refs(s_payload, "s"), self._alias_refs(t_payload, "t")
        )
        if wants_rminus:
            return {
                "Rminus": (
                    f"SELECT ROW_NUMBER() OVER (ORDER BY s.p, t.p) AS p, "
                    f"s.p AS s, t.p AS t FROM {vs} s, {vt} t WHERE {cond} "
                    f"AND NOT EXISTS (SELECT 1 FROM {id_table} i "
                    f"JOIN {vw} w ON w.p = i.p WHERE i.s IS s.p AND i.t IS t.p)"
                )
            }
        s_cols = ", ".join(f"s.{q(c)}" for c in s_tv.schema.column_names)
        t_cols = ", ".join(f"t.{q(c)}" for c in t_tv.schema.column_names)
        return {
            "Splus": (
                f"SELECT s.p AS p, {s_cols} FROM {vs} s WHERE NOT EXISTS "
                f"(SELECT 1 FROM {vt} t WHERE {cond})"
            ),
            "Tplus": (
                f"SELECT t.p AS p, {t_cols} FROM {vt} t WHERE NOT EXISTS "
                f"(SELECT 1 FROM {vs} s WHERE {cond})"
            ),
        }


class DecomposeCondHandler(CondHandler):
    pass


class InnerJoinCondHandler(CondHandler):
    pass


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_HANDLERS = {
    DropTableSemantics: DropTableHandler,
    RenameTableSemantics: IdentityHandler,
    RenameColumnSemantics: IdentityHandler,
    AddColumnSemantics: AddColumnHandler,
    DropColumnSemantics: DropColumnHandler,
    DecomposePkSemantics: DecomposePkHandler,
    OuterJoinPkSemantics: OuterJoinPkHandler,
    InnerJoinPkSemantics: InnerJoinPkHandler,
    SplitSemantics: SplitHandler,
    MergeSemantics: MergeHandler,
    DecomposeFkSemantics: DecomposeFkHandler,
    OuterJoinFkSemantics: OuterJoinFkHandler,
    DecomposeCondSemantics: DecomposeCondHandler,
    InnerJoinCondSemantics: InnerJoinCondHandler,
}


def handler_for(ctx: HandlerContext, smo: SmoInstance) -> SmoHandler:
    if isinstance(smo.semantics, CreateTableSemantics) or smo.is_initial:
        raise BackendError(f"initial SMO {smo!r} generates no delta code")
    try:
        cls = _HANDLERS[type(smo.semantics)]
    except KeyError:
        raise BackendError(
            f"no SQL handler for SMO semantics {type(smo.semantics).__name__}"
        ) from None
    return cls(ctx, smo)


def has_shared_aux(smo: SmoInstance) -> bool:
    return bool(smo.semantics is not None and smo.semantics.aux_shared())
