"""The live SQLite execution backend.

``LiveSqliteBackend.attach(engine)`` snapshots the engine's physical
storage into a SQLite database, installs the generated views and ``INSTEAD
OF`` trigger programs for every co-existing schema version, and registers
itself with the engine so the delta code is regenerated on every catalog
transition (evolution, migration, drop).

From then on SQLite is the data plane: reads of any version go through the
generated views, writes issued against any version's view propagate to the
physical and auxiliary tables entirely inside SQLite via the trigger
cascade, and ``MATERIALIZE`` runs as a generated in-place SQL migration
(stage new physical tables from the old views, swap, regenerate).  The
engine's in-memory tables remain a snapshot from attach time.
"""

from __future__ import annotations

import sqlite3
from typing import TYPE_CHECKING

from repro.backend import codegen, emit
from repro.backend.emit import qcols
from repro.errors import BackendError

if TYPE_CHECKING:  # pragma: no cover
    from repro.catalog.genealogy import SmoInstance
    from repro.catalog.versions import SchemaVersion
    from repro.core.engine import InVerDa


class LiveSqliteBackend:
    """A SQLite database serving reads *and* writes on every version."""

    def __init__(self, engine: "InVerDa", connection: sqlite3.Connection):
        self.engine = engine
        self.connection = connection
        self._closed = False
        # Bumped by the SQL layer whenever the underlying SQLite
        # transaction ends; connections compare it against the epoch they
        # began in, so a stale owner can never COMMIT/ROLLBACK a newer
        # transaction opened by someone else.
        self.transaction_epoch = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def attach(cls, engine: "InVerDa", *, database: str = ":memory:") -> "LiveSqliteBackend":
        """Snapshot ``engine`` into SQLite, install the generated delta
        code, and register with the engine."""
        connection = sqlite3.connect(database)
        connection.isolation_level = None  # manual transaction control
        backend = cls(engine, connection)
        backend._load_snapshot()
        backend.regenerate()
        backend._run(codegen.repair_all_statements(engine))
        engine.attach_backend(backend)
        return backend

    def _load_snapshot(self) -> None:
        cursor = self.connection.cursor()
        cursor.execute(emit.sequences_ddl())
        for name, value in self.engine.database.sequences.items():
            cursor.execute(
                f"INSERT OR REPLACE INTO {emit.SEQUENCES_TABLE} VALUES (?, ?)",
                (name, value),
            )
        cursor.execute(
            f"INSERT OR IGNORE INTO {emit.SEQUENCES_TABLE} VALUES (?, 0)",
            (emit.ROW_ID_SEQUENCE,),
        )
        for name, table in self.engine.database.tables.items():
            columns = table.schema.column_names
            cursor.execute(emit.table_ddl(name, columns))
            placeholders = ", ".join("?" for _ in range(len(columns) + 1))
            cursor.executemany(
                f"INSERT INTO {name} VALUES ({placeholders})",
                [(key, *row) for key, row in table],
            )
        self.connection.commit()

    # ------------------------------------------------------------------
    # Delta-code generation
    # ------------------------------------------------------------------

    def _run(self, statements: list[str]) -> None:
        cursor = self.connection.cursor()
        for statement in statements:
            try:
                cursor.execute(statement)
            except sqlite3.Error as exc:
                raise BackendError(
                    f"generated SQL failed: {exc}\n--- statement ---\n{statement}"
                ) from exc

    def drop_generated(self) -> None:
        views, triggers = codegen.generated_object_names(self.connection)
        cursor = self.connection.cursor()
        for trigger in triggers:
            cursor.execute(f"DROP TRIGGER IF EXISTS {trigger}")
        for view in views:
            cursor.execute(f"DROP VIEW IF EXISTS {view}")

    def regenerate(self) -> None:
        """(Re)install scaffolding, views, and trigger programs for the
        catalog's current state."""
        self.drop_generated()
        self._run(codegen.scaffold_statements(self.engine))
        self._run(codegen.view_statements(self.engine))
        self._run(codegen.trigger_statements(self.engine))

    def generated_sql(self) -> str:
        """The full delta-code script (for inspection and code metrics)."""
        return ";\n".join(
            codegen.view_statements(self.engine)
            + codegen.trigger_statements(self.engine)
        )

    # ------------------------------------------------------------------
    # Engine hooks (ExecutionBackend)
    # ------------------------------------------------------------------

    def on_evolution(self, version: "SchemaVersion") -> None:
        self._run(codegen.evolution_statements(self.engine, version))
        self.regenerate()
        self._run(codegen.repair_all_statements(self.engine))
        self.connection.commit()

    def on_materialize(self, schema: frozenset["SmoInstance"]) -> None:
        stage, swap = codegen.migration_statements(self.engine, schema)
        self._run(stage)
        self.drop_generated()
        self._run(swap)

    def after_materialize(self) -> None:
        self.regenerate()
        self._run(codegen.repair_all_statements(self.engine))
        self.connection.commit()

    def on_drop(self, version_name: str, removed: list["SmoInstance"]) -> None:
        from repro.backend.handlers import HandlerContext, handler_for

        cursor = self.connection.cursor()
        ctx = HandlerContext(self.engine)
        for smo in removed:
            semantics = smo.semantics
            tables: set[str] = set()
            if semantics is not None:
                for role in (
                    set(semantics.aux_src())
                    | set(semantics.aux_tgt())
                    | set(semantics.aux_shared())
                ):
                    tables.add(smo.aux_table_name(role))
                tables |= set(handler_for(ctx, smo).put_tables())
            for table in tables:
                cursor.execute(f"DROP TABLE IF EXISTS {table}")
        self.regenerate()
        self.connection.commit()

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------

    def allocate_key(self) -> int:
        cursor = self.connection.cursor()
        cursor.execute(
            f"UPDATE {emit.SEQUENCES_TABLE} SET value = value + 1 WHERE name = ?",
            (emit.ROW_ID_SEQUENCE,),
        )
        row = cursor.execute(
            f"SELECT value FROM {emit.SEQUENCES_TABLE} WHERE name = ?",
            (emit.ROW_ID_SEQUENCE,),
        ).fetchone()
        return int(row[0])

    def execute(self, sql: str, parameters: tuple = ()) -> sqlite3.Cursor:
        return self.connection.execute(sql, parameters)

    def select(self, version_name: str, table: str) -> list[tuple]:
        tv = self.engine.genealogy.schema_version(version_name).table_version(table)
        columns = ", ".join(qcols(tv.schema.column_names))
        return self.connection.execute(
            f"SELECT {columns} FROM {tv.view_name}"
        ).fetchall()

    def select_keyed(self, version_name: str, table: str) -> dict[int, tuple]:
        tv = self.engine.genealogy.schema_version(version_name).table_version(table)
        columns = ", ".join(["p", *qcols(tv.schema.column_names)])
        cursor = self.connection.execute(f"SELECT {columns} FROM {tv.view_name}")
        return {row[0]: row[1:] for row in cursor.fetchall()}

    def table_names(self) -> list[str]:
        rows = self.connection.execute(
            "SELECT name FROM sqlite_master WHERE type = 'table' ORDER BY name"
        ).fetchall()
        return [row[0] for row in rows]

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.engine.detach_backend(self)
        self.connection.close()
