"""The live SQLite execution backend.

``LiveSqliteBackend.attach(engine)`` snapshots the engine's physical
storage into a SQLite database, installs the generated views and ``INSTEAD
OF`` trigger programs for every co-existing schema version, and registers
itself with the engine so the delta code is regenerated on every catalog
transition (evolution, migration, drop).

From then on SQLite is the data plane: reads of any version go through the
generated views, writes issued against any version's view propagate to the
physical and auxiliary tables entirely inside SQLite via the trigger
cascade, and ``MATERIALIZE`` runs as a generated in-place SQL migration
(stage new physical tables from the old views, swap, regenerate).  The
engine's in-memory tables remain a snapshot from attach time.

Concurrency
-----------

The backend is a *session* architecture: it owns one administrative handle
(snapshot load, delta-code installation, migrations) plus a
:class:`~repro.backend.pool.SessionPool`, and every SQL-layer connection
leases its own :class:`SqliteSession` — a pooled ``sqlite3`` handle with
real per-session ``BEGIN``/``COMMIT``/``ROLLBACK``.  With a file-backed
database the pool runs in WAL mode, so concurrent readers never block;
the default ``:memory:`` database uses SQLite's shared cache with
``read_uncommitted`` (the engine's legacy isolation).  Catalog transitions
are pool-wide events: the engine's catalog lock stops new statements,
:meth:`LiveSqliteBackend.quiesce` commits every session's open transaction
(DDL is not transactional), the delta code is regenerated once on the
administrative handle — atomically, under a savepoint — and every session
sees the republished views and triggers because they live in the shared
database itself.
"""

from __future__ import annotations

import sqlite3
import threading
import time
from typing import TYPE_CHECKING

from repro.backend import codegen, emit
from repro.backend.emit import q, qcols
from repro.backend.pool import SessionPool, shared_memory_uri
from repro.errors import BackendError, CatalogError, InterfaceError

if TYPE_CHECKING:  # pragma: no cover
    from repro.catalog.genealogy import SmoInstance
    from repro.catalog.versions import SchemaVersion
    from repro.core.engine import InVerDa


class SqliteSession:
    """One client's leased handle to the backend's shared database.

    A session owns its transaction state: ``BEGIN``/``COMMIT``/``ROLLBACK``
    run on the session's own ``sqlite3`` connection and never interact with
    other sessions' transactions.  ``transaction_epoch`` is bumped whenever
    something *other than the owner* ends the session's transaction (a
    catalog transition's quiesce, or backend shutdown), so a SQL-layer
    connection holding a stale transaction token can detect that its
    transaction already ended instead of committing or rolling back work
    it does not own.
    """

    def __init__(self, backend: "LiveSqliteBackend", connection: sqlite3.Connection):
        self.backend = backend
        self.connection = connection
        self.transaction_epoch = 0
        self._closed = False
        self._close_lock = threading.Lock()

    # -- statement execution ---------------------------------------------

    def _check_open(self) -> sqlite3.Connection:
        if self._closed:
            raise InterfaceError("cannot operate on a closed backend session")
        return self.connection

    def execute(self, sql: str, parameters: tuple = ()) -> sqlite3.Cursor:
        return self._check_open().execute(sql, parameters)

    def cursor(self) -> sqlite3.Cursor:
        return self._check_open().cursor()

    def allocate_key(self) -> int:
        """Advance the shared row-identifier sequence on this session's
        handle (joins the session's open transaction, if any)."""
        connection = self._check_open()
        connection.execute(
            f"UPDATE {emit.SEQUENCES_TABLE} SET value = value + 1 WHERE name = ?",
            (emit.ROW_ID_SEQUENCE,),
        )
        row = connection.execute(
            f"SELECT value FROM {emit.SEQUENCES_TABLE} WHERE name = ?",
            (emit.ROW_ID_SEQUENCE,),
        ).fetchone()
        return int(row[0])

    # -- transactions ----------------------------------------------------

    @property
    def in_transaction(self) -> bool:
        return not self._closed and self.connection.in_transaction

    def begin(self) -> None:
        connection = self._check_open()
        if not connection.in_transaction:
            connection.execute("BEGIN")

    def begin_immediate(self) -> None:
        """Open a transaction holding the write lock from the start.

        A deferred transaction that reads first and writes later cannot
        wait out a concurrent writer in WAL mode: by the time it tries
        to upgrade, its snapshot is stale and SQLite fails it with
        ``SQLITE_BUSY_SNAPSHOT`` immediately, busy timeout or not.
        Taking the lock up front turns that race into an ordinary
        bounded wait."""
        connection = self._check_open()
        if not connection.in_transaction:
            connection.execute("BEGIN IMMEDIATE")

    def commit(self) -> None:
        connection = self._check_open()
        if connection.in_transaction:
            connection.execute("COMMIT")

    def rollback(self) -> None:
        connection = self._check_open()
        if connection.in_transaction:
            connection.execute("ROLLBACK")

    def end_transaction(self, *, commit: bool) -> None:
        """Forcibly end the session's open transaction on behalf of a
        pool-wide event, bumping the epoch so the owner learns of it."""
        if self._closed or not self.connection.in_transaction:
            return
        self.connection.execute("COMMIT" if commit else "ROLLBACK")
        self.transaction_epoch += 1

    # -- lifecycle -------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Roll back any open transaction and return the handle to the
        pool.  Safe against concurrent closers (a user thread racing the
        backend's shutdown or a GC-triggered ``Connection.__del__``): only
        one of them releases the handle."""
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        self.transaction_epoch += 1
        self.backend._forget_session(self)
        self.backend.pool.release(self.connection)


class LiveSqliteBackend:
    """A SQLite database serving reads *and* writes on every version."""

    def __init__(self, engine: "InVerDa", pool: SessionPool, *, flatten: bool = True):
        self.engine = engine
        self.pool = pool
        self.flatten = flatten
        # The administrative handle: snapshot load, delta-code install,
        # migrations, and the engine-facing read helpers below.
        self.connection = pool.connect()
        self._closed = False
        self._sessions: list[SqliteSession] = []
        self._sessions_lock = threading.Lock()
        # Fair admission for single-statement write transactions: the
        # online backfill's chunk loop and autocommit session writes both
        # take this before BEGIN IMMEDIATE.  SQLite's busy handler makes
        # blocked writers *poll* (at up to 100 ms intervals), so a chunk
        # loop re-acquiring the database write lock back-to-back starves
        # every live writer for the whole move; a Python lock wakes the
        # next waiter the moment the holder releases.
        self.write_gate = threading.Lock()
        # The durable catalog (None when persistence is off): every
        # catalog-transition hook writes through it, inside the same
        # transaction as the DDL it installs.
        self.store = None
        #: True when attach found a persisted catalog and recovered it
        #: instead of snapshotting the engine.
        self.recovered = False
        #: True when recovery reused the file's installed views/triggers
        #: (the persisted delta generation matched) instead of
        #: regenerating them.
        self.delta_reused = False
        #: Wall-clock seconds the whole attach-side recovery took (log
        #: replay, verification, and delta regeneration when needed);
        #: ``None`` until a recovery has run.
        self.recovery_seconds = None
        # Test hook: callable(point: str) invoked at named points inside
        # catalog transitions, so the crash-safety suite can simulate a
        # process dying between the catalog write and the commit.  Any
        # callable works: one-shot closures for targeted crash tests, or
        # repro.testing.RandomFaultInjector for seeded probability-based
        # injection across a long soak run.
        self.fault_injector = None
        #: In-flight online MATERIALIZE (an :class:`repro.backend.online
        #: .OnlineMove`), set between ``online_prepare`` and the commit of
        #: ``after_materialize``; ``None`` otherwise.
        self._online_move = None
        #: When True, the static delta-code verifier runs after every
        #: committed catalog transition (off the statement hot path, but
        #: on the transition path — opt-in via attach()).  Findings land
        #: in the metrics and ``engine.last_check``; error-severity ones
        #: raise CatalogError.
        self.verify_transitions = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def attach(
        cls,
        engine: "InVerDa",
        *,
        database: str = ":memory:",
        pool_size: int = 8,
        max_sessions: int | None = None,
        busy_timeout: float = 5.0,
        cached_statements: int = 256,
        flatten: bool = True,
        persist: bool = True,
        repair: bool = False,
        force: bool = False,
        verify_transitions: bool = False,
        resume_backfill: bool | None = True,
    ) -> "LiveSqliteBackend":
        """Snapshot ``engine`` into SQLite, install the generated delta
        code, and register with the engine.

        ``database=":memory:"`` (the default) serves all sessions from one
        shared-cache in-memory database; a file path opens (or creates)
        that file in WAL mode so concurrent readers scale.  ``pool_size``,
        ``max_sessions``, ``busy_timeout``, and ``cached_statements`` are
        passed through to the :class:`~repro.backend.pool.SessionPool`.

        ``flatten`` controls view emission: ``True`` (the default) emits
        algebraically composed flat views (one shallow SELECT per table
        version wherever the composer can flatten the SMO chain);
        ``False`` emits the naive nested view stack, one view per SMO hop
        (the fig16 benchmark's baseline).

        ``persist`` (default ``True``) keeps the catalog durable: the
        engine's genealogy, materialization, and generation live in
        ``_repro_catalog_*`` tables inside the database, written in the
        same transaction as every catalog transition's DDL.  When the
        database already carries a catalog (a file from a previous
        process), ``engine`` must be fresh and is *recovered* from it —
        the stored BiDEL log is replayed, fingerprints are verified
        against the physical tables, and the installed views/triggers are
        reused when still current.  ``repair``/``force`` are the
        recovery escape hatches (see :func:`repro.persist.recover`).

        ``verify_transitions`` (default ``False``) runs the static
        delta-code verifier (:mod:`repro.check`) after every committed
        catalog transition.  The check never touches the statement hot
        path — it costs only on DDL, and nothing at all when left off.

        ``resume_backfill`` decides what happens when the recovered
        catalog carries an in-flight online-MATERIALIZE journal (the
        process died mid-backfill): ``True`` (the default) finishes the
        move — remaining chunks plus cutover — before the open returns,
        ``False`` rolls the prepare phase back cleanly, and ``None``
        leaves journal and machinery untouched (static inspection, e.g.
        ``repro.check --db``).  A stale journal (superseded by a later
        committed transition) is always rolled back.
        """
        if database == ":memory:":
            database, uri, wal = shared_memory_uri(), True, False
        elif database.startswith("file:"):
            uri, wal = True, "mode=memory" not in database
            if not wal and "cache=shared" not in database:
                # A private in-memory URI would give every pooled session
                # its own empty database; all sessions must share one.
                database += ("&" if "?" in database else "?") + "cache=shared"
        else:
            uri, wal = False, True
        pool = SessionPool(
            database,
            uri=uri,
            wal=wal,
            pool_size=pool_size,
            max_sessions=max_sessions,
            busy_timeout=busy_timeout,
            cached_statements=cached_statements,
            plan_cache_stats=engine.plan_cache.stats,
            metrics=engine.metrics,
        )
        from repro.persist.store import CatalogStore

        backend = cls(engine, pool, flatten=flatten)
        backend.verify_transitions = verify_transitions
        try:
            if persist and CatalogStore.has_catalog(backend.connection):
                backend._recover(
                    repair=repair, force=force, resume_backfill=resume_backfill
                )
            else:
                backend._install_fresh(persist=persist)
        except BaseException:
            backend._closed = True
            pool.close()
            backend.connection.close()
            raise
        engine.attach_backend(backend)
        return backend

    def _install_fresh(self, *, persist: bool) -> None:
        """First attach to an empty database: load the engine's snapshot,
        install the delta code, and (with ``persist``) write the initial
        catalog — all in one transaction."""
        from repro.persist.store import CatalogStore

        self._begin()
        try:
            self._load_snapshot()
            self.regenerate()
            self._run(codegen.repair_all_statements(self.engine))
            if persist:
                store = CatalogStore(self.connection)
                store.save_snapshot(self.engine)
                store.set_delta_meta(self.engine.catalog_generation, self.flatten)
                self.store = store
            self.connection.commit()
        except BaseException:
            self._abort()
            raise

    def _recover(
        self, *, repair: bool, force: bool, resume_backfill: bool | None = True
    ) -> None:
        """Attach to a database that already carries a persisted catalog:
        rebuild the engine from it instead of snapshotting the engine
        over it, and reuse the installed delta code when still current."""
        from repro.persist.fingerprint import catalog_fingerprint
        from repro.persist.recovery import recover
        from repro.persist.store import CatalogStore

        recover_started = time.perf_counter()
        store = CatalogStore(self.connection)
        if self.engine.genealogy.schema_versions:
            # Re-attach of an engine that already holds this catalog
            # (close() + attach() in one process): accept only an exact
            # fingerprint match — anything else would silently serve one
            # catalog's data through another catalog's views.
            state = store.load()
            if catalog_fingerprint(self.engine) != state.fingerprint:
                raise CatalogError(
                    "this database already carries a different catalog; "
                    "attach a fresh engine (repro.open) or use another file"
                )
            # Attach happens before any session can run, so the write
            # lock is not needed (or held) here.
            self.engine.catalog_generation = state.generation  # repro-lint: allow(RPC302)
            self.engine.metrics.gauge("repro_catalog_generation").set(
                state.generation
            )
        else:
            state = recover(self.engine, self.connection, repair=repair, force=force)
        self.store = store
        self.recovered = True
        if (
            state.delta_generation == self.engine.catalog_generation
            and state.delta_flatten == self.flatten
            and self._delta_installed()
        ):
            self.delta_reused = True
        else:
            self._begin()
            try:
                self.regenerate()
                self._run(codegen.repair_all_statements(self.engine))
                store.set_delta_meta(self.engine.catalog_generation, self.flatten)
                self.connection.commit()
            except BaseException:
                self._abort()
                raise
        self._finish_backfill(resume_backfill)
        self.recovery_seconds = time.perf_counter() - recover_started

    def _finish_backfill(self, resume: bool | None) -> None:
        """Converge an in-flight online-MATERIALIZE journal found at
        attach time.

        A journal row means the process died between ``prepare`` and the
        cutover commit: the capture triggers, staging tables, and chunk
        cursors are all on disk and the catalog still describes the
        pre-move state.  ``resume=True`` finishes the move from the
        recorded cursors (the journal phase tells us nothing more is
        needed — every chunk committed atomically with its cursor);
        ``False`` drops the transitional machinery instead; ``None``
        touches nothing.  A journal whose generation does not match the
        recovered catalog was superseded by a later committed transition
        and is rolled back regardless — its staged rows describe a
        physical layout that no longer exists.
        """
        from repro.backend import online

        if self.store is None:
            return
        record = self.store.read_backfill()
        if record is None:
            return
        plan = online.plan_from_payload(record.plan)
        stale = record.generation != self.engine.catalog_generation or any(
            uid not in self.engine.genealogy.smo_instances for uid in record.smos
        )
        if resume is None and not stale:
            return
        if stale or not resume:
            self._begin()
            try:
                self._run(online.rollback_statements(plan))
                self.store.clear_backfill()
                self.connection.commit()
            except BaseException:
                self._abort()
                raise
            return
        move = online.OnlineMove(
            plan,
            cursors={name: int(p) for name, p in record.cursors.items()},
            chunks=record.chunks,
        )
        self._online_move = move
        # apply_materialization drives attached backends; normally the
        # engine registers us after attach() returns, but the resume needs
        # the hookup now (attach_backend is idempotent).
        self.engine.attach_backend(self)
        while not self.online_chunk():
            pass
        schema = frozenset(
            self.engine.genealogy.smo_instances[uid] for uid in record.smos
        )
        self.engine.apply_materialization(schema)

    def _delta_installed(self) -> bool:
        """Does the database hold a view for every active table version?
        Guards delta-code reuse against files whose generated objects were
        stripped (e.g. by a vacuum-into or a manual cleanup)."""
        installed = {
            row[0]
            for row in self.connection.execute(
                "SELECT name FROM sqlite_master WHERE type = 'view'"
            )
        }
        expected = {
            tv.view_name
            for version in self.engine.genealogy.active_versions()
            for tv in version.tables.values()
        }
        return expected <= installed

    def _load_snapshot(self) -> None:
        cursor = self.connection.cursor()
        cursor.execute(emit.sequences_ddl())
        for name, value in self.engine.database.sequences.items():
            cursor.execute(
                f"INSERT OR REPLACE INTO {emit.SEQUENCES_TABLE} VALUES (?, ?)",
                (name, value),
            )
        cursor.execute(
            f"INSERT OR IGNORE INTO {emit.SEQUENCES_TABLE} VALUES (?, 0)",
            (emit.ROW_ID_SEQUENCE,),
        )
        for name, table in self.engine.database.tables.items():
            columns = table.schema.column_names
            cursor.execute(emit.table_ddl(name, columns))
            placeholders = ", ".join("?" for _ in range(len(columns) + 1))
            cursor.executemany(
                f"INSERT INTO {q(name)} VALUES ({placeholders})",
                [(key, *row) for key, row in table],
            )

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------

    def open_session(self) -> SqliteSession:
        """Lease a session (its own pooled ``sqlite3`` handle) for one
        SQL-layer connection."""
        if self._closed:
            raise InterfaceError("cannot open a session on a closed backend")
        session = SqliteSession(self, self.pool.acquire())
        with self._sessions_lock:
            self._sessions.append(session)
        return session

    def _forget_session(self, session: SqliteSession) -> None:
        with self._sessions_lock:
            if session in self._sessions:
                self._sessions.remove(session)

    def live_sessions(self) -> list[SqliteSession]:
        with self._sessions_lock:
            return list(self._sessions)

    def quiesce(self) -> None:
        """Commit every session's open transaction ahead of a catalog
        transition (BiDEL DDL is not transactional and implicitly commits
        every open transaction, pool-wide).  Called by the engine while it
        holds the catalog write lock, so no statements are in flight."""
        for session in self.live_sessions():
            session.end_transaction(commit=True)
        if self.connection.in_transaction:
            self.connection.execute("COMMIT")

    # ------------------------------------------------------------------
    # Delta-code generation
    # ------------------------------------------------------------------

    def _run(self, statements: list[str]) -> None:
        cursor = self.connection.cursor()
        for statement in statements:
            try:
                cursor.execute(statement)
            except sqlite3.Error as exc:
                raise BackendError(
                    f"generated SQL failed: {exc}\n--- statement ---\n{statement}"
                ) from exc

    def drop_generated(self) -> None:
        views, triggers = codegen.generated_object_names(self.connection)
        cursor = self.connection.cursor()
        for trigger in triggers:
            cursor.execute(f"DROP TRIGGER IF EXISTS {q(trigger)}")
        for view in views:
            cursor.execute(f"DROP VIEW IF EXISTS {q(view)}")

    def regenerate(self) -> None:
        """(Re)install scaffolding, views, and trigger programs for the
        catalog's current state — atomically.

        The drop + reinstall runs under a savepoint: a mid-install failure
        (a :class:`BackendError` from any generated statement) rolls the
        database back to the previous, complete delta code instead of
        leaving half-installed views serving wrong answers.
        """
        cursor = self.connection.cursor()
        cursor.execute("SAVEPOINT repro_regenerate")
        try:
            self.drop_generated()
            self._run(codegen.scaffold_statements(self.engine))
            self._run(codegen.view_statements(self.engine, flatten=self.flatten))
            self._run(codegen.trigger_statements(self.engine))
        except BaseException:
            cursor.execute("ROLLBACK TO repro_regenerate")
            cursor.execute("RELEASE repro_regenerate")
            raise
        cursor.execute("RELEASE repro_regenerate")

    def generated_sql(self) -> str:
        """The full delta-code script (for inspection and code metrics)."""
        return ";\n".join(
            codegen.view_statements(self.engine, flatten=self.flatten)
            + codegen.trigger_statements(self.engine)
        )

    # ------------------------------------------------------------------
    # Engine hooks (ExecutionBackend)
    # ------------------------------------------------------------------
    #
    # Every catalog transition is one explicit transaction on the
    # administrative handle: the catalog rows (via ``self.store``) and the
    # DDL they describe commit together, so a crash at any point — the
    # fault-injection suite exercises the ``_fault`` markers — leaves the
    # database wholly before or wholly after the transition.

    def _begin(self) -> None:
        if not self.connection.in_transaction:
            self.connection.execute("BEGIN")

    def _abort(self) -> None:
        if self.connection.in_transaction:
            self.connection.execute("ROLLBACK")

    def _fault(self, point: str) -> None:
        if self.fault_injector is not None:
            self.fault_injector(point)

    def on_evolution(self, version: "SchemaVersion") -> None:
        self._begin()
        try:
            if self.store is not None:
                self.store.record_evolution(self.engine, version)
                self._fault("evolution:after-catalog")
            self._run(codegen.evolution_statements(self.engine, version))
            self.regenerate()
            self._run(codegen.repair_all_statements(self.engine))
            if self.store is not None:
                self.store.set_delta_meta(self.engine.catalog_generation, self.flatten)
            self._fault("evolution:before-commit")
            self.connection.commit()
        except BaseException:
            self._abort()
            raise
        self._verify_after_transition("evolution")

    def on_materialize(self, schema: frozenset["SmoInstance"]) -> None:
        self._begin()
        try:
            if self._online_move is not None:
                self._online_cutover(schema)
            else:
                stage, swap = codegen.migration_statements(self.engine, schema)
                self._run(stage)
                self._fault("materialize:staged")
                self.drop_generated()
                self._run(swap)
                self._fault("materialize:swapped")
        except BaseException:
            self._abort()
            raise

    def after_materialize(self) -> None:
        try:
            self.regenerate()
            self._run(codegen.repair_all_statements(self.engine))
            if self.store is not None:
                self.store.record_materialize(self.engine)
                self.store.set_delta_meta(self.engine.catalog_generation, self.flatten)
                if self._online_move is not None:
                    # The journal, the cutover DDL, and the new catalog
                    # commit together: a crash before this commit leaves
                    # the backfill resumable, after it the move is done.
                    self.store.clear_backfill()
            self._fault("materialize:before-commit")
            self.connection.commit()
        except BaseException:
            self._abort()
            raise
        self._online_move = None
        self._verify_after_transition("materialize")

    # ------------------------------------------------------------------
    # Online MATERIALIZE (journaled backfill; see repro.backend.online)
    # ------------------------------------------------------------------

    def online_prepare(self, schema: frozenset["SmoInstance"], *, chunk_rows=None):
        """Phase 1: install the change-capture machinery and the (empty)
        staging tables, and journal the move — one transaction, called by
        the engine under a brief write-lock window."""
        from repro.backend import online
        from repro.persist.store import BackfillRecord

        if self._online_move is not None:
            raise BackendError("an online materialization is already in flight")
        plan = online.build_plan(self.engine, schema)
        move = online.OnlineMove(
            plan,
            chunk_rows=int(chunk_rows) if chunk_rows else online.DEFAULT_CHUNK_ROWS,
            cursors={table_move.stage: 0 for table_move in plan.trackable()},
        )
        self._begin()
        try:
            self._run(online.prepare_statements(plan))
            if self.store is not None:
                self.store.write_backfill(
                    BackfillRecord(
                        phase="backfill",
                        generation=self.engine.catalog_generation,
                        smos=list(plan.smos),
                        plan=online.plan_payload(plan),
                        cursors=dict(move.cursors),
                        chunks=0,
                    )
                )
            self._fault("materialize-online:prepared")
            self.connection.commit()
        except BaseException:
            self._abort()
            raise
        self._online_move = move
        return move

    def online_chunk(self) -> bool:
        """Phase 2, one step: copy the next keyset page of every trackable
        table into its staging table, repair the rows live writes touched
        since the last chunk, and advance the journal cursors — all in one
        transaction, called under the *read* side of the catalog lock so
        concurrent statements keep flowing.  Returns ``True`` once every
        copy has drained (the cutover tail handles rows arriving later).
        """
        from repro.backend import online

        move = self._online_move
        if move is None:
            raise BackendError("no online materialization is in flight")
        plan = move.plan
        last_error = None
        for _ in range(5):
            cursors = dict(move.cursors)
            # The write gate serializes this chunk's transaction with the
            # autocommit writes of live sessions: without it the loop
            # re-takes the SQLite write lock back-to-back and every live
            # writer — which waits by polling the busy handler — starves
            # until the whole move finishes.
            with self.write_gate:
                self._begin()
                try:
                    copied = 0
                    drained = True
                    bound = int(
                        self.connection.execute(
                            online.dirty_bound_sql()
                        ).fetchone()[0]
                    )
                    for table_move in plan.trackable():
                        result = self.connection.execute(
                            online.chunk_copy_sql(
                                table_move,
                                cursors[table_move.stage],
                                move.chunk_rows,
                            )
                        )
                        rows = max(result.rowcount, 0)
                        copied += rows
                        # A partial page means this table's copy reached
                        # the current end of its keyset.  That — not zero
                        # rows — is the termination test: under a steady
                        # write load every chunk copies the handful of
                        # freshly inserted rows, so waiting for an empty
                        # page would never converge.  The cutover tail
                        # picks up whatever arrives after the last
                        # partial page.
                        if rows >= move.chunk_rows:
                            drained = False
                        staged_max = self.connection.execute(
                            online.staged_max_sql(table_move)
                        ).fetchone()[0]
                        if staged_max is not None:
                            cursors[table_move.stage] = max(
                                cursors[table_move.stage], int(staged_max)
                            )
                    if bound:
                        self._run(online.repair_statements(plan, cursors, bound))
                    move.chunks += 1
                    move.rows += copied
                    if self.store is not None:
                        self.store.update_backfill(
                            cursors=dict(cursors), chunks=move.chunks
                        )
                    self._fault("materialize-online:chunk")
                    self.connection.commit()
                except sqlite3.OperationalError as exc:
                    # A live writer holds the database (or a shared-cache
                    # table) lock: back off and retry the whole chunk —
                    # nothing was committed, so the cursors stay where
                    # the journal says.
                    self._abort()
                    last_error = exc
                except BaseException:
                    self._abort()
                    raise
                else:
                    move.cursors = cursors
                    return drained
            time.sleep(0.01)
        raise BackendError(
            f"online backfill chunk could not get the write lock: {last_error}"
        )

    def online_progress(self) -> tuple[int, int]:
        """(chunks committed, rows copied) of the in-flight move."""
        move = self._online_move
        return (move.chunks, move.rows) if move is not None else (0, 0)

    def _online_cutover(self, schema: frozenset["SmoInstance"]) -> None:
        """Phase 3 (inside ``on_materialize``'s transaction, under the
        write lock): finalize the staged copies, verify them against the
        live views, tear the capture machinery down, and reuse the offline
        swap with the staged tables standing in for the one-shot copies."""
        from repro.backend import online

        move = self._online_move
        plan = move.plan
        # Rows past the last chunk cursor, then every row live writes
        # touched — the write lock makes both final.
        self._run(online.tail_copy_statements(plan, move.cursors))
        bound = int(self.connection.execute(online.dirty_bound_sql()).fetchone()[0])
        if bound:
            self._run(online.repair_statements(plan, move.cursors, bound, final=True))
        for table_move in plan.trackable():
            staged_sql, live_sql = online.count_check_sql(table_move)
            staged = self.connection.execute(staged_sql).fetchone()[0]
            live = self.connection.execute(live_sql).fetchone()[0]
            if staged != live:
                raise BackendError(
                    f"online backfill diverged for {table_move.view}: staged "
                    f"{staged} rows but the live view serves {live}"
                )
        self._fault("materialize-online:pre-cutover")
        self._run(online.capture_teardown_statements(plan))
        stage, swap = codegen.migration_statements(
            self.engine, schema, staged=plan.staged_map()
        )
        self._run(stage)
        self._fault("materialize:staged")
        self.drop_generated()
        self._run(swap)
        self._fault("materialize:swapped")

    def on_drop(self, version_name: str, removed: list["SmoInstance"]) -> None:
        from repro.backend.handlers import HandlerContext, handler_for

        self._begin()
        try:
            cursor = self.connection.cursor()
            ctx = HandlerContext(self.engine)
            for smo in removed:
                semantics = smo.semantics
                tables: set[str] = set()
                if semantics is not None:
                    for role in (
                        set(semantics.aux_src())
                        | set(semantics.aux_tgt())
                        | set(semantics.aux_shared())
                    ):
                        tables.add(smo.aux_table_name(role))
                    tables |= set(handler_for(ctx, smo).put_tables())
                for table in tables:
                    cursor.execute(f"DROP TABLE IF EXISTS {q(table)}")
            self.regenerate()
            if self.store is not None:
                self.store.record_drop(self.engine, version_name)
                self.store.set_delta_meta(self.engine.catalog_generation, self.flatten)
            self._fault("drop:before-commit")
            self.connection.commit()
        except BaseException:
            self._abort()
            raise
        self._verify_after_transition("drop")

    def _verify_after_transition(self, kind: str) -> None:
        """Opt-in post-transition gate: statically verify the delta code
        the transition just installed.  Runs after the commit (the DDL is
        durable either way); an error-severity finding raises so the
        caller's transition fails loudly instead of serving a catalog
        whose views do not resolve."""
        if not self.verify_transitions:
            return
        from repro.check.delta import verify_delta_code
        from repro.check.diagnostics import error_count, record_findings
        from repro.errors import CatalogError

        findings = verify_delta_code(self.engine, flatten=self.flatten)
        record_findings(self.engine, findings, scope=f"transition:{kind}")
        if error_count(findings):
            details = "; ".join(
                f"[{d.code}] {d.obj}: {d.message}"
                for d in findings if d.severity == "error"
            )
            raise CatalogError(
                f"delta code verification failed after {kind}: {details}"
            )

    # ------------------------------------------------------------------
    # Catalog introspection
    # ------------------------------------------------------------------

    def on_disk_generation(self) -> int | None:
        """The catalog generation last committed to the database — on a
        WAL file this sees other processes' commits, so a caller can
        detect that the shared catalog moved under it."""
        if self.store is None:
            return None
        return self.store.read_generation()

    def catalog_stats(self) -> dict:
        """Durability facts for ``Connection.stats()`` / server status."""
        stats: dict = {
            "generation": self.engine.catalog_generation,
            "fingerprint": self.engine.catalog_fingerprint(),
            "persisted": self.store is not None,
            "recovered": self.recovered,
            "delta_reused": self.delta_reused,
            "recovery_seconds": self.recovery_seconds,
        }
        if self.store is not None:
            on_disk = self.store.read_generation()
            stats["on_disk_generation"] = on_disk
            stats["stale"] = (
                on_disk is not None and on_disk > self.engine.catalog_generation
            )
        return stats

    # ------------------------------------------------------------------
    # Data plane (administrative handle)
    # ------------------------------------------------------------------

    def allocate_key(self) -> int:
        cursor = self.connection.cursor()
        cursor.execute(
            f"UPDATE {emit.SEQUENCES_TABLE} SET value = value + 1 WHERE name = ?",
            (emit.ROW_ID_SEQUENCE,),
        )
        row = cursor.execute(
            f"SELECT value FROM {emit.SEQUENCES_TABLE} WHERE name = ?",
            (emit.ROW_ID_SEQUENCE,),
        ).fetchone()
        return int(row[0])

    def execute(self, sql: str, parameters: tuple = ()) -> sqlite3.Cursor:
        return self.connection.execute(sql, parameters)

    def select(self, version_name: str, table: str) -> list[tuple]:
        tv = self.engine.genealogy.schema_version(version_name).table_version(table)
        columns = ", ".join(qcols(tv.schema.column_names))
        return self.connection.execute(
            f"SELECT {columns} FROM {tv.view_name}"
        ).fetchall()

    def select_keyed(self, version_name: str, table: str) -> dict[int, tuple]:
        tv = self.engine.genealogy.schema_version(version_name).table_version(table)
        columns = ", ".join(["p", *qcols(tv.schema.column_names)])
        cursor = self.connection.execute(f"SELECT {columns} FROM {tv.view_name}")
        return {row[0]: row[1:] for row in cursor.fetchall()}

    def table_names(self) -> list[str]:
        rows = self.connection.execute(
            "SELECT name FROM sqlite_master WHERE type = 'table' ORDER BY name"
        ).fetchall()
        return [row[0] for row in rows]

    def close(self) -> None:
        """Roll back in-flight work, close every session, and release the
        database.  Sessions closed here bump their epoch, so a dangling
        SQL-layer connection sees its transaction as ended instead of
        misreporting (or later clobbering) someone else's."""
        if self._closed:
            return
        self._closed = True
        for session in self.live_sessions():
            session.close()
        if self.connection.in_transaction:
            self.connection.execute("ROLLBACK")
        self.engine.detach_backend(self)
        self.pool.close()
        self.connection.close()
