"""The live SQLite execution backend.

``LiveSqliteBackend.attach(engine)`` snapshots the engine's physical
storage into a SQLite database, installs the generated views and ``INSTEAD
OF`` trigger programs for every co-existing schema version, and registers
itself with the engine so the delta code is regenerated on every catalog
transition (evolution, migration, drop).

From then on SQLite is the data plane: reads of any version go through the
generated views, writes issued against any version's view propagate to the
physical and auxiliary tables entirely inside SQLite via the trigger
cascade, and ``MATERIALIZE`` runs as a generated in-place SQL migration
(stage new physical tables from the old views, swap, regenerate).  The
engine's in-memory tables remain a snapshot from attach time.

Concurrency
-----------

The backend is a *session* architecture: it owns one administrative handle
(snapshot load, delta-code installation, migrations) plus a
:class:`~repro.backend.pool.SessionPool`, and every SQL-layer connection
leases its own :class:`SqliteSession` — a pooled ``sqlite3`` handle with
real per-session ``BEGIN``/``COMMIT``/``ROLLBACK``.  With a file-backed
database the pool runs in WAL mode, so concurrent readers never block;
the default ``:memory:`` database uses SQLite's shared cache with
``read_uncommitted`` (the engine's legacy isolation).  Catalog transitions
are pool-wide events: the engine's catalog lock stops new statements,
:meth:`LiveSqliteBackend.quiesce` commits every session's open transaction
(DDL is not transactional), the delta code is regenerated once on the
administrative handle — atomically, under a savepoint — and every session
sees the republished views and triggers because they live in the shared
database itself.
"""

from __future__ import annotations

import sqlite3
import threading
from typing import TYPE_CHECKING

from repro.backend import codegen, emit
from repro.backend.emit import q, qcols
from repro.backend.pool import SessionPool, shared_memory_uri
from repro.errors import BackendError, InterfaceError

if TYPE_CHECKING:  # pragma: no cover
    from repro.catalog.genealogy import SmoInstance
    from repro.catalog.versions import SchemaVersion
    from repro.core.engine import InVerDa


class SqliteSession:
    """One client's leased handle to the backend's shared database.

    A session owns its transaction state: ``BEGIN``/``COMMIT``/``ROLLBACK``
    run on the session's own ``sqlite3`` connection and never interact with
    other sessions' transactions.  ``transaction_epoch`` is bumped whenever
    something *other than the owner* ends the session's transaction (a
    catalog transition's quiesce, or backend shutdown), so a SQL-layer
    connection holding a stale transaction token can detect that its
    transaction already ended instead of committing or rolling back work
    it does not own.
    """

    def __init__(self, backend: "LiveSqliteBackend", connection: sqlite3.Connection):
        self.backend = backend
        self.connection = connection
        self.transaction_epoch = 0
        self._closed = False
        self._close_lock = threading.Lock()

    # -- statement execution ---------------------------------------------

    def _check_open(self) -> sqlite3.Connection:
        if self._closed:
            raise InterfaceError("cannot operate on a closed backend session")
        return self.connection

    def execute(self, sql: str, parameters: tuple = ()) -> sqlite3.Cursor:
        return self._check_open().execute(sql, parameters)

    def cursor(self) -> sqlite3.Cursor:
        return self._check_open().cursor()

    def allocate_key(self) -> int:
        """Advance the shared row-identifier sequence on this session's
        handle (joins the session's open transaction, if any)."""
        connection = self._check_open()
        connection.execute(
            f"UPDATE {emit.SEQUENCES_TABLE} SET value = value + 1 WHERE name = ?",
            (emit.ROW_ID_SEQUENCE,),
        )
        row = connection.execute(
            f"SELECT value FROM {emit.SEQUENCES_TABLE} WHERE name = ?",
            (emit.ROW_ID_SEQUENCE,),
        ).fetchone()
        return int(row[0])

    # -- transactions ----------------------------------------------------

    @property
    def in_transaction(self) -> bool:
        return not self._closed and self.connection.in_transaction

    def begin(self) -> None:
        connection = self._check_open()
        if not connection.in_transaction:
            connection.execute("BEGIN")

    def commit(self) -> None:
        connection = self._check_open()
        if connection.in_transaction:
            connection.execute("COMMIT")

    def rollback(self) -> None:
        connection = self._check_open()
        if connection.in_transaction:
            connection.execute("ROLLBACK")

    def end_transaction(self, *, commit: bool) -> None:
        """Forcibly end the session's open transaction on behalf of a
        pool-wide event, bumping the epoch so the owner learns of it."""
        if self._closed or not self.connection.in_transaction:
            return
        self.connection.execute("COMMIT" if commit else "ROLLBACK")
        self.transaction_epoch += 1

    # -- lifecycle -------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Roll back any open transaction and return the handle to the
        pool.  Safe against concurrent closers (a user thread racing the
        backend's shutdown or a GC-triggered ``Connection.__del__``): only
        one of them releases the handle."""
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        self.transaction_epoch += 1
        self.backend._forget_session(self)
        self.backend.pool.release(self.connection)


class LiveSqliteBackend:
    """A SQLite database serving reads *and* writes on every version."""

    def __init__(self, engine: "InVerDa", pool: SessionPool, *, flatten: bool = True):
        self.engine = engine
        self.pool = pool
        self.flatten = flatten
        # The administrative handle: snapshot load, delta-code install,
        # migrations, and the engine-facing read helpers below.
        self.connection = pool.connect()
        self._closed = False
        self._sessions: list[SqliteSession] = []
        self._sessions_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def attach(
        cls,
        engine: "InVerDa",
        *,
        database: str = ":memory:",
        pool_size: int = 8,
        max_sessions: int | None = None,
        busy_timeout: float = 5.0,
        cached_statements: int = 256,
        flatten: bool = True,
    ) -> "LiveSqliteBackend":
        """Snapshot ``engine`` into SQLite, install the generated delta
        code, and register with the engine.

        ``database=":memory:"`` (the default) serves all sessions from one
        shared-cache in-memory database; a file path opens (or creates)
        that file in WAL mode so concurrent readers scale.  ``pool_size``,
        ``max_sessions``, ``busy_timeout``, and ``cached_statements`` are
        passed through to the :class:`~repro.backend.pool.SessionPool`.

        ``flatten`` controls view emission: ``True`` (the default) emits
        algebraically composed flat views (one shallow SELECT per table
        version wherever the composer can flatten the SMO chain);
        ``False`` emits the naive nested view stack, one view per SMO hop
        (the fig16 benchmark's baseline).
        """
        if database == ":memory:":
            database, uri, wal = shared_memory_uri(), True, False
        elif database.startswith("file:"):
            uri, wal = True, "mode=memory" not in database
            if not wal and "cache=shared" not in database:
                # A private in-memory URI would give every pooled session
                # its own empty database; all sessions must share one.
                database += ("&" if "?" in database else "?") + "cache=shared"
        else:
            uri, wal = False, True
        pool = SessionPool(
            database,
            uri=uri,
            wal=wal,
            pool_size=pool_size,
            max_sessions=max_sessions,
            busy_timeout=busy_timeout,
            cached_statements=cached_statements,
            plan_cache_stats=engine.plan_cache.stats,
        )
        backend = cls(engine, pool, flatten=flatten)
        backend._load_snapshot()
        backend.regenerate()
        backend._run(codegen.repair_all_statements(engine))
        backend.connection.commit()
        engine.attach_backend(backend)
        return backend

    def _load_snapshot(self) -> None:
        cursor = self.connection.cursor()
        cursor.execute(emit.sequences_ddl())
        for name, value in self.engine.database.sequences.items():
            cursor.execute(
                f"INSERT OR REPLACE INTO {emit.SEQUENCES_TABLE} VALUES (?, ?)",
                (name, value),
            )
        cursor.execute(
            f"INSERT OR IGNORE INTO {emit.SEQUENCES_TABLE} VALUES (?, 0)",
            (emit.ROW_ID_SEQUENCE,),
        )
        for name, table in self.engine.database.tables.items():
            columns = table.schema.column_names
            cursor.execute(emit.table_ddl(name, columns))
            placeholders = ", ".join("?" for _ in range(len(columns) + 1))
            cursor.executemany(
                f"INSERT INTO {q(name)} VALUES ({placeholders})",
                [(key, *row) for key, row in table],
            )
        self.connection.commit()

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------

    def open_session(self) -> SqliteSession:
        """Lease a session (its own pooled ``sqlite3`` handle) for one
        SQL-layer connection."""
        if self._closed:
            raise InterfaceError("cannot open a session on a closed backend")
        session = SqliteSession(self, self.pool.acquire())
        with self._sessions_lock:
            self._sessions.append(session)
        return session

    def _forget_session(self, session: SqliteSession) -> None:
        with self._sessions_lock:
            if session in self._sessions:
                self._sessions.remove(session)

    def live_sessions(self) -> list[SqliteSession]:
        with self._sessions_lock:
            return list(self._sessions)

    def quiesce(self) -> None:
        """Commit every session's open transaction ahead of a catalog
        transition (BiDEL DDL is not transactional and implicitly commits
        every open transaction, pool-wide).  Called by the engine while it
        holds the catalog write lock, so no statements are in flight."""
        for session in self.live_sessions():
            session.end_transaction(commit=True)
        if self.connection.in_transaction:
            self.connection.execute("COMMIT")

    # ------------------------------------------------------------------
    # Delta-code generation
    # ------------------------------------------------------------------

    def _run(self, statements: list[str]) -> None:
        cursor = self.connection.cursor()
        for statement in statements:
            try:
                cursor.execute(statement)
            except sqlite3.Error as exc:
                raise BackendError(
                    f"generated SQL failed: {exc}\n--- statement ---\n{statement}"
                ) from exc

    def drop_generated(self) -> None:
        views, triggers = codegen.generated_object_names(self.connection)
        cursor = self.connection.cursor()
        for trigger in triggers:
            cursor.execute(f"DROP TRIGGER IF EXISTS {q(trigger)}")
        for view in views:
            cursor.execute(f"DROP VIEW IF EXISTS {q(view)}")

    def regenerate(self) -> None:
        """(Re)install scaffolding, views, and trigger programs for the
        catalog's current state — atomically.

        The drop + reinstall runs under a savepoint: a mid-install failure
        (a :class:`BackendError` from any generated statement) rolls the
        database back to the previous, complete delta code instead of
        leaving half-installed views serving wrong answers.
        """
        cursor = self.connection.cursor()
        cursor.execute("SAVEPOINT repro_regenerate")
        try:
            self.drop_generated()
            self._run(codegen.scaffold_statements(self.engine))
            self._run(codegen.view_statements(self.engine, flatten=self.flatten))
            self._run(codegen.trigger_statements(self.engine))
        except BaseException:
            cursor.execute("ROLLBACK TO repro_regenerate")
            cursor.execute("RELEASE repro_regenerate")
            raise
        cursor.execute("RELEASE repro_regenerate")

    def generated_sql(self) -> str:
        """The full delta-code script (for inspection and code metrics)."""
        return ";\n".join(
            codegen.view_statements(self.engine, flatten=self.flatten)
            + codegen.trigger_statements(self.engine)
        )

    # ------------------------------------------------------------------
    # Engine hooks (ExecutionBackend)
    # ------------------------------------------------------------------

    def on_evolution(self, version: "SchemaVersion") -> None:
        self._run(codegen.evolution_statements(self.engine, version))
        self.regenerate()
        self._run(codegen.repair_all_statements(self.engine))
        self.connection.commit()

    def on_materialize(self, schema: frozenset["SmoInstance"]) -> None:
        stage, swap = codegen.migration_statements(self.engine, schema)
        self._run(stage)
        self.drop_generated()
        self._run(swap)

    def after_materialize(self) -> None:
        self.regenerate()
        self._run(codegen.repair_all_statements(self.engine))
        self.connection.commit()

    def on_drop(self, version_name: str, removed: list["SmoInstance"]) -> None:
        from repro.backend.handlers import HandlerContext, handler_for

        cursor = self.connection.cursor()
        ctx = HandlerContext(self.engine)
        for smo in removed:
            semantics = smo.semantics
            tables: set[str] = set()
            if semantics is not None:
                for role in (
                    set(semantics.aux_src())
                    | set(semantics.aux_tgt())
                    | set(semantics.aux_shared())
                ):
                    tables.add(smo.aux_table_name(role))
                tables |= set(handler_for(ctx, smo).put_tables())
            for table in tables:
                cursor.execute(f"DROP TABLE IF EXISTS {q(table)}")
        self.regenerate()
        self.connection.commit()

    # ------------------------------------------------------------------
    # Data plane (administrative handle)
    # ------------------------------------------------------------------

    def allocate_key(self) -> int:
        cursor = self.connection.cursor()
        cursor.execute(
            f"UPDATE {emit.SEQUENCES_TABLE} SET value = value + 1 WHERE name = ?",
            (emit.ROW_ID_SEQUENCE,),
        )
        row = cursor.execute(
            f"SELECT value FROM {emit.SEQUENCES_TABLE} WHERE name = ?",
            (emit.ROW_ID_SEQUENCE,),
        ).fetchone()
        return int(row[0])

    def execute(self, sql: str, parameters: tuple = ()) -> sqlite3.Cursor:
        return self.connection.execute(sql, parameters)

    def select(self, version_name: str, table: str) -> list[tuple]:
        tv = self.engine.genealogy.schema_version(version_name).table_version(table)
        columns = ", ".join(qcols(tv.schema.column_names))
        return self.connection.execute(
            f"SELECT {columns} FROM {tv.view_name}"
        ).fetchall()

    def select_keyed(self, version_name: str, table: str) -> dict[int, tuple]:
        tv = self.engine.genealogy.schema_version(version_name).table_version(table)
        columns = ", ".join(["p", *qcols(tv.schema.column_names)])
        cursor = self.connection.execute(f"SELECT {columns} FROM {tv.view_name}")
        return {row[0]: row[1:] for row in cursor.fetchall()}

    def table_names(self) -> list[str]:
        rows = self.connection.execute(
            "SELECT name FROM sqlite_master WHERE type = 'table' ORDER BY name"
        ).fetchall()
        return [row[0] for row in rows]

    def close(self) -> None:
        """Roll back in-flight work, close every session, and release the
        database.  Sessions closed here bump their epoch, so a dangling
        SQL-layer connection sees its transaction as ended instead of
        misreporting (or later clobbering) someone else's."""
        if self._closed:
            return
        self._closed = True
        for session in self.live_sessions():
            session.close()
        if self.connection.in_transaction:
            self.connection.execute("ROLLBACK")
        self.engine.detach_backend(self)
        self.pool.close()
        self.connection.close()
