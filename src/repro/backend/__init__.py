"""Live execution backends: generated delta code running inside a real DBMS.

The paper's system generates views and ``INSTEAD OF`` triggers inside the
DBMS so that every co-existing schema version is a full read/write SQL
interface executed by the standard query engine (Sections 6-7).  This
package is that execution path for SQLite:

- :mod:`repro.backend.handlers` compiles each SMO's bidirectional mapping
  (its Datalog rule sets where available, hand-derived templates for the
  identifier-generating SMOs) into view ``SELECT`` bodies and trigger
  propagation programs;
- :mod:`repro.backend.codegen` walks the schema version catalog and
  assembles the full delta-code script for the current materialization;
- :mod:`repro.backend.sqlite` owns the live SQLite database: it loads the
  physical tables, installs the generated objects, regenerates them on
  evolution, and executes ``MATERIALIZE`` as an in-place SQL migration;
- :mod:`repro.backend.planner` lowers DB-API statements onto backend SQL
  with WHERE/ORDER BY/LIMIT pushdown;
- :mod:`repro.backend.pool` leases every SQL-layer connection its own
  ``sqlite3`` session over the one shared database (WAL for file-backed
  databases, shared-cache for in-memory ones), so concurrent clients of
  different schema versions run real, independent transactions.

``repro.connect(engine, version=..., backend="sqlite")`` is the public
entry point.
"""

from repro.backend.base import ExecutionBackend
from repro.backend.pool import SessionPool
from repro.backend.sqlite import LiveSqliteBackend, SqliteSession

__all__ = ["ExecutionBackend", "LiveSqliteBackend", "SessionPool", "SqliteSession"]
