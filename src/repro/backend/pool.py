"""A pool of per-session SQLite connections over one shared database.

The live backend serves *many* concurrent clients: every SQL-layer
connection (``repro.connect(engine, version, backend="sqlite")``) leases
its own ``sqlite3`` handle to the one shared database holding the physical
tables and the generated delta code, so sessions run real, independent
transactions instead of time-sharing a single handle.

Two database modes are supported:

- **file-backed (WAL)** — the database lives on disk and is opened in
  write-ahead-log mode: any number of sessions read concurrently without
  blocking each other or the (single) writer, each read sees a consistent
  committed snapshot, and writers queue on SQLite's write lock with a
  busy timeout.  This is the serving configuration; it is what the
  ``fig14`` concurrency benchmark measures.
- **shared-cache in-memory** (the default ``:memory:``) — all sessions
  attach to one shared-cache memory database with ``read_uncommitted``
  enabled, preserving the engine's documented READ UNCOMMITTED semantics:
  in-flight writes are visible to every co-existing version until rolled
  back, and a write that conflicts with another session's open
  transaction fails fast instead of deadlocking.

Every handle is created with ``check_same_thread=False`` so a session can
be leased on one thread and driven from another (the pool itself is
thread-safe); SQLite's serialized threading mode makes the cross-thread
calls safe.
"""

from __future__ import annotations

import itertools
import sqlite3
import threading
import time

from repro.errors import OperationalError

_shared_memory_counter = itertools.count()


def shared_memory_uri() -> str:
    """A fresh shared-cache in-memory database URI: every connection using
    the same URI sees the same database, and the database lives for as
    long as at least one connection stays open."""
    n = next(_shared_memory_counter)
    return f"file:repro-mem-{n}?mode=memory&cache=shared"


class SessionPool:
    """Thread-safe pool of ``sqlite3`` connections to one database.

    Sizing knobs:

    - ``pool_size`` — how many idle handles are retained for reuse; a
      released handle beyond this is closed instead of cached.
    - ``max_sessions`` — hard cap on handles leased out at once.  ``None``
      (the default) means unbounded: SQLite itself arbitrates concurrency,
      so an uncapped pool cannot deadlock, only add sessions.  With a cap,
      :meth:`acquire` blocks up to ``acquire_timeout`` seconds and then
      raises :class:`~repro.errors.OperationalError`.
    - ``busy_timeout`` — seconds a session waits on SQLite's write lock
      before a statement fails with "database is locked".
    - ``cached_statements`` — size of sqlite3's per-connection prepared-
      statement cache.  The statement hot path reuses one rendered SQL
      text per cached plan, so a generous cache means repeated statements
      skip SQLite's prepare entirely.
    - ``plan_cache_stats`` — optional zero-argument callable returning the
      engine's plan-cache counters; when set, :meth:`stats` folds them in
      so one ``status`` round trip reports pool *and* cache health.
    - ``metrics`` — optional :class:`repro.obs.MetricsRegistry`; when set,
      lease waits land in ``repro_pool_lease_wait_seconds`` and occupancy
      in ``repro_pool_sessions{state=leased|idle}``.
    """

    def __init__(
        self,
        database: str,
        *,
        uri: bool = False,
        wal: bool = False,
        pool_size: int = 8,
        max_sessions: int | None = None,
        busy_timeout: float = 5.0,
        acquire_timeout: float = 30.0,
        cached_statements: int = 256,
        plan_cache_stats=None,
        metrics=None,
    ):
        self.database = database
        self.uri = uri
        self.wal = wal
        self.pool_size = pool_size
        self.max_sessions = max_sessions
        self.busy_timeout = busy_timeout
        self.acquire_timeout = acquire_timeout
        self.cached_statements = cached_statements
        self.plan_cache_stats = plan_cache_stats
        self._lease_wait = None
        self._sessions_gauge = None
        if metrics is not None:
            self._lease_wait = metrics.histogram(
                "repro_pool_lease_wait_seconds",
                "Time spent waiting to lease a pooled session.",
            )
            self._sessions_gauge = metrics.gauge(
                "repro_pool_sessions",
                "Pooled sessions by state.",
                ("state",),
            )
        self._idle: list[sqlite3.Connection] = []
        self._leased = 0
        self._closed = False
        self._cond = threading.Condition()

    # ------------------------------------------------------------------
    # Connection construction
    # ------------------------------------------------------------------

    def _configure(self, connection: sqlite3.Connection) -> sqlite3.Connection:
        connection.isolation_level = None  # manual transaction control
        connection.execute(f"PRAGMA busy_timeout = {int(self.busy_timeout * 1000)}")
        # The online-MATERIALIZE change capture hangs AFTER triggers on the
        # physical tables; without recursive triggers SQLite would skip
        # them for writes made *inside* the INSTEAD OF trigger programs
        # (i.e. every routed write).  No other trigger is affected: the
        # generated delta code only ever uses INSTEAD OF triggers on
        # views, which base-table writes cannot fire.
        connection.execute("PRAGMA recursive_triggers = ON")
        if self.wal:
            # Idempotent: the journal mode is a property of the database
            # file, but every connection must still opt in to NORMAL
            # syncing (durability is not the reproduction's bottleneck).
            connection.execute("PRAGMA journal_mode = WAL")
            connection.execute("PRAGMA synchronous = NORMAL")
        else:
            # Shared-cache mode uses table-level locks; read_uncommitted
            # keeps readers from blocking on (and lets them see) other
            # sessions' in-flight writes — the engine's documented
            # READ UNCOMMITTED isolation.
            connection.execute("PRAGMA read_uncommitted = 1")
        return connection

    def connect(self) -> sqlite3.Connection:
        """One new configured handle, outside the pool's accounting (used
        by the backend for its own administrative connection)."""
        return self._configure(
            sqlite3.connect(
                self.database,
                uri=self.uri,
                check_same_thread=False,
                timeout=self.busy_timeout,
                cached_statements=self.cached_statements,
            )
        )

    # ------------------------------------------------------------------
    # Leasing
    # ------------------------------------------------------------------

    def acquire(self) -> sqlite3.Connection:
        wait_start = time.perf_counter()
        with self._cond:
            if self._closed:
                raise OperationalError("the connection pool is closed")
            if self.max_sessions is not None:
                deadline = time.monotonic() + self.acquire_timeout
                while self._leased >= self.max_sessions:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._cond.wait(timeout=remaining):
                        raise OperationalError(
                            f"no session available within {self.acquire_timeout}s "
                            f"(max_sessions={self.max_sessions})"
                        )
                    if self._closed:
                        raise OperationalError("the connection pool is closed")
            self._leased += 1
            handle = self._idle.pop() if self._idle else None
        self._observe_lease(wait_start)
        if handle is not None:
            return handle
        try:
            return self.connect()
        except BaseException:
            with self._cond:
                self._leased -= 1
                self._cond.notify()
            self._publish_occupancy()
            raise

    def _observe_lease(self, wait_start: float) -> None:
        if self._lease_wait is not None:
            self._lease_wait.observe(time.perf_counter() - wait_start)
        self._publish_occupancy()

    def _publish_occupancy(self) -> None:
        if self._sessions_gauge is None:
            return
        with self._cond:
            leased, idle = self._leased, len(self._idle)
        self._sessions_gauge.set(leased, state="leased")
        self._sessions_gauge.set(idle, state="idle")

    def release(self, connection: sqlite3.Connection) -> None:
        """Return a handle to the pool; any open transaction is rolled
        back so the next lease starts clean."""
        try:
            if connection.in_transaction:
                connection.execute("ROLLBACK")
        except sqlite3.Error:
            connection.close()
            connection = None  # type: ignore[assignment]
        with self._cond:
            self._leased = max(0, self._leased - 1)
            if (
                connection is not None
                and not self._closed
                and len(self._idle) < self.pool_size
            ):
                self._idle.append(connection)
                connection = None  # type: ignore[assignment]
            self._cond.notify()
        self._publish_occupancy()
        if connection is not None:
            connection.close()

    @property
    def leased(self) -> int:
        with self._cond:
            return self._leased

    @property
    def idle(self) -> int:
        with self._cond:
            return len(self._idle)

    def stats(self) -> dict:
        """A consistent snapshot of the pool's sizing and occupancy — the
        numbers the network server's ``status`` op reports to clients."""
        with self._cond:
            payload = {
                "database": self.database,
                "wal": self.wal,
                "leased": self._leased,
                "idle": len(self._idle),
                "pool_size": self.pool_size,
                "max_sessions": self.max_sessions,
                "busy_timeout": self.busy_timeout,
                "cached_statements": self.cached_statements,
                "closed": self._closed,
            }
        if self.plan_cache_stats is not None:
            payload["plan_cache"] = self.plan_cache_stats()
        if self._lease_wait is not None:
            payload["lease_waits"] = self._lease_wait.series_stats()
        return payload

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        with self._cond:
            self._closed = True
            idle, self._idle = self._idle, []
            self._cond.notify_all()
        for connection in idle:
            try:
                connection.close()
            except sqlite3.Error:  # pragma: no cover - close is best effort
                pass
