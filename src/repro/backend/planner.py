"""Lowering DB-API statements onto live-backend SQL.

The statement AST of :mod:`repro.sql` is rendered back into SQLite SQL
against the generated views, pushing WHERE / ORDER BY / LIMIT / OFFSET
down to the backend's query engine.  ``?`` placeholders are renumbered to
``?N`` so parameter positions survive re-rendering.  Semantics mirror the
in-memory planner: the ``rowid`` pseudo-column maps to the tuple id ``p``,
NULLs sort last in either direction, generated key columns reject updates,
and the cursor ``description`` is identical on both backends.
"""

from __future__ import annotations

from dataclasses import fields, is_dataclass
from typing import TYPE_CHECKING

from repro.backend.emit import q, qcols
from repro.catalog.versions import SchemaVersion
from repro.errors import AccessError, ProgrammingError
from repro.expr.ast import (
    Binary,
    BoolOp,
    Column,
    Comparison,
    Expression,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    Unary,
)
from repro.sql.ast import BidelStatement, Delete, Insert, Parameter, Select, Update
from repro.sql.planner import (
    ROWID,
    StatementResult,
    _projection,
    build_insert_mappings,
    resolve_table,
    rowid_exposed,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.backend.sqlite import SqliteSession
    from repro.catalog.genealogy import TableVersion

# SQLite spellings for scalar functions whose names differ from ours.
_FUNCTION_NAMES = {"least": "min", "greatest": "max"}


class SqlRenderer:
    """Render an expression tree as SQLite SQL over one table version's
    view, with ``?N`` parameter placeholders."""

    def __init__(self, tv: "TableVersion"):
        self.tv = tv

    def render(self, expression: Expression) -> str:
        if isinstance(expression, Literal):
            return expression.to_sql()
        if isinstance(expression, Parameter):
            return f"?{expression.index + 1}"
        if isinstance(expression, Column):
            if self.tv.schema.has_column(expression.name):
                return q(expression.name)
            if expression.name == ROWID and rowid_exposed(self.tv):
                return "p"
            raise ProgrammingError(
                f"table {self.tv.name!r} has no column {expression.name!r}"
            )
        if isinstance(expression, Unary):
            inner = self.render(expression.operand)
            if expression.op == "NOT":
                return f"NOT ({inner})"
            return f"{expression.op}({inner})"
        if isinstance(expression, Binary):
            return f"({self.render(expression.left)} {expression.op} {self.render(expression.right)})"
        if isinstance(expression, Comparison):
            op = "<>" if expression.op == "!=" else expression.op
            return f"({self.render(expression.left)} {op} {self.render(expression.right)})"
        if isinstance(expression, BoolOp):
            joined = f" {expression.op} ".join(self.render(i) for i in expression.items)
            return f"({joined})"
        if isinstance(expression, IsNull):
            suffix = "IS NOT NULL" if expression.negated else "IS NULL"
            return f"({self.render(expression.operand)} {suffix})"
        if isinstance(expression, InList):
            values = ", ".join(self.render(i) for i in expression.items)
            keyword = "NOT IN" if expression.negated else "IN"
            return f"({self.render(expression.operand)} {keyword} ({values}))"
        if isinstance(expression, Like):
            keyword = "NOT LIKE" if expression.negated else "LIKE"
            return (
                f"({self.render(expression.operand)} {keyword} "
                f"{self.render(expression.pattern)})"
            )
        if isinstance(expression, FuncCall):
            if expression.name == "concat":
                if not expression.args:
                    return "''"
                return "(" + " || ".join(self.render(a) for a in expression.args) + ")"
            name = _FUNCTION_NAMES.get(expression.name, expression.name)
            rendered = ", ".join(self.render(a) for a in expression.args)
            return f"{name}({rendered})"
        raise ProgrammingError(
            f"cannot push {type(expression).__name__} down to the SQLite backend"
        )


def _where_sql(renderer: SqlRenderer, where: Expression | None) -> str:
    if where is None:
        return ""
    # WHERE semantics require a genuine TRUE; SQLite's WHERE already
    # treats NULL as not-satisfied.
    return f" WHERE {renderer.render(where)}"


def _max_param_index(expression) -> int:
    """Highest ``?N`` index (1-based) appearing in an expression tree, 0
    when parameter-free."""
    if isinstance(expression, Parameter):
        return expression.index + 1
    highest = 0
    if is_dataclass(expression):
        for field in fields(expression):
            value = getattr(expression, field.name)
            candidates = value if isinstance(value, tuple) else (value,)
            for candidate in candidates:
                if isinstance(candidate, Expression):
                    highest = max(highest, _max_param_index(candidate))
    return highest


def _params_for(where: Expression | None, params: tuple) -> tuple:
    """sqlite3 requires exactly as many bindings as the statement's highest
    ``?N``; a re-rendered WHERE-only statement uses a prefix of them."""
    if where is None:
        return ()
    return params[: _max_param_index(where)]


def execute_select(
    session: "SqliteSession", version: SchemaVersion, stmt: Select, params: tuple
) -> StatementResult:
    tv = resolve_table(version, stmt.table)
    items, description = _projection(tv, stmt.items)
    renderer = SqlRenderer(tv)
    select_list = ", ".join(renderer.render(item.expression) for item in items)
    sql = f"SELECT {select_list} FROM {tv.view_name}"
    sql += _where_sql(renderer, stmt.where)
    if stmt.order_by:
        keys = []
        for item in stmt.order_by:
            direction = "DESC" if item.descending else "ASC"
            keys.append(f"{renderer.render(item.expression)} {direction} NULLS LAST")
        sql += " ORDER BY " + ", ".join(keys)
    if stmt.limit is not None:
        sql += f" LIMIT {renderer.render(stmt.limit)}"
        if stmt.offset is not None:
            sql += f" OFFSET {renderer.render(stmt.offset)}"
    rows = session.execute(sql, params).fetchall()
    return StatementResult(description=description, rows=rows, rowcount=len(rows))


def execute_insert(
    session: "SqliteSession", version: SchemaVersion, stmt: Insert, params: tuple
) -> StatementResult:
    tv, mappings = build_insert_mappings(version, stmt, params)
    keys: list[int] = []
    rows: list[tuple] = []
    for values in mappings:
        if tv.key_column is not None:
            provided = values.get(tv.key_column)
            key = int(provided) if provided is not None else session.allocate_key()
            values = dict(values)
            values[tv.key_column] = key
        else:
            key = session.allocate_key()
        rows.append((key, *tv.schema.row_from_mapping(values)))
        keys.append(key)
    if rows:
        collist = ", ".join(["p", *qcols(tv.schema.column_names)])
        placeholders = ", ".join("?" for _ in range(len(tv.schema.column_names) + 1))
        cursor = session.cursor()
        cursor.executemany(
            f"INSERT INTO {tv.view_name} ({collist}) VALUES ({placeholders})", rows
        )
    return StatementResult(rowcount=len(keys), lastrowid=keys[-1] if keys else None)


def _matched_count(
    session: "SqliteSession",
    tv: "TableVersion",
    renderer: SqlRenderer,
    where: Expression | None,
    params: tuple,
) -> int:
    sql = f"SELECT COUNT(*) FROM {tv.view_name}" + _where_sql(renderer, where)
    return int(session.execute(sql, _params_for(where, params)).fetchone()[0])


def execute_update(
    session: "SqliteSession", version: SchemaVersion, stmt: Update, params: tuple
) -> StatementResult:
    tv = resolve_table(version, stmt.table)
    renderer = SqlRenderer(tv)
    sets = []
    for name, expression in stmt.assignments:
        if not tv.schema.has_column(name):
            raise ProgrammingError(f"table {tv.name!r} has no column {name!r}")
        if name == tv.key_column:
            raise AccessError(
                f"column {name!r} of {tv.name!r} is the generated "
                "identifier and cannot be updated"
            )
        sets.append(f"{q(name)} = {renderer.render(expression)}")
    count = _matched_count(session, tv, renderer, stmt.where, params)
    if count:
        sql = f"UPDATE {tv.view_name} SET {', '.join(sets)}"
        sql += _where_sql(renderer, stmt.where)
        session.execute(sql, params)
    return StatementResult(rowcount=count)


def execute_delete(
    session: "SqliteSession", version: SchemaVersion, stmt: Delete, params: tuple
) -> StatementResult:
    tv = resolve_table(version, stmt.table)
    renderer = SqlRenderer(tv)
    count = _matched_count(session, tv, renderer, stmt.where, params)
    if count:
        sql = f"DELETE FROM {tv.view_name}" + _where_sql(renderer, stmt.where)
        session.execute(sql, params)
    return StatementResult(rowcount=count)


def execute_statement_sqlite(
    session: "SqliteSession", version: SchemaVersion, stmt, params: tuple
) -> StatementResult:
    if isinstance(stmt, Select):
        return execute_select(session, version, stmt, params)
    if isinstance(stmt, Insert):
        return execute_insert(session, version, stmt, params)
    if isinstance(stmt, Update):
        return execute_update(session, version, stmt, params)
    if isinstance(stmt, Delete):
        return execute_delete(session, version, stmt, params)
    if isinstance(stmt, BidelStatement):  # pragma: no cover - handled upstream
        raise ProgrammingError("BiDEL DDL runs through the engine, not the backend")
    raise ProgrammingError(f"cannot execute {type(stmt).__name__} here")
