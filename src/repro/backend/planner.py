"""Lowering DB-API statements onto live-backend SQL.

The statement AST of :mod:`repro.sql` is rendered back into SQLite SQL
against the generated views, pushing WHERE / ORDER BY / LIMIT / OFFSET
down to the backend's query engine.  ``?`` placeholders are renumbered to
``?N`` so parameter positions survive re-rendering.  Semantics mirror the
in-memory planner: the ``rowid`` pseudo-column maps to the tuple id ``p``,
NULLs sort last in either direction, generated key columns reject updates,
and the cursor ``description`` is identical on both backends.
"""

from __future__ import annotations

from dataclasses import fields, is_dataclass
from typing import TYPE_CHECKING

from repro.backend.emit import q, qcols
from repro.catalog.versions import SchemaVersion
from repro.errors import AccessError, ProgrammingError
from repro.expr.ast import (
    Binary,
    BoolOp,
    Column,
    Comparison,
    Expression,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    Unary,
)
from repro.sql.ast import BidelStatement, Delete, Insert, Parameter, Select, Update
from repro.sql.planner import (
    ROWID,
    StatementResult,
    _projection,
    build_insert_mappings,
    resolve_table,
    rowid_exposed,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.backend.sqlite import SqliteSession
    from repro.catalog.genealogy import TableVersion

# SQLite spellings for scalar functions whose names differ from ours.
_FUNCTION_NAMES = {"least": "min", "greatest": "max"}


class SqlRenderer:
    """Render an expression tree as SQLite SQL over one table version's
    view, with ``?N`` parameter placeholders."""

    def __init__(self, tv: "TableVersion"):
        self.tv = tv

    def render(self, expression: Expression) -> str:
        if isinstance(expression, Literal):
            return expression.to_sql()
        if isinstance(expression, Parameter):
            return f"?{expression.index + 1}"
        if isinstance(expression, Column):
            if self.tv.schema.has_column(expression.name):
                return q(expression.name)
            if expression.name == ROWID and rowid_exposed(self.tv):
                return "p"
            raise ProgrammingError(
                f"table {self.tv.name!r} has no column {expression.name!r}"
            )
        if isinstance(expression, Unary):
            inner = self.render(expression.operand)
            if expression.op == "NOT":
                return f"NOT ({inner})"
            return f"{expression.op}({inner})"
        if isinstance(expression, Binary):
            return f"({self.render(expression.left)} {expression.op} {self.render(expression.right)})"
        if isinstance(expression, Comparison):
            op = "<>" if expression.op == "!=" else expression.op
            return f"({self.render(expression.left)} {op} {self.render(expression.right)})"
        if isinstance(expression, BoolOp):
            joined = f" {expression.op} ".join(self.render(i) for i in expression.items)
            return f"({joined})"
        if isinstance(expression, IsNull):
            suffix = "IS NOT NULL" if expression.negated else "IS NULL"
            return f"({self.render(expression.operand)} {suffix})"
        if isinstance(expression, InList):
            values = ", ".join(self.render(i) for i in expression.items)
            keyword = "NOT IN" if expression.negated else "IN"
            return f"({self.render(expression.operand)} {keyword} ({values}))"
        if isinstance(expression, Like):
            keyword = "NOT LIKE" if expression.negated else "LIKE"
            return (
                f"({self.render(expression.operand)} {keyword} "
                f"{self.render(expression.pattern)})"
            )
        if isinstance(expression, FuncCall):
            if expression.name == "concat":
                if not expression.args:
                    return "''"
                return "(" + " || ".join(self.render(a) for a in expression.args) + ")"
            name = _FUNCTION_NAMES.get(expression.name, expression.name)
            rendered = ", ".join(self.render(a) for a in expression.args)
            return f"{name}({rendered})"
        raise ProgrammingError(
            f"cannot push {type(expression).__name__} down to the SQLite backend"
        )


def _where_sql(renderer: SqlRenderer, where: Expression | None) -> str:
    if where is None:
        return ""
    # WHERE semantics require a genuine TRUE; SQLite's WHERE already
    # treats NULL as not-satisfied.
    return f" WHERE {renderer.render(where)}"


def _max_param_index(expression) -> int:
    """Highest ``?N`` index (1-based) appearing in an expression tree, 0
    when parameter-free."""
    if isinstance(expression, Parameter):
        return expression.index + 1
    highest = 0
    if is_dataclass(expression):
        for field in fields(expression):
            value = getattr(expression, field.name)
            candidates = value if isinstance(value, tuple) else (value,)
            for candidate in candidates:
                if isinstance(candidate, Expression):
                    highest = max(highest, _max_param_index(candidate))
    return highest


# ---------------------------------------------------------------------------
# Compiled plans
#
# ``compile_statement_sqlite`` lowers a parsed statement ONCE — table
# resolution, column validation, SQL rendering, ``description`` assembly —
# into a plan object whose ``run()`` only binds parameters and executes.
# The engine's :class:`~repro.sql.plancache.PlanCache` keeps plans across
# statements, and sqlite3's per-connection statement cache (sized by the
# pool's ``cached_statements`` knob) keeps the *prepared* form of each
# plan's SQL per session, so a repeated statement costs two dictionary
# lookups before SQLite runs it.
# ---------------------------------------------------------------------------


class SqliteSelectPlan:
    kind = "select"

    def __init__(self, sql: str, description: tuple, param_count: int,
                 view_name: str = ""):
        self.sql = sql
        self.description = description
        self.param_count = param_count
        self.view_name = view_name

    def run(self, session: "SqliteSession", params: tuple) -> StatementResult:
        rows = session.execute(self.sql, params).fetchall()
        return StatementResult(
            description=self.description, rows=rows, rowcount=len(rows)
        )

    def explain_entries(self) -> list[tuple[str, str]]:
        return [
            ("plan", type(self).__name__),
            ("view", self.view_name),
            ("backend_sql", self.sql),
        ]


class SqliteInsertPlan:
    kind = "insert"

    def __init__(self, version: SchemaVersion, stmt: Insert, tv: "TableVersion"):
        self.version = version
        self.stmt = stmt
        self.tv = tv
        self.param_count = stmt.param_count
        collist = ", ".join(["p", *qcols(tv.schema.column_names)])
        placeholders = ", ".join("?" for _ in range(len(tv.schema.column_names) + 1))
        self.insert_sql = (
            f"INSERT INTO {tv.view_name} ({collist}) VALUES ({placeholders})"
        )

    def _rows(self, session: "SqliteSession", params: tuple) -> tuple[list, list]:
        _tv, mappings = build_insert_mappings(self.version, self.stmt, params)
        keys: list[int] = []
        rows: list[tuple] = []
        tv = self.tv
        for values in mappings:
            if tv.key_column is not None:
                provided = values.get(tv.key_column)
                key = int(provided) if provided is not None else session.allocate_key()
                values = dict(values)
                values[tv.key_column] = key
            else:
                key = session.allocate_key()
            rows.append((key, *tv.schema.row_from_mapping(values)))
            keys.append(key)
        return keys, rows

    def run(self, session: "SqliteSession", params: tuple) -> StatementResult:
        return self.run_many(session, [params])

    def run_many(self, session: "SqliteSession", seq_of_params) -> StatementResult:
        """One multi-row write for the whole batch (``seq_of_params`` rows
        are already-normalized tuples): every parameter row's VALUES are
        evaluated and keyed first, then a single ``executemany`` against
        the generated view fires the INSTEAD OF trigger program per row
        inside SQLite — no per-row re-planning in Python."""
        keys: list[int] = []
        rows: list[tuple] = []
        for params in seq_of_params:
            batch_keys, batch_rows = self._rows(session, params)
            keys.extend(batch_keys)
            rows.extend(batch_rows)
        if rows:
            session.cursor().executemany(self.insert_sql, rows)
        return StatementResult(rowcount=len(keys), lastrowid=keys[-1] if keys else None)

    @property
    def view_name(self) -> str:
        return self.tv.view_name

    def explain_entries(self) -> list[tuple[str, str]]:
        return [
            ("plan", type(self).__name__),
            ("view", self.view_name),
            ("backend_sql", self.insert_sql),
        ]


class SqliteUpdatePlan:
    kind = "update"

    def __init__(self, count_sql: str, dml_sql: str, where_params: int,
                 param_count: int, view_name: str = ""):
        self.count_sql = count_sql
        self.dml_sql = dml_sql
        self.where_params = where_params
        self.param_count = param_count
        self.view_name = view_name

    def explain_entries(self) -> list[tuple[str, str]]:
        return [
            ("plan", type(self).__name__),
            ("view", self.view_name),
            ("backend_sql", self.dml_sql),
            ("count_sql", self.count_sql),
        ]

    def run(self, session: "SqliteSession", params: tuple) -> StatementResult:
        count = int(
            session.execute(self.count_sql, params[: self.where_params]).fetchone()[0]
        )
        if count:
            session.execute(self.dml_sql, params)
        return StatementResult(rowcount=count)


class SqliteDeletePlan(SqliteUpdatePlan):
    kind = "delete"

    def run(self, session: "SqliteSession", params: tuple) -> StatementResult:
        count = int(
            session.execute(self.count_sql, params[: self.where_params]).fetchone()[0]
        )
        if count:
            session.execute(self.dml_sql, params[: self.where_params])
        return StatementResult(rowcount=count)


def compile_select(version: SchemaVersion, stmt: Select) -> SqliteSelectPlan:
    tv = resolve_table(version, stmt.table)
    items, description = _projection(tv, stmt.items)
    renderer = SqlRenderer(tv)
    select_list = ", ".join(renderer.render(item.expression) for item in items)
    sql = f"SELECT {select_list} FROM {tv.view_name}"
    sql += _where_sql(renderer, stmt.where)
    if stmt.order_by:
        keys = []
        for item in stmt.order_by:
            direction = "DESC" if item.descending else "ASC"
            keys.append(f"{renderer.render(item.expression)} {direction} NULLS LAST")
        sql += " ORDER BY " + ", ".join(keys)
    if stmt.limit is not None:
        sql += f" LIMIT {renderer.render(stmt.limit)}"
        if stmt.offset is not None:
            sql += f" OFFSET {renderer.render(stmt.offset)}"
    return SqliteSelectPlan(sql, description, stmt.param_count, tv.view_name)


def compile_insert(version: SchemaVersion, stmt: Insert) -> SqliteInsertPlan:
    tv = resolve_table(version, stmt.table)
    if stmt.columns is not None:
        for name in stmt.columns:
            if not tv.schema.has_column(name):
                raise ProgrammingError(f"table {tv.name!r} has no column {name!r}")
    return SqliteInsertPlan(version, stmt, tv)


def compile_update(version: SchemaVersion, stmt: Update) -> SqliteUpdatePlan:
    tv = resolve_table(version, stmt.table)
    renderer = SqlRenderer(tv)
    sets = []
    for name, expression in stmt.assignments:
        if not tv.schema.has_column(name):
            raise ProgrammingError(f"table {tv.name!r} has no column {name!r}")
        if name == tv.key_column:
            raise AccessError(
                f"column {name!r} of {tv.name!r} is the generated "
                "identifier and cannot be updated"
            )
        sets.append(f"{q(name)} = {renderer.render(expression)}")
    where_sql = _where_sql(renderer, stmt.where)
    count_sql = f"SELECT COUNT(*) FROM {tv.view_name}" + where_sql
    dml_sql = f"UPDATE {tv.view_name} SET {', '.join(sets)}" + where_sql
    return SqliteUpdatePlan(
        count_sql, dml_sql, _max_param_index(stmt.where), stmt.param_count,
        tv.view_name,
    )


def compile_delete(version: SchemaVersion, stmt: Delete) -> SqliteDeletePlan:
    tv = resolve_table(version, stmt.table)
    renderer = SqlRenderer(tv)
    where_sql = _where_sql(renderer, stmt.where)
    count_sql = f"SELECT COUNT(*) FROM {tv.view_name}" + where_sql
    dml_sql = f"DELETE FROM {tv.view_name}" + where_sql
    return SqliteDeletePlan(
        count_sql, dml_sql, _max_param_index(stmt.where), stmt.param_count,
        tv.view_name,
    )


def compile_statement_sqlite(version: SchemaVersion, stmt):
    """Lower ``stmt`` to a reusable plan against ``version``'s views."""
    if isinstance(stmt, Select):
        return compile_select(version, stmt)
    if isinstance(stmt, Insert):
        return compile_insert(version, stmt)
    if isinstance(stmt, Update):
        return compile_update(version, stmt)
    if isinstance(stmt, Delete):
        return compile_delete(version, stmt)
    if isinstance(stmt, BidelStatement):  # pragma: no cover - handled upstream
        raise ProgrammingError("BiDEL DDL runs through the engine, not the backend")
    raise ProgrammingError(f"cannot execute {type(stmt).__name__} here")


def execute_statement_sqlite(
    session: "SqliteSession", version: SchemaVersion, stmt, params: tuple
) -> StatementResult:
    """Compile-and-run convenience (the cursor hot path caches the
    compiled plan instead of calling this)."""
    return compile_statement_sqlite(version, stmt).run(session, params)
