"""Low-level SQL text emitters shared by the backend code generators.

Everything here renders *strings*; nothing talks to a database.  The
conventions mirror the engine's storage model: every table and view carries
the InVerDa tuple identifier as an explicit leading column ``p``, and NULL
handling is always null-safe (``IS`` / ``IS NOT``) because SMO mappings
routinely traffic in NULL payloads (the paper's omega rows).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from repro.expr.ast import Expression
from repro.util.naming import quote_identifier

SEQUENCES_TABLE = "repro_sequences"
ROW_ID_SEQUENCE = "p"


def q(name: str) -> str:
    return quote_identifier(name)


def qcols(names: Iterable[str]) -> list[str]:
    return [quote_identifier(name) for name in names]


def sequences_ddl() -> str:
    return (
        f"CREATE TABLE IF NOT EXISTS {SEQUENCES_TABLE} "
        "(name TEXT PRIMARY KEY, value INTEGER NOT NULL)"
    )


def table_ddl(name: str, columns: Sequence[str], *, temp: bool = False) -> str:
    """``CREATE TABLE`` with the leading ``p`` key plus payload columns.

    The table name is quoted like every column: generated physical names
    are sanitized identifiers today, but a reserved word or odd character
    slipping through must never produce broken DDL.
    """
    parts = ["p INTEGER PRIMARY KEY"] + [f"{q(c)}" for c in columns]
    keyword = "CREATE TEMP TABLE" if temp else "CREATE TABLE"
    return f"{keyword} IF NOT EXISTS {q(name)} ({', '.join(parts)})"


def empty_relation(columns: Sequence[str]) -> str:
    """A subquery usable as a table name for an aux role that is not stored
    under the current materialization (the engine reads it as empty)."""
    cols = ", ".join(f"NULL AS {q(c)}" for c in ("p", *columns))
    return f"(SELECT {cols} WHERE 0)"


def seq_next_statements(sequence: str, *, guard: str | None = None) -> list[str]:
    """Advance ``sequence`` by one; the new value is then readable via
    :func:`seq_value`.  With ``guard``, the bump only happens when the guard
    condition holds (used for conditional allocation inside triggers)."""
    where = f"name = '{sequence}'"
    if guard is not None:
        where += f" AND ({guard})"
    return [f"UPDATE {SEQUENCES_TABLE} SET value = value + 1 WHERE {where}"]


def seq_value(sequence: str) -> str:
    return f"(SELECT value FROM {SEQUENCES_TABLE} WHERE name = '{sequence}')"


def ident(a: str, b: str) -> str:
    """Null-safe equality."""
    return f"{a} IS {b}"


def all_null(expressions: Sequence[str]) -> str:
    """SQL for "every expression is NULL" (true for an empty sequence,
    matching :func:`repro.bidel.smo.base.is_all_null`)."""
    if not expressions:
        return "1"
    return "(" + " AND ".join(f"{e} IS NULL" for e in expressions) + ")"


def not_all_null(expressions: Sequence[str]) -> str:
    if not expressions:
        return "0"
    return "(" + " OR ".join(f"{e} IS NOT NULL" for e in expressions) + ")"


def rows_differ(left_alias: str, right_alias: str, columns: Sequence[str]) -> str:
    """Null-safe row inequality across payload columns."""
    if not columns:
        return "0"
    parts = [f"{left_alias}.{q(c)} IS NOT {right_alias}.{q(c)}" for c in columns]
    return "(" + " OR ".join(parts) + ")"


def render_expression(expression: Expression, references: Mapping[str, str]) -> str:
    """Render a scalar expression with column names bound to SQL references
    (``NEW.col``, ``alias.col``, ...)."""
    return expression.rename(dict(references)).to_sql()


def new_refs(columns: Iterable[str], *, row: str = "NEW") -> dict[str, str]:
    return {c: f"{row}.{q(c)}" for c in columns}


# ---------------------------------------------------------------------------
# Row-level write statements
# ---------------------------------------------------------------------------


def upsert_row(
    target: str,
    columns: Sequence[str],
    key_sql: str,
    value_sqls: Sequence[str],
    *,
    guard: str | None = None,
    plain_table: bool = False,
) -> list[str]:
    """Upsert one row (``key_sql`` -> values) into a view or table.

    Views have no conflict clause, so the view form is an UPDATE of the
    existing row followed by an insert-if-absent; both honour ``guard``.
    """
    collist = ", ".join(["p", *qcols(columns)])
    values = ", ".join([key_sql, *value_sqls])
    guard_sql = f" AND ({guard})" if guard is not None else ""
    if plain_table:
        return [
            f"INSERT OR REPLACE INTO {target} ({collist}) "
            f"SELECT {values} WHERE 1{guard_sql}"
        ]
    statements = []
    if columns:
        sets = ", ".join(
            f"{q(c)} = {v}" for c, v in zip(columns, value_sqls)
        )
        statements.append(
            f"UPDATE {target} SET {sets} WHERE p IS {key_sql}{guard_sql}"
        )
    statements.append(
        f"INSERT INTO {target} ({collist}) SELECT {values} "
        f"WHERE NOT EXISTS (SELECT 1 FROM {target} WHERE p IS {key_sql}){guard_sql}"
    )
    return statements


def delete_row(target: str, key_sql: str, *, guard: str | None = None) -> str:
    guard_sql = f" AND ({guard})" if guard is not None else ""
    return f"DELETE FROM {target} WHERE p IS {key_sql}{guard_sql}"


def apply_extent(
    target: str,
    columns: Sequence[str],
    source: str,
    *,
    plain_table: bool = False,
) -> list[str]:
    """Make ``target``'s extent equal to ``source``'s (a staged table):
    delete missing rows, update changed rows, insert new rows.  ``target``
    may be a generated view (fires its INSTEAD OF triggers row by row) or a
    physical/aux table."""
    collist = ", ".join(["p", *qcols(columns)])
    statements = [
        f"DELETE FROM {target} WHERE p NOT IN (SELECT p FROM {source})"
    ]
    if plain_table:
        statements.append(
            f"INSERT OR REPLACE INTO {target} ({collist}) "
            f"SELECT {collist} FROM {source}"
        )
        return statements
    if columns:
        setlist = ", ".join(qcols(columns))
        changed = (
            f"SELECT s.p FROM {source} s JOIN {target} t ON t.p = s.p "
            f"WHERE {rows_differ('s', 't', columns)}"
        )
        statements.append(
            f"UPDATE {target} SET ({setlist}) = "
            f"(SELECT {setlist} FROM {source} s WHERE s.p = {target}.p) "
            f"WHERE p IN ({changed})"
        )
    statements.append(
        f"INSERT INTO {target} ({collist}) SELECT {collist} FROM {source} "
        f"WHERE p NOT IN (SELECT p FROM {target})"
    )
    return statements


def create_view(name: str, select_sql: str) -> str:
    return f"CREATE VIEW {q(name)} AS\n{select_sql}"


def create_trigger(
    name: str, operation: str, view_name: str, statements: Sequence[str]
) -> str:
    """An ``INSTEAD OF`` trigger with the given body statements."""
    body = ";\n  ".join(statements)
    return (
        f"CREATE TRIGGER {q(name)} INSTEAD OF {operation} ON {q(view_name)}\n"
        f"BEGIN\n  {body};\nEND"
    )
