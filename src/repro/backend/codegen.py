"""Assembling the full delta-code script from the schema version catalog.

For the current materialization this module produces, in dependency order,

1. scaffolding DDL (sequence table, per-SMO put/scratch tables),
2. one ``CREATE VIEW`` per table version (physical table versions get a
   pass-through view so that every version is written through the same
   trigger machinery),
3. one ``INSTEAD OF INSERT/UPDATE/DELETE`` trigger triple per view,
   combining the storage-route propagation program with shared-aux
   maintenance for adjacent off-route SMOs and extent repairs for shared
   aux tables deeper down virtual branches,

plus the in-place SQL migration script implementing ``MATERIALIZE``.
"""

from __future__ import annotations

from repro.backend import emit
from repro.backend.emit import q, qcols, table_ddl
from repro.backend.handlers import (
    HandlerContext,
    handler_for,
    has_shared_aux,
)
from repro.catalog.genealogy import SmoInstance, TableVersion
from repro.catalog.materialization import physical_table_versions
from repro.errors import BackendError
from repro.util.naming import physical_name


def route_for(engine, tv: TableVersion) -> tuple[SmoInstance, str] | None:
    """The SMO through which ``tv``'s reads and writes are routed, or
    ``None`` when the table version is physical (delegates to the engine's
    routing so generated code can never drift from it)."""
    if engine._is_physical(tv):
        return None
    smo = engine._route_smo(tv)
    if smo is None:
        raise BackendError(f"table version {tv!r} has no data route")
    return smo, ("forward" if tv in smo.sources else "backward")


def _adjacent_smos(tv: TableVersion) -> list[SmoInstance]:
    adjacent = [smo for smo in tv.outgoing if not smo.is_initial]
    if tv.incoming is not None and not tv.incoming.is_initial:
        adjacent.append(tv.incoming)
    return adjacent


def _off_route_shared(
    tv: TableVersion, route: SmoInstance | None
) -> tuple[list[SmoInstance], list[SmoInstance]]:
    """(adjacent shared-aux SMOs, deeper shared-aux SMOs) excluding the
    storage route (whose cascade handles its own far side)."""
    adjacent = [smo for smo in _adjacent_smos(tv) if smo is not route]
    adjacent_shared = [smo for smo in adjacent if has_shared_aux(smo)]
    seen = {smo.uid for smo in adjacent}
    if route is not None:
        seen.add(route.uid)
    deep: list[SmoInstance] = []
    frontier: list[SmoInstance] = list(adjacent)
    while frontier:
        smo = frontier.pop()
        for far_tv in (*smo.sources, *smo.targets):
            if far_tv is tv:
                continue
            for nxt in _adjacent_smos(far_tv):
                if nxt.uid in seen:
                    continue
                seen.add(nxt.uid)
                if has_shared_aux(nxt):
                    deep.append(nxt)
                frontier.append(nxt)
    return adjacent_shared, deep


def active_table_versions(engine) -> list[TableVersion]:
    """Every table version reachable from an active schema version, in a
    physical-first dependency order (each view's inputs precede it)."""
    ordered: list[TableVersion] = []
    installed: set[int] = set()

    def install(tv: TableVersion) -> None:
        if tv.uid in installed:
            return
        installed.add(tv.uid)
        route = route_for(engine, tv)
        if route is not None:
            smo, direction = route
            neighbors = smo.targets if direction == "forward" else smo.sources
            for neighbor in neighbors:
                install(neighbor)
            # Identifier-generating SMOs derive a narrow view from the wide
            # view and vice versa; make sure siblings come in too.
            for sibling in (*smo.sources, *smo.targets):
                install(sibling)
        ordered.append(tv)

    for version in engine.genealogy.active_versions():
        for tv in version.tables.values():
            install(tv)
    return ordered


def scaffold_statements(engine) -> list[str]:
    """Idempotent DDL for the sequence table, per-SMO staging tables, and
    indexes over the always-stored ID tables (the trigger programs probe
    them by identifier on every row write)."""
    ctx = HandlerContext(engine)
    statements = [emit.sequences_ddl()]
    for smo in engine.genealogy.evolution_smos():
        if smo.semantics is None:
            continue
        handler = handler_for(ctx, smo)
        for name, columns in handler.put_tables().items():
            statements.append(table_ddl(name, columns))
        for role, schema in smo.semantics.aux_shared().items():
            table = smo.aux_table_name(role)
            for column in schema.column_names:
                index = physical_name("ix", str(smo.uid), role, column)
                statements.append(
                    f"CREATE INDEX IF NOT EXISTS {q(index)} ON {q(table)} ({q(column)})"
                )
    return statements


def view_statements(engine, *, flatten: bool = True) -> list[str]:
    """One ``CREATE VIEW`` per active table version.

    With ``flatten=True`` (the default) the rule-rendered SELECTs are
    algebraically composed along the SMO chain by
    :class:`~repro.backend.compose.ViewComposer`, so a version at chain
    depth N is served by one shallow query instead of an N-deep view
    sandwich; SMOs the composer cannot flatten (the hand-written FK/COND
    views, over-budget unions) keep their nested view references."""
    from repro.backend.compose import ViewComposer

    ctx = HandlerContext(engine)
    composer = ViewComposer() if flatten else None
    statements = []
    for tv in active_table_versions(engine):
        route = route_for(engine, tv)
        if route is None:
            columns = ", ".join(["p", *qcols(tv.schema.column_names)])
            select = f"SELECT {columns} FROM {q(tv.data_table_name)}"
            if composer is not None:
                composer.register_physical(
                    tv.view_name, tv.data_table_name, tv.schema.column_names
                )
        else:
            handler = handler_for(ctx, route[0])
            select = handler.view_select(tv)
            if composer is not None:
                flat = composer.register(tv.view_name, handler.view_branches(tv))
                if flat is not None:
                    select = composer.sql(flat)
        statements.append(emit.create_view(tv.view_name, select))
    return statements


def trigger_statements(engine) -> list[str]:
    ctx = HandlerContext(engine)
    statements = []
    for tv in active_table_versions(engine):
        route = route_for(engine, tv)
        route_smo = route[0] if route is not None else None
        adjacent_shared, deep = _off_route_shared(tv, route_smo)
        for op in ("INSERT", "UPDATE", "DELETE"):
            body: list[str] = []
            if op == "UPDATE":
                body.append(
                    "SELECT RAISE(ABORT, 'the row identifier p is immutable') "
                    "WHERE NEW.p IS NOT OLD.p"
                )
            # Adjacent shared-aux maintenance first: like the engine, the
            # identifier decision procedure reads the PRE-write state (the
            # derived views still show it while the INSTEAD OF trigger runs).
            for smo in adjacent_shared:
                body += handler_for(ctx, smo).write_statements(
                    tv, op, apply_data=False
                )
            if route is None:
                body += _physical_write(tv, op)
            else:
                body += handler_for(ctx, route[0]).write_statements(
                    tv, op, apply_data=True
                )
            # Extent repairs for distant shared-aux SMOs read the POST-write
            # state, so they come last.
            for smo in deep:
                body += handler_for(ctx, smo).repair_statements()
            statements.append(
                emit.create_trigger(tv.trigger_name(op), op, tv.view_name, body)
            )
    return statements


def _physical_write(tv: TableVersion, op: str) -> list[str]:
    data = tv.data_table_name
    columns = tv.schema.column_names
    if op == "DELETE":
        return [f"DELETE FROM {q(data)} WHERE p IS OLD.p"]
    collist = ", ".join(["p", *qcols(columns)])
    values = ", ".join(["NEW.p", *[f"NEW.{q(c)}" for c in columns]])
    return [f"INSERT OR REPLACE INTO {q(data)} ({collist}) VALUES ({values})"]


def repair_all_statements(engine) -> list[str]:
    """Extent repairs for every shared-aux SMO (eager identifier
    initialization at evolution time, consistency pass after migration)."""
    ctx = HandlerContext(engine)
    statements: list[str] = []
    for smo in engine.genealogy.evolution_smos():
        if has_shared_aux(smo):
            statements += handler_for(ctx, smo).repair_statements()
    return statements


def generated_object_names(connection) -> tuple[list[str], list[str]]:
    """(views, triggers) previously generated by this package, as recorded
    in ``sqlite_master``."""
    views = [
        row[0]
        for row in connection.execute(
            "SELECT name FROM sqlite_master WHERE type = 'view' AND name LIKE 'v%'"
        )
    ]
    triggers = [
        row[0]
        for row in connection.execute(
            "SELECT name FROM sqlite_master WHERE type = 'trigger' "
            "AND name LIKE 'tg__%'"
        )
    ]
    return views, triggers


# ---------------------------------------------------------------------------
# MATERIALIZE as an in-place SQL migration
# ---------------------------------------------------------------------------


def _aux_stage_name(smo: SmoInstance, role: str) -> str:
    return physical_name("stageaux", str(smo.uid), role)


def migration_statements(
    engine, schema: frozenset[SmoInstance], staged: dict[int, str] | None = None
) -> tuple[list[str], list[str]]:
    """(stage_statements, swap_statements) implementing ``MATERIALIZE``.

    Stage statements run against the *old* views: they create staging
    tables holding every new physical data table and every aux table of
    each SMO's newly stored side.  Swap statements (run after the generated
    views/triggers are dropped) drop the old tables and rename the staged
    ones into place.  Shared aux tables (ID) survive unchanged.

    ``staged`` maps table-version uids to tables that were *already*
    staged elsewhere (the online backfill's chunked copies): those skip
    the one-shot stage copy and the swap renames the pre-staged table
    into place instead.  Aux tables are always rebuilt here — they are
    small derived state, not worth tracking incrementally.
    """
    ctx = HandlerContext(engine)
    genealogy = engine.genealogy
    staged = staged or {}
    stage: list[str] = []
    swap: list[str] = []

    new_physical = physical_table_versions(genealogy, schema)
    old_physical = [
        tv
        for uid in sorted(genealogy.table_versions)
        if engine._is_physical(tv := genealogy.table_versions[uid])
    ]

    for tv in new_physical:
        name = staged.get(tv.uid)
        if name is None:
            name = tv.stage_table_name
            columns = ", ".join(["p", *qcols(tv.schema.column_names)])
            stage += [
                f"DROP TABLE IF EXISTS {q(name)}",
                table_ddl(name, tv.schema.column_names),
                f"INSERT INTO {q(name)} SELECT {columns} FROM {q(tv.view_name)}",
            ]
        swap += [
            f"DROP TABLE IF EXISTS {q(tv.data_table_name)}",
            f"ALTER TABLE {q(name)} RENAME TO {q(tv.data_table_name)}",
        ]

    keep_data = {tv.data_table_name for tv in new_physical}
    for tv in old_physical:
        if tv.data_table_name not in keep_data:
            swap.append(f"DROP TABLE IF EXISTS {q(tv.data_table_name)}")

    for smo in genealogy.evolution_smos():
        semantics = smo.semantics
        if semantics is None:
            continue
        will_materialize = smo in schema
        handler = handler_for(ctx, smo)
        new_side = semantics.aux_tgt() if will_materialize else semantics.aux_src()
        old_side = semantics.aux_tgt() if smo.materialized else semantics.aux_src()
        selects = handler.stored_role_selects(will_materialize)
        for role, schema_for_role in new_side.items():
            select = selects.get(role)
            if select is None:
                raise BackendError(
                    f"SMO {smo!r} cannot derive aux role {role!r} for migration"
                )
            name = _aux_stage_name(smo, role)
            stage += [
                f"DROP TABLE IF EXISTS {q(name)}",
                table_ddl(name, schema_for_role.column_names),
                f"INSERT INTO {q(name)} ({', '.join(['p', *qcols(schema_for_role.column_names)])}) "
                f"{select}",
            ]
            swap += [
                f"DROP TABLE IF EXISTS {q(smo.aux_table_name(role))}",
                f"ALTER TABLE {q(name)} RENAME TO {q(smo.aux_table_name(role))}",
            ]
        for role in old_side:
            if role not in new_side:
                swap.append(f"DROP TABLE IF EXISTS {q(smo.aux_table_name(role))}")
    return stage, swap


def evolution_statements(engine, version) -> list[str]:
    """DDL bringing the backend up to date after ``CREATE SCHEMA VERSION``:
    data tables for new CREATE TABLE targets, (empty) aux tables for the
    stored sides of the new SMOs, and staging scaffolding."""
    statements: list[str] = []
    for smo in engine.genealogy.all_smos():
        if smo.evolution != version.name:
            continue
        if smo.is_initial:
            tv = smo.targets[0]
            statements.append(table_ddl(tv.data_table_name, tv.schema.column_names))
            continue
        semantics = smo.semantics
        if semantics is None:  # pragma: no cover - catalog invariant
            continue
        aux_tables = dict(semantics.aux_shared())
        if not smo.materialized:
            aux_tables.update(semantics.aux_src())
        for role, schema in aux_tables.items():
            statements.append(
                table_ddl(smo.aux_table_name(role), schema.column_names)
            )
    statements += scaffold_statements(engine)
    return statements
