"""Algebraic composition of rule-rendered views along the SMO chain.

The naive delta code serves a table version at SMO-chain depth *N*
through *N* nested ``CREATE VIEW``s.  SQLite expands views (and CTEs)
textually per reference, so a chain whose levels are UNION-shaped (SPLIT,
MERGE, virtualized ADD COLUMN, ...) doubles its reference count per level
— at depth 16 the expansion needs 2^16 table references and cannot even
be prepared, let alone served cheaply.  The composer turns the view stack
back into what the paper promises: delta code *compiled once* into flat
queries.

Every rule-backed view is a UNION of :class:`~repro.sqlgen.views.ViewBranch`
branches (select list + FROM entries + WHERE conjunction).  Composition
works bottom-up along the dependency order the code generator already
emits in:

1. **Inlining** — a FROM entry that references an already-composed view
   is replaced by that view's branches: the single-branch case merges
   FROM lists and WHEREs and substitutes the child's select expressions
   into the parent (classic view flattening); a multi-branch child is
   distributed over the union, bounded by :data:`MAX_BRANCHES`.
2. **EXISTS-merging** — branches whose select lists are identical over
   the same scanned tables differ only in their predicates, so they
   collapse into ONE branch whose WHERE is the disjunction, with each
   branch's purely-filtering extra FROM entries rewritten to correlated
   ``EXISTS`` subqueries (set-equivalent under UNION's set semantics).
   This is what keeps SPLIT/MERGE chains *linear*: the union of
   "rows satisfying the condition" and "rows pinned by the Rstar aux
   table" becomes a single scan of the parent with an OR.

Anything the composer cannot flatten — the hand-written FK/COND views,
or a composition that would exceed the branch budget — simply keeps its
view-name reference: the referenced view still exists and is itself
composed, so the emitted stack stays shallow instead of deep.
"""

from __future__ import annotations

import itertools
import re

from repro.sqlgen.views import ViewBranch
from repro.util.naming import quote_identifier

#: Composition budget: a view whose flattened form would exceed this many
#: UNION branches keeps view-name references instead (nested fallback).
MAX_BRANCHES = 8

_SIMPLE_EXPR = re.compile(r'^[A-Za-z_]\w*\.(?:"[^"]+"|[A-Za-z_]\w*|p)$')
_LITERAL_EXPR = re.compile(r"^(?:NULL|\d+|'[^']*')$")


def _wrap(expr: str) -> str:
    """Parenthesize a select expression unless it is an atomic reference
    or literal (so substitution into an outer expression cannot change
    precedence)."""
    if _SIMPLE_EXPR.match(expr) or _LITERAL_EXPR.match(expr):
        return expr
    return f"({expr})"


def _alias_pattern(alias: str) -> str:
    return rf"(?<![\w\"]){re.escape(alias)}\."


class ViewComposer:
    """Bottom-up flattener over the code generator's view emission order."""

    def __init__(self, max_branches: int = MAX_BRANCHES):
        self.max_branches = max_branches
        self._flat: dict[str, list[ViewBranch]] = {}
        self._fresh = itertools.count()

    # ------------------------------------------------------------------
    # Registration (called in dependency order)
    # ------------------------------------------------------------------

    def register_physical(
        self, view_name: str, data_table: str, columns: tuple[str, ...]
    ) -> list[ViewBranch]:
        """A physical table version's pass-through view: composing through
        it reaches the data table directly."""
        alias = self._alias()
        head = tuple(
            (column, f"{alias}.{quote_identifier(column)}")
            for column in ("p", *columns)
        )
        branches = [
            ViewBranch(
                head=head,
                froms=((alias, quote_identifier(data_table)),),
                where=(),
            )
        ]
        self._flat[view_name] = branches
        return branches

    def register(
        self, view_name: str, branches: list[ViewBranch] | None
    ) -> list[ViewBranch] | None:
        """Compose ``branches`` (a rule-backed view body) against every
        already-registered view they reference; returns the flattened
        branches, or ``None`` when the handler produced no structured form
        (the view keeps its legacy nested body and stays opaque)."""
        if branches is None:
            return None
        composed: list[ViewBranch] = []
        for branch in branches:
            composed.extend(self._compose_branch(self._refresh(branch)))
        composed = self._merge(composed)
        self._flat[view_name] = composed
        return composed

    def sql(self, branches: list[ViewBranch]) -> str:
        return "\nUNION\n".join(branch.sql() for branch in branches)

    # ------------------------------------------------------------------
    # Alias hygiene
    # ------------------------------------------------------------------

    def _alias(self) -> str:
        return f"f{next(self._fresh)}"

    def _refresh(self, branch: ViewBranch) -> ViewBranch:
        """Rename every FROM alias to a globally fresh name (rewriting all
        references in head expressions and WHERE conjuncts), so merged
        branch bodies can never collide."""
        mapping = {alias: self._alias() for alias, _table in branch.froms}

        def rewrite(text: str) -> str:
            for old, new in sorted(mapping.items(), key=lambda i: -len(i[0])):
                text = re.sub(_alias_pattern(old), f"{new}.", text)
            return text

        return ViewBranch(
            head=tuple((column, rewrite(expr)) for column, expr in branch.head),
            froms=tuple((mapping[alias], table) for alias, table in branch.froms),
            where=tuple(rewrite(cond) for cond in branch.where),
        )

    # ------------------------------------------------------------------
    # Inlining
    # ------------------------------------------------------------------

    def _compose_branch(self, branch: ViewBranch) -> list[ViewBranch]:
        """Inline every FROM entry that references a composed view.
        Multi-branch children distribute over the union; the budget guard
        keeps a reference (nested fallback) instead of exploding."""
        partials = [branch]
        for alias, table in branch.froms:
            children = self._flat.get(table)
            if children is None:
                continue
            if len(partials) * len(children) > self.max_branches:
                continue  # keep the view-name reference for this entry
            partials = [
                self._inline(partial, alias, child)
                for partial in partials
                for child in children
            ]
        return partials

    def _inline(
        self, outer: ViewBranch, alias: str, child: ViewBranch
    ) -> ViewBranch:
        child = self._refresh(child)
        alternatives = {}
        for column, expr in child.head:
            alternatives[quote_identifier(column)] = _wrap(expr)
            if column == "p":
                alternatives["p"] = _wrap(expr)
        pattern = re.compile(
            rf"(?<![\w\"]){re.escape(alias)}\."
            rf"(?P<col>{'|'.join(re.escape(c) for c in sorted(alternatives, key=len, reverse=True))})"
            rf"(?![\w\"])"
        )

        def rewrite(text: str) -> str:
            return pattern.sub(lambda m: alternatives[m.group("col")], text)

        froms = []
        for from_alias, table in outer.froms:
            if from_alias == alias:
                froms.extend(child.froms)
            else:
                froms.append((from_alias, table))
        return ViewBranch(
            head=tuple((column, rewrite(expr)) for column, expr in outer.head),
            froms=tuple(froms),
            where=tuple(rewrite(cond) for cond in outer.where) + child.where,
        )

    # ------------------------------------------------------------------
    # EXISTS-merging
    # ------------------------------------------------------------------

    def _referenced_aliases(self, branch: ViewBranch, text: str) -> set[str]:
        found = set()
        for alias, _table in branch.froms:
            if re.search(_alias_pattern(alias), text):
                found.add(alias)
        return found

    def _split_froms(
        self, branch: ViewBranch
    ) -> tuple[list[tuple[str, str]], list[tuple[str, str]]]:
        """(head-scanned entries, purely-filtering entries): an entry no
        head expression references only filters, so it can move into a
        correlated EXISTS without changing the branch's row set."""
        head_text = " ".join(expr for _column, expr in branch.head)
        used = self._referenced_aliases(branch, head_text)
        scanned = [entry for entry in branch.froms if entry[0] in used]
        extra = [entry for entry in branch.froms if entry[0] not in used]
        return scanned, extra

    def _conjuncts(
        self, branch_froms, extra: list[tuple[str, str]], where: tuple[str, ...]
    ) -> list[str]:
        """The branch's predicate as conjuncts over its scanned entries:
        purely-filtering FROM entries fold into one correlated ``EXISTS``
        (with the conjuncts that referenced them inside its body)."""
        extra_aliases = {alias for alias, _table in extra}
        outer: list[str] = []
        inner: list[str] = []
        probe = ViewBranch(head=(), froms=tuple(branch_froms), where=())
        for cond in where:
            if self._referenced_aliases(probe, cond) & extra_aliases:
                inner.append(cond)
            else:
                outer.append(cond)
        if extra:
            body = "SELECT 1 FROM " + ", ".join(
                f"{table} {alias}" for alias, table in extra
            )
            if inner:
                body += " WHERE " + " AND ".join(inner)
            outer.append(f"EXISTS ({body})")
        return outer

    _ALIAS_TOKEN = re.compile(r"(?<![\w.\"])(?:f\d+|n|t\d+)(?![\w\"])")

    def _canonical(self, text: str, fixed: dict[str, str] | None = None) -> str:
        """Predicate text with generated aliases renumbered in order of
        first appearance — lets two EXISTS probes over the same table be
        recognized as equal regardless of alias spelling.  ``fixed`` pins
        the group's scanned (outer) aliases to shared names, so probes
        correlated against *different* outer entries never canonicalize
        to the same text.  String literals are left untouched (an
        alias-shaped word inside a constant must not alias-match), so
        differing literals always compare unequal."""
        seen: dict[str, str] = dict(fixed or {})

        def rename(match: re.Match) -> str:
            alias = match.group(0)
            if alias not in seen:
                seen[alias] = f"c{len(seen)}"
            return seen[alias]

        # Even-indexed segments are outside single-quoted literals ('' for
        # an escaped quote toggles twice, preserving the parity).
        segments = text.split("'")
        for index in range(0, len(segments), 2):
            segments[index] = self._ALIAS_TOKEN.sub(rename, segments[index])
        return "'".join(segments)

    def _is_tautology(
        self, predicates: list[str], scanned: list[tuple[str, str]]
    ) -> bool:
        """True when the disjunction is provably always true: some branch
        predicate is empty, or two branches are complementary EXISTS / NOT
        EXISTS probes of the same subquery correlated against the same
        outer entries (the shape projection-merged ADD/DROP COLUMN unions
        collapse to)."""
        fixed = {alias: f"o{i}" for i, (alias, _table) in enumerate(scanned)}
        canon = [self._canonical(p, fixed) for p in predicates]
        if any(p == "1" for p in canon):
            return True
        bare = set(canon)
        return any(
            p.startswith("NOT ") and self._canonical(p[len("NOT "):], fixed) in bare
            for p in canon
        )

    def _merge(self, branches: list[ViewBranch]) -> list[ViewBranch]:
        """Collapse branches that scan the same tables with the same select
        list into one branch whose WHERE is the disjunction of the branch
        predicates (set-equivalent under UNION).

        Conjuncts shared by every merged branch — typically the already-
        merged predicate of the child view they were all inlined from —
        are factored out of the disjunction, so predicate text grows
        linearly along an SMO chain instead of doubling per level."""
        if len(branches) <= 1:
            return branches
        # group := [head, scanned froms, [member conjunct-lists], original]
        groups: list[list] = []
        for branch in branches:
            scanned, extra = self._split_froms(branch)
            if not scanned:
                # No scanned anchor (head built purely from literals):
                # leave the branch alone rather than risk a FROM-less
                # select with a different cardinality.
                groups.append([branch.head, None, [], branch])
                continue
            merged = False
            for group in groups:
                if group[1] is None:
                    continue
                mapping = self._match_scans(group[1], scanned)
                if mapping is None:
                    continue
                if self._rename(branch.head, mapping) != group[0]:
                    continue
                renamed_where = tuple(
                    self._rename_text(cond, mapping) for cond in branch.where
                )
                renamed_froms = [
                    (mapping.get(alias, alias), table)
                    for alias, table in branch.froms
                ]
                renamed_extra = [
                    (mapping.get(alias, alias), table) for alias, table in extra
                ]
                group[2].append(
                    self._conjuncts(renamed_froms, renamed_extra, renamed_where)
                )
                merged = True
                break
            if not merged:
                groups.append(
                    [
                        branch.head,
                        scanned,
                        [self._conjuncts(branch.froms, extra, branch.where)],
                        branch,
                    ]
                )
        out: list[ViewBranch] = []
        for head, scanned, members, original in groups:
            if scanned is None or len(members) == 1:
                out.append(original)
                continue
            # Factor conjuncts common to every member out of the OR.
            common = [c for c in members[0] if all(c in m for m in members[1:])]
            residuals = [
                [c for c in member if c not in common] for member in members
            ]
            predicates = [
                " AND ".join(residual) if residual else "1"
                for residual in residuals
            ]
            where = list(common)
            if not self._is_tautology(predicates, scanned):
                where.append("((" + ") OR (".join(predicates) + "))")
            out.append(
                ViewBranch(head=head, froms=tuple(scanned), where=tuple(where))
            )
        return out

    def _match_scans(
        self,
        anchor: list[tuple[str, str]],
        candidate: list[tuple[str, str]],
    ) -> dict[str, str] | None:
        """Positional alias mapping between two scanned-entry lists over
        the same table references, or ``None``."""
        if len(anchor) != len(candidate):
            return None
        mapping = {}
        for (anchor_alias, anchor_table), (alias, table) in zip(anchor, candidate):
            if anchor_table != table:
                return None
            mapping[alias] = anchor_alias
        return mapping

    def _rename_text(self, text: str, mapping: dict[str, str]) -> str:
        for old, new in sorted(mapping.items(), key=lambda i: -len(i[0])):
            text = re.sub(_alias_pattern(old), f"{new}.", text)
        return text

    def _rename(
        self, head: tuple[tuple[str, str], ...], mapping: dict[str, str]
    ) -> tuple[tuple[str, str], ...]:
        return tuple(
            (column, self._rename_text(expr, mapping)) for column, expr in head
        )
