"""Comparing visible database states across execution backends.

The differential test harness runs the same workload on the pure-Python
engine and on the live SQLite backend and asserts that every schema
version shows the same contents.  Generated surrogate identifiers (the
``id``/foreign-key columns minted by the FK and condition SMOs) are drawn
from each system's own sequence, so their concrete values may differ while
the states are isomorphic; :func:`canonical_state` relabels every
identifier space consistently (by the payload context in which each value
first appears) so isomorphic states compare equal and structurally
different states do not.

Ambiguity note: two identifiers whose entire payload context is identical
(duplicate rows in an id-defining table) cannot be distinguished; test
workloads should keep payloads distinct.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.bidel.smo.conditional import DecomposeCondSemantics
from repro.bidel.smo.foreign_key import DecomposeFkSemantics
from repro.bidel.smo.simple import RenameColumnSemantics
from repro.catalog.genealogy import Genealogy

State = dict[tuple[str, str], list[tuple]]
Spaces = dict[int, dict[str, tuple]]


def _normalize(value):
    if isinstance(value, bool):
        return int(value)
    return value


def visible_state(engine, backend=None) -> State:
    """{(version, table): sorted rows} of every active version, read
    through ``backend`` when given, through the engine otherwise."""
    state: State = {}
    for version in sorted(engine.genealogy.active_versions(), key=lambda v: v.name):
        for table in version.table_names():
            if backend is not None:
                rows = [tuple(row) for row in backend.select(version.name, table)]
            else:
                tv = version.table_version(table)
                rows = list(engine.read_table_version(tv, cache={}).values())
            state[(version.name, table)] = sorted(
                (tuple(_normalize(v) for v in row) for row in rows), key=_sort_key
            )
    return state


def generated_id_spaces(genealogy: Genealogy) -> Spaces:
    """tv.uid -> {column name: identifier-space key} for every column that
    carries generated surrogate identifiers."""
    spaces: Spaces = {}
    for smo in genealogy.all_smos():
        if smo.is_initial:
            continue
        inherited: dict[str, tuple] = {}
        for tv in smo.sources:
            for column, space in spaces.get(tv.uid, {}).items():
                inherited.setdefault(column, space)
        semantics = smo.semantics
        renames: Mapping[str, str] = {}
        if isinstance(semantics, RenameColumnSemantics):
            renames = {semantics.node.column: semantics.node.new_name}
        for tv in smo.targets:
            own: dict[str, tuple] = {}
            for column, space in inherited.items():
                column = renames.get(column, column)
                if tv.schema.has_column(column):
                    own[column] = space
            if own:
                spaces[tv.uid] = own
        if isinstance(semantics, DecomposeFkSemantics):
            s_tv, t_tv = smo.targets
            fk = semantics.node.kind.fk_column or "fk"
            spaces.setdefault(s_tv.uid, {})[fk] = (smo.uid, "fk")
            spaces.setdefault(t_tv.uid, {})["id"] = (smo.uid, "fk")
        elif isinstance(semantics, DecomposeCondSemantics):
            s_tv, t_tv = smo.targets
            spaces.setdefault(s_tv.uid, {})["id"] = (smo.uid, "s")
            spaces.setdefault(t_tv.uid, {})["id"] = (smo.uid, "t")
    return spaces


def canonical_state(engine, state: State) -> State:
    """Relabel every generated-identifier space of ``state`` with canonical
    indexes assigned by sorted payload context."""
    spaces = generated_id_spaces(engine.genealogy)
    # (space -> [(context signature, value)]) over the whole state.
    occurrences: dict[tuple, list[tuple]] = {}
    column_spaces: dict[tuple[str, str], dict[int, tuple]] = {}
    for (version_name, table), rows in state.items():
        version = engine.genealogy.schema_version(version_name)
        tv = version.table_version(table)
        by_column = spaces.get(tv.uid)
        if not by_column:
            continue
        names = tv.schema.column_names
        indexed = {
            index: by_column[name]
            for index, name in enumerate(names)
            if name in by_column
        }
        column_spaces[(version_name, table)] = indexed
        for row in rows:
            context = tuple(
                value for index, value in enumerate(row) if index not in indexed
            )
            for index, space in indexed.items():
                if row[index] is None:
                    continue
                occurrences.setdefault(space, []).append(
                    ((version_name, table, context), row[index])
                )
    canonical: dict[tuple, dict] = {}
    for space, pairs in occurrences.items():
        mapping: dict = {}
        for _context, value in sorted(
            pairs, key=lambda pair: (_sort_key(pair[0]), _sort_key(pair[1]))
        ):
            if value not in mapping:
                mapping[value] = len(mapping)
        canonical[space] = mapping
    out: State = {}
    for key, rows in state.items():
        indexed = column_spaces.get(key, {})
        if not indexed:
            out[key] = list(rows)
            continue
        rewritten = []
        for row in rows:
            rewritten.append(
                tuple(
                    (
                        canonical[indexed[index]].get(value, f"?{value}")
                        if index in indexed and value is not None
                        else value
                    )
                    for index, value in enumerate(row)
                )
            )
        out[key] = sorted(rewritten, key=_sort_key)
    return out


def _sort_key(value):
    """Total order over heterogeneous values (None < numbers < strings)."""
    if isinstance(value, tuple):
        return (3, tuple(_sort_key(v) for v in value))
    if value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (1, value)
    return (2, str(value))


def assert_states_match(engine_a, state_a: State, engine_b, state_b: State) -> None:
    """Assert canonical equality, with a readable diff on failure."""
    canon_a = canonical_state(engine_a, state_a)
    canon_b = canonical_state(engine_b, state_b)
    if canon_a == canon_b:
        return
    lines = []
    for key in sorted(set(canon_a) | set(canon_b)):
        left, right = canon_a.get(key), canon_b.get(key)
        if left != right:
            lines.append(f"{key[0]}.{key[1]}:")
            lines.append(f"  A: {left}")
            lines.append(f"  B: {right}")
    raise AssertionError("visible states differ:\n" + "\n".join(lines))
