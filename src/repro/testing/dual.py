"""Dual-system harness: the same DDL + workload on the pure-Python engine
and on the live SQLite backend, with canonical state comparison."""

from __future__ import annotations

from repro.backend.compare import assert_states_match, visible_state
from repro.backend.sqlite import LiveSqliteBackend
from repro.core.engine import InVerDa
from repro.sql.connection import connect


class DualSystem:
    """Two engines fed identically: one in-memory, one SQLite-backed.

    With ``database`` pointing at a file, the SQLite side is durable and
    :meth:`reopen` simulates a process restart: the backend is closed and
    the engine rebuilt from the file's persisted catalog, after which the
    recovered side must still match the in-memory side exactly.
    """

    def __init__(self, database: str | None = None):
        self.mem = InVerDa()
        self.sq = InVerDa()
        self.database = database
        self.backend: LiveSqliteBackend | None = None
        self._mem_conns: dict[str, object] = {}
        self._sq_conns: dict[str, object] = {}

    def attach(self) -> None:
        if self.backend is None:
            self.backend = LiveSqliteBackend.attach(
                self.sq, database=self.database or ":memory:"
            )

    def reopen(self) -> None:
        """Simulate a restart of the SQLite side: close the backend, then
        recover a brand-new engine from the file's persisted catalog."""
        assert self.database is not None, "reopen() needs a file-backed DualSystem"
        from repro.persist.recovery import open_database

        for conn in self._sq_conns.values():
            conn.close()
        self._sq_conns.clear()
        if self.backend is not None:
            self.backend.close()
        self.sq = open_database(self.database)
        self.backend = self.sq.live_backend

    def execute_ddl(self, script: str) -> None:
        for conn in (*self._mem_conns.values(), *self._sq_conns.values()):
            conn.close()  # release each connection's backend session
        self._mem_conns.clear()
        self._sq_conns.clear()
        self.mem.execute(script)
        self.sq.execute(script)

    def _conns(self, version: str):
        if version not in self._mem_conns:
            self._mem_conns[version] = connect(self.mem, version, autocommit=True)
        if version not in self._sq_conns:
            self._sq_conns[version] = connect(
                self.sq, version, autocommit=True, backend=self.backend
            )
        return self._mem_conns[version], self._sq_conns[version]

    def run(self, version: str, sql: str, parameters: tuple = ()):
        """Execute one statement on both systems; returns (mem, sq) cursors."""
        mem_conn, sq_conn = self._conns(version)
        mem_cursor = mem_conn.execute(sql, parameters)
        sq_cursor = sq_conn.execute(sql, parameters)
        assert mem_cursor.rowcount == sq_cursor.rowcount, (
            f"rowcount diverged for {sql!r}: "
            f"memory={mem_cursor.rowcount} sqlite={sq_cursor.rowcount}"
        )
        return mem_cursor, sq_cursor

    def runmany(self, version: str, sql: str, rows: list[tuple]) -> None:
        mem_conn, sq_conn = self._conns(version)
        mem_conn.executemany(sql, rows)
        sq_conn.executemany(sql, rows)

    def materialize(self, target: str) -> None:
        self.execute_ddl(f"MATERIALIZE '{target}';")

    def check(self, context: str = "") -> None:
        mem_state = visible_state(self.mem)
        sq_state = visible_state(self.sq, self.backend)
        try:
            assert_states_match(self.mem, mem_state, self.sq, sq_state)
        except AssertionError as exc:
            raise AssertionError(f"[{context}] {exc}") from None

    def close(self) -> None:
        if self.backend is not None:
            self.backend.close()
