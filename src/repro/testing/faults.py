"""Fault injection for the live backend's catalog transitions.

:class:`~repro.backend.sqlite.LiveSqliteBackend` crosses named fault
points inside every catalog transition (``evolution:after-catalog``,
``materialize:staged``, ``drop:before-commit``, ...) and calls
``backend.fault_injector(point)`` at each one.  The crash-safety suite
installs one-shot callables that raise at a single point; a soak run
needs something longer-lived: a *seeded* injector that fires with a
configured probability per point, so a 60-second run peppers transitions
with faults and the exact firing pattern replays from the seed.

Both styles are plain callables — the backend hook does not care which
one it holds.
"""

from __future__ import annotations

import random
from typing import Callable


class InjectedFault(RuntimeError):
    """Raised by an injector to abort a catalog transition mid-flight.

    Deliberately *not* a :class:`repro.errors.ReproError`: the SQL layer
    must never translate an injected fault into a polite database error —
    it models the process dying, and it should surface loudly.
    """

    def __init__(self, point: str, visit: int):
        super().__init__(f"injected fault at {point!r} (visit #{visit})")
        self.point = point
        self.visit = visit


def one_shot(point: str, exception: type[Exception] = InjectedFault) -> Callable[[str], None]:
    """The classic crash-test injector: raise the first time ``point`` is
    crossed, then stay quiet so recovery can proceed."""
    fired = False

    def injector(current: str) -> None:
        nonlocal fired
        if current == point and not fired:
            fired = True
            if exception is InjectedFault:
                raise InjectedFault(point, 1)
            raise exception(f"injected fault at {point!r}")

    return injector


class RandomFaultInjector:
    """Seeded, probability-based fault injection with per-point rates.

    ``rates`` maps fault-point names to probabilities in ``[0, 1]``; a
    point missing from the map never fires.  The injector draws from its
    own :class:`random.Random`, so for a fixed seed and the same sequence
    of visited points the firing pattern is fully deterministic — a soak
    failure report only needs the seed to replay the faults.

    Every crossing is recorded in :attr:`visits` and every injection in
    :attr:`fired`, so tests and reports can show exactly which transition
    died.  Set :attr:`armed` to ``False`` to keep counting visits without
    injecting (useful while draining a run).
    """

    def __init__(
        self,
        rates: dict[str, float],
        *,
        seed: int = 0,
        exception: type[InjectedFault] = InjectedFault,
    ):
        for point, rate in rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"fault rate for {point!r} must be in [0, 1], got {rate}")
        self.rates = dict(rates)
        self.seed = seed
        self.rng = random.Random(seed)
        self.exception = exception
        self.visits: list[str] = []
        self.fired: list[tuple[int, str]] = []
        self.armed = True

    def __call__(self, point: str) -> None:
        self.visits.append(point)
        rate = self.rates.get(point, 0.0)
        if rate <= 0.0:
            return
        # Draw even when disarmed or certain to fire: the rng stream then
        # depends only on the visit sequence, never on arming flips.
        draw = self.rng.random()
        if not self.armed:
            return
        if draw < rate:
            self.fired.append((len(self.visits), point))
            raise self.exception(point, len(self.visits))

    def describe(self) -> dict:
        """A JSON-friendly account of what the injector did, for reports."""
        return {
            "seed": self.seed,
            "rates": dict(self.rates),
            "visits": len(self.visits),
            "fired": [{"visit": visit, "point": point} for visit, point in self.fired],
        }


def parse_fault_spec(spec: str) -> dict[str, float]:
    """Parse a CLI fault spec like ``evolution:before-commit=1.0,drop:before-commit=0.5``.

    The point name itself contains a colon, so the rate is separated by
    ``=``; multiple points are comma-separated.
    """
    rates: dict[str, float] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        point, sep, rate_text = part.rpartition("=")
        if not sep or not point:
            raise ValueError(
                f"bad fault spec {part!r}: expected <point>=<rate>, e.g. "
                "evolution:before-commit=1.0"
            )
        rates[point.strip()] = float(rate_text)
    return rates
