"""Shared test infrastructure, importable by suites and harnesses alike.

Historically the dual-system differential harness lived in
``tests/backend/util.py``, which made it invisible to anything outside
the pytest tree.  The soak harness (``repro.soak``) needs the exact same
machinery — two engines fed identically, canonical state comparison,
fault injection — so it now lives here and the old path is a thin shim.
"""

from repro.backend.compare import assert_states_match, visible_state
from repro.testing.dual import DualSystem
from repro.testing.faults import InjectedFault, RandomFaultInjector, one_shot, parse_fault_spec

__all__ = [
    "DualSystem",
    "InjectedFault",
    "RandomFaultInjector",
    "assert_states_match",
    "one_shot",
    "parse_fault_spec",
    "visible_state",
]
