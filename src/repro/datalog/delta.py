"""Update-propagation rules in the style of the paper's Rules 52–54.

Given a mapping rule set and a changed extensional predicate, derive the
incremental rules that compute the induced insertions and deletions on each
derived predicate, with the minimality guards the paper describes ("the
additional conditions on the old literals ensure minimality by checking
whether the tuple already exists").

The derivation follows the classic delta-rule scheme specialised to the
SMO rule sets, all of which are key-guarded (every literal carries the
tuple identifier in its first argument, or is an auxiliary keyed by the
same identifier):

- insertion rule per body occurrence of the changed predicate:
  ``Δ+H ← Δ+Q, rest(new), ¬H(old)``
- deletion rule per body occurrence:
  ``Δ-H ← Δ-Q, rest(old), H(old), ¬H(new)``

These rules are used to *generate trigger code* (Section 6); the engine's
fast-path propagation implements the same semantics natively per SMO and is
cross-checked against full re-evaluation in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datalog.ast import Atom, Literal, Rule, RuleSet

INSERT_PREFIX = "delta_plus__"
DELETE_PREFIX = "delta_minus__"
NEW_SUFFIX = "__new"
OLD_SUFFIX = "__old"


def insert_delta_name(pred: str) -> str:
    return INSERT_PREFIX + pred


def delete_delta_name(pred: str) -> str:
    return DELETE_PREFIX + pred


@dataclass(frozen=True)
class DeltaRules:
    """Incremental rules for one derived predicate w.r.t. one changed
    extensional predicate."""

    changed: str
    derived: str
    insert_rules: tuple[Rule, ...]
    delete_rules: tuple[Rule, ...]


def _retag(literal: Literal, *, suffix: str, skip: str) -> Literal:
    """Tag relational literals with the old/new state they refer to."""
    if isinstance(literal, Atom) and literal.pred != skip:
        return Atom(literal.pred + suffix, literal.terms, literal.positive)
    return literal


def derive_delta_rules(rules: RuleSet, changed: str) -> list[DeltaRules]:
    """Derive insert/delete propagation rules for every rule whose body
    references ``changed``."""
    grouped: dict[str, tuple[list[Rule], list[Rule]]] = {}
    for rule in rules:
        occurrences = [
            index
            for index, literal in enumerate(rule.body)
            if isinstance(literal, Atom) and literal.pred == changed and literal.positive
        ]
        if not occurrences:
            continue
        inserts, deletes = grouped.setdefault(rule.head.pred, ([], []))
        for index in occurrences:
            body = list(rule.body)
            atom = body[index]
            assert isinstance(atom, Atom)

            insert_body: list[Literal] = [
                Atom(insert_delta_name(changed), atom.terms, True)
            ]
            insert_body.extend(
                _retag(literal, suffix=NEW_SUFFIX, skip=changed)
                for pos, literal in enumerate(body)
                if pos != index
            )
            insert_body.append(
                Atom(rule.head.pred + OLD_SUFFIX, rule.head.terms, False)
            )
            inserts.append(
                Rule(Atom(insert_delta_name(rule.head.pred), rule.head.terms), tuple(insert_body))
            )

            delete_body: list[Literal] = [
                Atom(delete_delta_name(changed), atom.terms, True)
            ]
            delete_body.extend(
                _retag(literal, suffix=OLD_SUFFIX, skip=changed)
                for pos, literal in enumerate(body)
                if pos != index
            )
            delete_body.append(Atom(rule.head.pred + OLD_SUFFIX, rule.head.terms, True))
            delete_body.append(Atom(rule.head.pred + NEW_SUFFIX, rule.head.terms, False))
            deletes.append(
                Rule(Atom(delete_delta_name(rule.head.pred), rule.head.terms), tuple(delete_body))
            )
    return [
        DeltaRules(changed, derived, tuple(inserts), tuple(deletes))
        for derived, (inserts, deletes) in grouped.items()
    ]
