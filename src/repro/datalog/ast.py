"""Runtime (instantiated) Datalog representation.

Rules here are fully positional: every predicate has a fixed arity and facts
are plain tuples whose first component is, by convention, the table key
(the InVerDa tuple identifier ``p`` for data tables). Attribute-list
variables of the paper (``A``, ``B``) have already been expanded to one
variable per column by the SMO instantiation code.

Literal kinds:

- :class:`Atom` — positive or negated relational literal ``R(t1, ..., tn)``;
- :class:`CondLit` — an SMO condition such as ``cR(A)`` wrapping an
  :class:`~repro.expr.ast.Expression`, positive or negated;
- :class:`Compare` — tuple comparison ``(t1..tn) op (s1..sn)`` with
  ``op ∈ {'=', '!='}`` (used for the twin checks ``A ≠ A'``);
- :class:`Assign` — function binding ``v = f(t1, ..., tn)`` covering both
  value functions of ADD/DROP COLUMN and the identity-generating functions
  ``id_T(B)`` of the FK/condition SMOs.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Iterable, Mapping
from dataclasses import dataclass, field
from typing import Any, Union

from repro.errors import DatalogError
from repro.expr.ast import Expression

Value = Any

# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Var:
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const:
    value: Value

    def __str__(self) -> str:
        return repr(self.value)


Term = Union[Var, Const]

_wildcard_counter = itertools.count()


def wildcard() -> Var:
    """A fresh anonymous variable (the ``_`` of the paper's rules)."""
    return Var(f"_w{next(_wildcard_counter)}")


def is_wildcard(term: Term) -> bool:
    return isinstance(term, Var) and term.name.startswith("_w")


# ---------------------------------------------------------------------------
# Literals
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Atom:
    pred: str
    terms: tuple[Term, ...]
    positive: bool = True

    def negated(self) -> "Atom":
        return Atom(self.pred, self.terms, not self.positive)

    def variables(self) -> set[str]:
        return {term.name for term in self.terms if isinstance(term, Var)}

    def __str__(self) -> str:
        args = ", ".join(str(term) for term in self.terms)
        prefix = "" if self.positive else "not "
        return f"{prefix}{self.pred}({args})"


@dataclass(frozen=True)
class CondLit:
    """An SMO condition literal ``c(A)``.

    ``columns`` maps the expression's column names to terms of the rule, so
    the same parsed condition can be applied to differently-named variables.
    """

    name: str
    expression: Expression
    columns: tuple[tuple[str, Term], ...]
    positive: bool = True

    def negated(self) -> "CondLit":
        return CondLit(self.name, self.expression, self.columns, not self.positive)

    def variables(self) -> set[str]:
        return {term.name for _, term in self.columns if isinstance(term, Var)}

    def __str__(self) -> str:
        args = ", ".join(str(term) for _, term in self.columns)
        prefix = "" if self.positive else "not "
        return f"{prefix}{self.name}({args})"


@dataclass(frozen=True)
class Compare:
    op: str  # '=' or '!='
    left: tuple[Term, ...]
    right: tuple[Term, ...]

    def __post_init__(self) -> None:
        if self.op not in ("=", "!="):
            raise DatalogError(f"unsupported comparison operator {self.op!r}")
        if len(self.left) != len(self.right):
            raise DatalogError("tuple comparison requires equal arity")

    def variables(self) -> set[str]:
        return {
            term.name for term in self.left + self.right if isinstance(term, Var)
        }

    def __str__(self) -> str:
        left = ", ".join(str(t) for t in self.left)
        right = ", ".join(str(t) for t in self.right)
        return f"({left}) {self.op} ({right})"


@dataclass(frozen=True)
class Assign:
    """``target = function(args)``; evaluated once ``args`` are bound."""

    target: Var
    function: Callable[..., Value]
    args: tuple[Term, ...]
    label: str = "f"
    expression: Expression | None = None  # SQL-renderable form when available

    def variables(self) -> set[str]:
        names = {self.target.name}
        names.update(term.name for term in self.args if isinstance(term, Var))
        return names

    def __str__(self) -> str:
        args = ", ".join(str(t) for t in self.args)
        return f"{self.target} = {self.label}({args})"


Literal = Union[Atom, CondLit, Compare, Assign]


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Rule:
    head: Atom
    body: tuple[Literal, ...]

    def __post_init__(self) -> None:
        if not self.head.positive:
            raise DatalogError("rule heads must be positive atoms")
        if not self.body:
            raise DatalogError("rules must have a non-empty body")

    def body_atoms(self, *, positive: bool | None = None) -> list[Atom]:
        atoms = [lit for lit in self.body if isinstance(lit, Atom)]
        if positive is None:
            return atoms
        return [atom for atom in atoms if atom.positive is positive]

    def __str__(self) -> str:
        body = ", ".join(str(lit) for lit in self.body)
        return f"{self.head} <- {body}"


@dataclass(frozen=True)
class RuleSet:
    rules: tuple[Rule, ...]
    name: str = ""

    def __iter__(self):
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    def derived_predicates(self) -> list[str]:
        seen: list[str] = []
        for rule in self.rules:
            if rule.head.pred not in seen:
                seen.append(rule.head.pred)
        return seen

    def referenced_predicates(self) -> set[str]:
        preds: set[str] = set()
        for rule in self.rules:
            for literal in rule.body:
                if isinstance(literal, Atom):
                    preds.add(literal.pred)
        return preds

    def rules_for(self, pred: str) -> list[Rule]:
        return [rule for rule in self.rules if rule.head.pred == pred]

    def __str__(self) -> str:
        return "\n".join(str(rule) for rule in self.rules)


# ---------------------------------------------------------------------------
# Fact stores
# ---------------------------------------------------------------------------

Fact = tuple
FactSet = set


@dataclass
class FactStore:
    """Extensional + derived facts, keyed by predicate name."""

    facts: dict[str, set[Fact]] = field(default_factory=dict)

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Iterable[Fact]]) -> "FactStore":
        return cls({name: set(facts) for name, facts in mapping.items()})

    def predicate(self, name: str) -> set[Fact]:
        return self.facts.setdefault(name, set())

    def has(self, name: str) -> bool:
        return name in self.facts

    def add(self, name: str, fact: Fact) -> None:
        self.predicate(name).add(fact)

    def copy(self) -> "FactStore":
        return FactStore({name: set(facts) for name, facts in self.facts.items()})
