"""Symbolic Datalog rules for the formal bidirectionality evaluation.

This module mirrors the notation of Sections 4/5 and Appendix A of the
paper: capital-letter variables stand for whole attribute lists, condition
predicates such as ``cR`` stay abstract, and ``ω`` is a distinguished
constant. The accompanying :mod:`repro.datalog.simplify` module applies the
paper's Lemmas 1–5 to such rules; :mod:`repro.datalog.compose` builds the
round-trip rule sets ``γ_src(γ_tgt(D))`` that the proofs simplify.

The central primitive here is *matching modulo variable renaming*
(:func:`find_renaming`), used by the tautology lemma, rule deduplication,
and subsumption.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Union

from repro.errors import DatalogError

# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SVar:
    """A variable; may denote a scalar or a whole attribute list."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class SConst:
    """A symbolic constant such as ``ω`` (the null filler row)."""

    name: str

    def __str__(self) -> str:
        return self.name


STerm = Union[SVar, SConst]

OMEGA = SConst("ω")

_fresh_counter = itertools.count()


def fresh_var(stem: str = "v") -> SVar:
    return SVar(f"{stem}#{next(_fresh_counter)}")


def is_anonymous(term: STerm) -> bool:
    return isinstance(term, SVar) and term.name.startswith("_")


def anon() -> SVar:
    """A fresh anonymous variable (the ``_`` of the paper)."""
    return SVar(f"_#{next(_fresh_counter)}")


Subst = Mapping[str, STerm]


def apply_term(term: STerm, subst: Subst) -> STerm:
    if isinstance(term, SVar):
        return subst.get(term.name, term)
    return term


# ---------------------------------------------------------------------------
# Literals
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SAtom:
    pred: str
    terms: tuple[STerm, ...]
    positive: bool = True

    def negated(self) -> "SAtom":
        return SAtom(self.pred, self.terms, not self.positive)

    def substitute(self, subst: Subst) -> "SAtom":
        return SAtom(self.pred, tuple(apply_term(t, subst) for t in self.terms), self.positive)

    def variables(self) -> set[str]:
        return {t.name for t in self.terms if isinstance(t, SVar)}

    def __str__(self) -> str:
        prefix = "" if self.positive else "¬"
        pretty_terms = ", ".join("_" if is_anonymous(t) else str(t) for t in self.terms)
        return f"{prefix}{self.pred}({pretty_terms})"


@dataclass(frozen=True)
class SCond:
    """Abstract condition literal such as ``cR(A)``."""

    name: str
    terms: tuple[STerm, ...]
    positive: bool = True

    def negated(self) -> "SCond":
        return SCond(self.name, self.terms, not self.positive)

    def substitute(self, subst: Subst) -> "SCond":
        return SCond(self.name, tuple(apply_term(t, subst) for t in self.terms), self.positive)

    def variables(self) -> set[str]:
        return {t.name for t in self.terms if isinstance(t, SVar)}

    def __str__(self) -> str:
        prefix = "" if self.positive else "¬"
        return f"{prefix}{self.name}({', '.join(map(str, self.terms))})"


@dataclass(frozen=True)
class SCompare:
    op: str  # '=' or '!='
    left: STerm
    right: STerm

    def __post_init__(self) -> None:
        if self.op not in ("=", "!="):
            raise DatalogError(f"unsupported comparison {self.op!r}")

    def negated(self) -> "SCompare":
        return SCompare("=" if self.op == "!=" else "!=", self.left, self.right)

    def substitute(self, subst: Subst) -> "SCompare":
        return SCompare(self.op, apply_term(self.left, subst), apply_term(self.right, subst))

    def variables(self) -> set[str]:
        return {t.name for t in (self.left, self.right) if isinstance(t, SVar)}

    def normalized(self) -> "SCompare":
        """Order the operands deterministically so ``A=B`` equals ``B=A``."""
        left, right = self.left, self.right
        if str(left) > str(right):
            left, right = right, left
        return SCompare(self.op, left, right)

    def __str__(self) -> str:
        return f"{self.left} {'≠' if self.op == '!=' else '='} {self.right}"


@dataclass(frozen=True)
class SAssign:
    """Function binding ``target = f(args)`` (e.g. ``t = id_T(B)``)."""

    target: SVar
    function: str
    args: tuple[STerm, ...]

    def substitute(self, subst: Subst) -> "SAssign":
        target = apply_term(self.target, subst)
        if not isinstance(target, SVar):
            raise DatalogError(f"assignment target {self.target} bound to constant")
        return SAssign(target, self.function, tuple(apply_term(t, subst) for t in self.args))

    def variables(self) -> set[str]:
        names = {self.target.name}
        names.update(t.name for t in self.args if isinstance(t, SVar))
        return names

    def __str__(self) -> str:
        return f"{self.target} = {self.function}({', '.join(map(str, self.args))})"


SLiteral = Union[SAtom, SCond, SCompare, SAssign]


def complement(literal: SLiteral) -> Optional[SLiteral]:
    if isinstance(literal, (SAtom, SCond, SCompare)):
        return literal.negated()
    return None


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SRule:
    head: SAtom
    body: tuple[SLiteral, ...]

    def substitute(self, subst: Subst) -> "SRule":
        return SRule(self.head.substitute(subst), tuple(l.substitute(subst) for l in self.body))

    def variables(self) -> set[str]:
        names = self.head.variables()
        for literal in self.body:
            names |= literal.variables()
        return names

    def rename_apart(self, taken: set[str]) -> "SRule":
        """Rename every variable clashing with ``taken`` to a fresh one."""
        subst = {
            name: fresh_var("r") for name in self.variables() if name in taken
        }
        return self.substitute(subst) if subst else self

    def without(self, literal: SLiteral) -> "SRule":
        body = list(self.body)
        body.remove(literal)
        return SRule(self.head, tuple(body))

    def __str__(self) -> str:
        body = ", ".join(str(l) for l in self.body)
        return f"{self.head} ← {body}" if body else f"{self.head} ←"


def rules_for(rules: Iterable[SRule], pred: str) -> list[SRule]:
    return [rule for rule in rules if rule.head.pred == pred]


def head_predicates(rules: Iterable[SRule]) -> set[str]:
    return {rule.head.pred for rule in rules}


# ---------------------------------------------------------------------------
# Matching modulo renaming
# ---------------------------------------------------------------------------


def _match_terms(
    pattern: tuple[STerm, ...],
    target: tuple[STerm, ...],
    subst: dict[str, STerm],
    used: set[str],
    *,
    bijective: bool,
) -> Optional[dict[str, STerm]]:
    """Extend ``subst`` so pattern terms map onto target terms."""
    if len(pattern) != len(target):
        return None
    extended = dict(subst)
    extended_used = set(used)
    for p_term, t_term in zip(pattern, target):
        if isinstance(p_term, SConst):
            if p_term != t_term:
                return None
            continue
        bound = extended.get(p_term.name)
        if bound is None:
            if bijective and isinstance(t_term, SVar) and t_term.name in extended_used:
                return None
            extended[p_term.name] = t_term
            if isinstance(t_term, SVar):
                extended_used.add(t_term.name)
        elif bound != t_term:
            return None
    used.clear()
    used.update(extended_used)
    subst.clear()
    subst.update(extended)
    return subst


def _literal_shape(literal: SLiteral) -> tuple:
    if isinstance(literal, SAtom):
        return ("atom", literal.pred, literal.positive, len(literal.terms))
    if isinstance(literal, SCond):
        return ("cond", literal.name, literal.positive, len(literal.terms))
    if isinstance(literal, SCompare):
        return ("cmp", literal.op)
    return ("assign", literal.function, len(literal.args))


def _literal_terms(literal: SLiteral) -> tuple[STerm, ...]:
    if isinstance(literal, (SAtom, SCond)):
        return literal.terms
    if isinstance(literal, SCompare):
        return (literal.left, literal.right)
    return (literal.target, *literal.args)


def _match_literal(
    pattern: SLiteral,
    target: SLiteral,
    subst: dict[str, STerm],
    used: set[str],
    *,
    bijective: bool,
) -> Optional[dict[str, STerm]]:
    if _literal_shape(pattern) != _literal_shape(target):
        # '=' comparisons are symmetric; try the swapped orientation too.
        return None
    candidate_orders: list[tuple[tuple[STerm, ...], tuple[STerm, ...]]]
    if isinstance(pattern, SCompare) and isinstance(target, SCompare):
        candidate_orders = [
            ((pattern.left, pattern.right), (target.left, target.right)),
            ((pattern.left, pattern.right), (target.right, target.left)),
        ]
    else:
        candidate_orders = [(_literal_terms(pattern), _literal_terms(target))]
    for p_terms, t_terms in candidate_orders:
        trial_subst = dict(subst)
        trial_used = set(used)
        if _match_terms(p_terms, t_terms, trial_subst, trial_used, bijective=bijective) is not None:
            subst.clear()
            subst.update(trial_subst)
            used.clear()
            used.update(trial_used)
            return subst
    return None


def match_body(
    pattern_body: Iterable[SLiteral],
    target_body: Iterable[SLiteral],
    subst: dict[str, STerm],
    used: set[str],
    *,
    exact: bool,
    bijective: bool,
) -> Optional[dict[str, STerm]]:
    """Match the pattern literals onto (a subset of) the target literals.

    ``exact`` requires a perfect pairing (both multisets fully consumed);
    otherwise a subset embedding suffices (used for subsumption checks).
    Backtracking search — bodies are small (≤ ~8 literals) by construction.
    """
    pattern = list(pattern_body)
    target = list(target_body)
    if exact and len(pattern) != len(target):
        return None

    def backtrack(
        remaining: list[SLiteral],
        available: list[SLiteral],
        current: dict[str, STerm],
        current_used: set[str],
    ) -> Optional[dict[str, STerm]]:
        if not remaining:
            if exact and available:
                return None
            return current
        literal = remaining[0]
        for index, candidate in enumerate(available):
            trial = dict(current)
            trial_used = set(current_used)
            if _match_literal(literal, candidate, trial, trial_used, bijective=bijective) is None:
                continue
            result = backtrack(
                remaining[1:], available[:index] + available[index + 1 :], trial, trial_used
            )
            if result is not None:
                return result
        return None

    result = backtrack(pattern, target, dict(subst), set(used))
    if result is not None:
        subst.clear()
        subst.update(result)
    return result


def find_renaming(pattern: SRule, target: SRule, *, exact: bool = True) -> Optional[Subst]:
    """Find a variable renaming mapping ``pattern`` onto ``target``.

    With ``exact=True`` the bodies must correspond one-to-one (rule equality
    modulo renaming); with ``exact=False`` the pattern body only needs to
    embed into the target body (``pattern`` subsumes ``target``).
    """
    subst: dict[str, STerm] = {}
    used: set[str] = set()
    if _match_literal(pattern.head, target.head, subst, used, bijective=exact) is None:
        return None
    return match_body(pattern.body, target.body, subst, used, exact=exact, bijective=exact)
