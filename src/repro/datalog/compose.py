"""Lemma 1 (Deduction) and round-trip composition of mapping rule sets.

The bidirectionality proofs of Section 5 / Appendix A work as follows: take
the rule set applied first (say ``γ_tgt`` reading from the stored source
data ``T_D``), simplify it under Lemma 2 (the other side's auxiliary tables
are empty), then *unfold* its derived predicates into the second rule set
(``γ_src``) using Lemma 1. The result expresses the round trip directly over
the stored data tables and is then reduced with Lemmas 2–5.

Lemma 1's negative case relies on the unique key ``p``: because every
predicate has at most one fact per key, ``¬∃X body(p, X)`` distributes into
the per-literal alternatives ``t(K)`` the paper defines (footnote 1).
"""

from __future__ import annotations

from itertools import product
from typing import Iterable, Sequence

from repro.datalog.simplify import normalize_rule
from repro.datalog.symbolic import (
    SAssign,
    SAtom,
    SCompare,
    SCond,
    SLiteral,
    SRule,
    STerm,
    SVar,
    anon,
    rules_for,
)
from repro.errors import DatalogError


def _rename_for_literal(defining: SRule, literal: SAtom, taken: set[str]) -> SRule | None:
    """Rename ``defining`` so its head lines up with ``literal``'s terms.

    Head variables are substituted by the literal's terms; head *constants*
    must instead bind the literal's variables, which is performed on the
    caller's rule, so we return the defining rule plus that extra binding
    encoded as leading ``=`` literals.
    """
    renamed = defining.rename_apart(taken | {t.name for t in literal.terms if isinstance(t, SVar)})
    subst: dict[str, STerm] = {}
    bindings: list[SLiteral] = []
    for head_term, lit_term in zip(renamed.head.terms, literal.terms):
        if isinstance(head_term, SVar):
            existing = subst.get(head_term.name)
            if existing is None:
                subst[head_term.name] = lit_term
            elif existing != lit_term:
                bindings.append(SCompare("=", existing, lit_term))
        else:
            # Head constant (e.g. ω): the literal's term must equal it.
            if isinstance(lit_term, SVar):
                bindings.append(SCompare("=", lit_term, head_term))
            elif lit_term != head_term:
                return None  # constant clash: this defining rule cannot apply
    return SRule(renamed.head.substitute(subst), tuple(renamed.body[i].substitute(subst) for i in range(len(renamed.body))) + tuple(bindings))


def _negative_alternatives(defining_body: Sequence[SLiteral]) -> list[list[SLiteral]]:
    """The paper's ``t(K)`` options for negating one defining-rule body."""
    alternatives: list[list[SLiteral]] = []
    atoms = [lit for lit in defining_body if isinstance(lit, SAtom) and lit.positive]
    for literal in defining_body:
        if isinstance(literal, SAtom):
            if not literal.positive:
                # ¬(¬q) contributes the positive atom as an alternative.
                alternatives.append([literal.negated()])
                continue
            # Negate the atom itself; variables local to the defining body
            # become anonymous ("don't care") variables.
            head_like = [
                term if not isinstance(term, SVar) else term for term in literal.terms
            ]
            alternatives.append([SAtom(literal.pred, tuple(head_like), False)])
        elif isinstance(literal, (SCond, SCompare)):
            support = [
                atom
                for atom in atoms
                if atom.variables() & literal.variables()
            ]
            negated = literal.negated()
            alternatives.append([*support, negated])
        elif isinstance(literal, SAssign):
            raise DatalogError(
                "cannot negate a rule body containing a function binding "
                f"({literal}); use the runtime lens checks instead"
            )
    return alternatives


def unfold_literal(rule: SRule, literal: SAtom, definitions: list[SRule]) -> list[SRule]:
    """Lemma 1: replace ``literal`` in ``rule`` by its definitions."""
    remainder = rule.without(literal)
    taken = rule.variables()
    results: list[SRule] = []
    if literal.positive:
        for defining in definitions:
            aligned = _rename_for_literal(defining, literal, taken)
            if aligned is None:
                continue
            results.append(SRule(remainder.head, remainder.body + aligned.body))
        return results

    # Negative literal: all defining rules must fail simultaneously, so take
    # the cross product of each rule's per-literal alternatives. Defining
    # rules are renamed apart from each other so their local variables do
    # not collide inside one combination.
    alternative_sets: list[list[list[SLiteral]]] = []
    taken_so_far = set(taken)
    for defining in definitions:
        aligned = _rename_for_literal(defining, literal, taken_so_far)
        if aligned is None:
            continue  # cannot produce a matching head: trivially fails
        for body_literal in aligned.body:
            taken_so_far |= body_literal.variables()
        alternative_sets.append(_negative_alternatives(aligned.body))
    if not alternative_sets:
        return [remainder]
    for combination in product(*alternative_sets):
        extra: list[SLiteral] = []
        for option in combination:
            extra.extend(option)
        results.append(SRule(remainder.head, remainder.body + tuple(extra)))
    return results


def unfold_all(
    rules: Iterable[SRule],
    definitions: Iterable[SRule],
    *,
    max_rounds: int = 20,
) -> list[SRule]:
    """Unfold every literal referring to a predicate defined in
    ``definitions`` until only extensional predicates remain."""
    definition_list = list(definitions)
    defined = {rule.head.pred for rule in definition_list}
    current = list(rules)
    for _ in range(max_rounds):
        progressed = False
        next_rules: list[SRule] = []
        for rule in current:
            target: SAtom | None = None
            for literal in rule.body:
                if isinstance(literal, SAtom) and literal.pred in defined:
                    target = literal
                    break
            if target is None:
                next_rules.append(rule)
                continue
            progressed = True
            expansions = unfold_literal(rule, target, rules_for(definition_list, target.pred))
            for expansion in expansions:
                normalized = normalize_rule(expansion)
                if normalized is not None:
                    next_rules.append(normalized)
        current = next_rules
        if not progressed:
            return current
    raise DatalogError("unfolding did not terminate; rules may be recursive")


def compose_round_trip(
    first: Iterable[SRule],
    second: Iterable[SRule],
    *,
    rename_base: dict[str, str],
    empty_predicates: set[str],
) -> list[SRule]:
    """Build the composed rule set ``second ∘ first`` over stored data.

    ``rename_base`` maps the predicates that are materialized at the start
    of the round trip to their data-table names (e.g. ``{"T": "T_D"}``), and
    ``empty_predicates`` lists the predicates known to be absent on the
    unmaterialized side (Lemma 2).
    """
    from repro.datalog.simplify import drop_empty_predicates

    prepared_first: list[SRule] = []
    for rule in first:
        renamed_body = []
        for literal in rule.body:
            if isinstance(literal, SAtom) and literal.pred in rename_base:
                literal = SAtom(rename_base[literal.pred], literal.terms, literal.positive)
            renamed_body.append(literal)
        prepared_first.append(SRule(rule.head, tuple(renamed_body)))
    prepared_first = drop_empty_predicates(prepared_first, empty_predicates)
    prepared_first = [r for r in (normalize_rule(rule) for rule in prepared_first) if r is not None]
    return unfold_all(second, prepared_first)


def identity_rules(pairs: Sequence[tuple[str, str, int]]) -> list[SRule]:
    """The expected post-simplification shape: one identity rule per data
    table, ``pred(p, A...) ← stored(p, A...)``."""
    rules = []
    for pred, stored, arity in pairs:
        key = SVar("p")
        payload = [SVar(f"x{i}") for i in range(arity)]
        rules.append(
            SRule(
                SAtom(pred, (key, *payload)),
                (SAtom(stored, (key, *payload)),),
            )
        )
    return rules


def is_identity(
    simplified: Iterable[SRule],
    expected: Sequence[tuple[str, str, int]],
    *,
    data_predicates: set[str] | None = None,
) -> tuple[bool, list[str]]:
    """Check whether the data-table rules of ``simplified`` are exactly the
    identity mapping. Auxiliary-table rules are ignored (the paper's
    ``γ^data`` projection); anything else is reported."""
    from repro.datalog.symbolic import find_renaming

    problems: list[str] = []
    expected_rules = identity_rules(expected)
    expected_preds = {pred for pred, _, _ in expected}
    relevant = [
        rule
        for rule in simplified
        if rule.head.pred in (data_predicates or expected_preds)
    ]
    for expectation in expected_rules:
        matches = [rule for rule in relevant if find_renaming(expectation, rule, exact=True)]
        if len(matches) != 1:
            problems.append(
                f"expected exactly one identity rule like '{expectation}', "
                f"found {len(matches)}"
            )
    for rule in relevant:
        if not any(find_renaming(expectation, rule, exact=True) for expectation in expected_rules):
            problems.append(f"unexpected residual rule: {rule}")
    return (not problems, problems)
