"""Pretty-printing of rule sets and simplification traces.

Used by ``examples/formal_verification.py`` to print a derivation in the
style of Section 5 of the paper, and by the verification report.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.datalog.ast import Rule, RuleSet
from repro.datalog.symbolic import SRule


def format_symbolic_rules(rules: Iterable[SRule], *, title: str | None = None) -> str:
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    for rule in rules:
        lines.append(f"  {rule}")
    return "\n".join(lines)


def format_runtime_rules(rules: RuleSet | Iterable[Rule], *, title: str | None = None) -> str:
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    iterable = rules.rules if isinstance(rules, RuleSet) else rules
    for rule in iterable:
        lines.append(f"  {rule}")
    return "\n".join(lines)


def format_trace(trace: Iterable[str], *, title: str = "Simplification trace") -> str:
    lines = [title, "=" * len(title)]
    for step_number, step in enumerate(trace, start=1):
        lines.append(f"[{step_number:3d}] {step}")
    return "\n".join(lines)
