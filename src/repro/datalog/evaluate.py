"""Bottom-up evaluation of non-recursive Datalog with stratified negation.

The version genealogy is acyclic and no SMO rule set is recursive (the paper
relies on this: "As neither the rules for a single SMO nor the version
genealogy have cycles, there is no recursion at all"), so evaluation is a
single pass over derived predicates in dependency order. Within one rule
body, literals are greedily reordered so that every literal is evaluated
only once its variables are sufficiently bound (safety).
"""

from __future__ import annotations

import graphlib
from collections.abc import Iterable, Mapping

from repro.datalog.ast import (
    Assign,
    Atom,
    Compare,
    CondLit,
    Const,
    Fact,
    Literal,
    Rule,
    RuleSet,
    Term,
    Var,
)
from repro.errors import DatalogError

Bindings = dict[str, object]


def _term_value(term: Term, bindings: Bindings) -> tuple[bool, object]:
    """Return ``(is_bound, value)`` for a term under ``bindings``."""
    if isinstance(term, Const):
        return True, term.value
    if term.name in bindings:
        return True, bindings[term.name]
    return False, None


def _all_bound(terms: Iterable[Term], bindings: Bindings) -> bool:
    return all(_term_value(term, bindings)[0] for term in terms)


def _match_fact(terms: tuple[Term, ...], fact: Fact, bindings: Bindings) -> Bindings | None:
    """Try to extend ``bindings`` so that ``terms`` match ``fact``."""
    if len(terms) != len(fact):
        return None
    extended = dict(bindings)
    for term, value in zip(terms, fact):
        if isinstance(term, Const):
            if term.value != value:
                return None
        else:
            bound = extended.get(term.name, _UNBOUND)
            if bound is _UNBOUND:
                extended[term.name] = value
            elif bound != value:
                return None
    return extended


class _Unbound:
    pass


_UNBOUND = _Unbound()


def _literal_ready(literal: Literal, bindings: Bindings) -> bool:
    """Can ``literal`` be evaluated now without enumerating unbound vars?"""
    if isinstance(literal, Atom):
        if literal.positive:
            return True  # positive atoms generate bindings
        return True  # negative atoms treat unbound vars as wildcards safely
    if isinstance(literal, CondLit):
        return _all_bound((term for _, term in literal.columns), bindings)
    if isinstance(literal, Compare):
        return _all_bound(literal.left + literal.right, bindings)
    if isinstance(literal, Assign):
        return _all_bound(literal.args, bindings)
    raise DatalogError(f"unknown literal {literal!r}")  # pragma: no cover


def _score_literal(literal: Literal, bindings: Bindings) -> tuple[int, int]:
    """Ordering heuristic: prefer filters/assignments once evaluable, then
    positive atoms with the most bound terms, and negative atoms last."""
    if isinstance(literal, (CondLit, Compare, Assign)):
        return (0, 0)
    assert isinstance(literal, Atom)
    bound = sum(1 for term in literal.terms if _term_value(term, bindings)[0])
    if literal.positive:
        return (1, -bound)
    return (2, -bound)


def _evaluate_body(
    body: list[Literal],
    bindings: Bindings,
    store: Mapping[str, set[Fact]],
    out: list[Bindings],
) -> None:
    if not body:
        out.append(bindings)
        return

    ready = [lit for lit in body if _literal_ready(lit, bindings)]
    if not ready:
        raise DatalogError(f"unsafe rule body: no literal evaluable under {sorted(bindings)}")
    # Negative atoms must wait until every other literal had a chance to bind
    # their variables; only pick one if nothing else is left.
    positives = [lit for lit in ready if not (isinstance(lit, Atom) and not lit.positive)]
    pool = positives or ready
    literal = min(pool, key=lambda lit: _score_literal(lit, bindings))
    rest = list(body)
    rest.remove(literal)

    if isinstance(literal, Atom) and literal.positive:
        facts = store.get(literal.pred, frozenset())
        for fact in facts:
            extended = _match_fact(literal.terms, fact, bindings)
            if extended is not None:
                _evaluate_body(rest, extended, store, out)
        return

    if isinstance(literal, Atom):  # negative
        facts = store.get(literal.pred, frozenset())
        for fact in facts:
            if _match_fact(literal.terms, fact, bindings) is not None:
                return  # a matching fact exists: negation fails
        _evaluate_body(rest, bindings, store, out)
        return

    if isinstance(literal, CondLit):
        row = {
            column: _term_value(term, bindings)[1] for column, term in literal.columns
        }
        holds = literal.expression.evaluate(row) is True
        if holds == literal.positive:
            _evaluate_body(rest, bindings, store, out)
        return

    if isinstance(literal, Compare):
        left = tuple(_term_value(term, bindings)[1] for term in literal.left)
        right = tuple(_term_value(term, bindings)[1] for term in literal.right)
        equal = left == right
        if equal == (literal.op == "="):
            _evaluate_body(rest, bindings, store, out)
        return

    if isinstance(literal, Assign):
        args = [_term_value(term, bindings)[1] for term in literal.args]
        value = literal.function(*args)
        name = literal.target.name
        if name in bindings:
            if bindings[name] == value:
                _evaluate_body(rest, bindings, store, out)
            return
        extended = dict(bindings)
        extended[name] = value
        _evaluate_body(rest, extended, store, out)
        return

    raise DatalogError(f"unknown literal {literal!r}")  # pragma: no cover


def _dependency_order(rules: RuleSet) -> list[str]:
    derived = set(rules.derived_predicates())
    sorter: graphlib.TopologicalSorter[str] = graphlib.TopologicalSorter()
    for pred in derived:
        deps = set()
        for rule in rules.rules_for(pred):
            for literal in rule.body:
                if isinstance(literal, Atom) and literal.pred in derived:
                    if literal.pred != pred:
                        deps.add(literal.pred)
                    elif literal.positive:
                        raise DatalogError(f"recursive rules for {pred!r} are not supported")
        sorter.add(pred, *deps)
    try:
        return list(sorter.static_order())
    except graphlib.CycleError as exc:
        raise DatalogError(f"cyclic rule dependencies: {exc.args[1]}") from None


def evaluate(
    rules: RuleSet,
    extensional: Mapping[str, Iterable[Fact]],
) -> dict[str, set[Fact]]:
    """Evaluate ``rules`` bottom-up over the extensional facts.

    Returns the derived predicates only. Extensional predicates missing from
    ``extensional`` are treated as empty (the paper's Lemma 2 situation:
    the non-materialized side's auxiliary tables simply do not exist).
    """
    store: dict[str, set[Fact]] = {name: set(facts) for name, facts in extensional.items()}
    derived: dict[str, set[Fact]] = {}
    for pred in _dependency_order(rules):
        results: set[Fact] = set(store.get(pred, set()) if pred in derived else set())
        for rule in rules.rules_for(pred):
            matches: list[Bindings] = []
            _evaluate_body(list(rule.body), {}, store, matches)
            for bindings in matches:
                fact = []
                for term in rule.head.terms:
                    bound, value = _term_value(term, bindings)
                    if not bound:
                        raise DatalogError(
                            f"unbound head variable {term} in rule {rule}"
                        )
                    fact.append(value)
                results.add(tuple(fact))
        derived[pred] = results
        store[pred] = set(results)
    return derived
