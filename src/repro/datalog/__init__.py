"""Datalog machinery backing BiDEL's SMO semantics.

The paper defines every SMO by two Datalog rule sets ``γ_tgt`` and ``γ_src``
(Section 4, Appendix B). This package provides:

- a *runtime* representation (:mod:`repro.datalog.ast`) with bottom-up
  evaluation (:mod:`repro.datalog.evaluate`) used as the executable reference
  semantics of every SMO;
- a *symbolic* representation (:mod:`repro.datalog.symbolic`) with the
  paper's simplification Lemmas 1–5 (:mod:`repro.datalog.simplify`) and the
  round-trip composition machinery (:mod:`repro.datalog.compose`) used to
  mechanically reproduce the bidirectionality proofs;
- update-propagation rule derivation (:mod:`repro.datalog.delta`) in the
  style of Rules 52–54, used for trigger generation.
"""

from repro.datalog.ast import (
    Assign,
    Atom,
    Compare,
    CondLit,
    Const,
    Rule,
    RuleSet,
    Var,
    wildcard,
)
from repro.datalog.evaluate import evaluate

__all__ = [
    "Var",
    "Const",
    "Atom",
    "CondLit",
    "Compare",
    "Assign",
    "Rule",
    "RuleSet",
    "wildcard",
    "evaluate",
]
