"""The paper's simplification Lemmas 1–5 as rule-set transformations.

Section 5 proves bidirectionality by composing the two mapping rule sets of
an SMO and simplifying the composition to the identity rule set. The lemmas
implemented here are exactly the paper's tool kit:

- **Lemma 1 (Deduction)** — unfolding a derived literal by its defining
  rules (positive and negative case) lives in :mod:`repro.datalog.compose`.
- **Lemma 2 (Empty predicate)** — :func:`drop_empty_predicates`.
- **Lemma 3 (Tautology)** — :func:`tautology_merge_pass`, including the
  equality variant the paper uses to rewrite Rule 118 into Rule 121.
- **Lemma 4 (Contradiction)** — :func:`normalize_rule` returns ``None``.
- **Lemma 5 (Unique key)** — first-argument unification inside
  :func:`normalize_rule`.

Additionally `:func:`subsumption_pass`` removes rules implied by more
general ones (used implicitly in Appendix A, e.g. Rules 107/109 subsumed by
Rule 108) and :func:`case_merge_pass` performs the closing case analysis
over ``ω``-comparisons under explicit domain axioms (the paper's implicit
assumption that payload rows are never entirely ``ω``).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from itertools import product

from repro.datalog.symbolic import (
    OMEGA,
    SAtom,
    SCompare,
    SCond,
    SConst,
    SLiteral,
    SRule,
    STerm,
    SVar,
    complement,
    find_renaming,
    fresh_var,
)

Trace = list[str]


def _note(trace: Trace | None, message: str) -> None:
    if trace is not None:
        trace.append(message)


# ---------------------------------------------------------------------------
# Per-rule normalization (Lemmas 4 and 5, ground comparisons, dedup)
# ---------------------------------------------------------------------------


def _substitute_rule(rule: SRule, old: str, new: STerm) -> SRule:
    return rule.substitute({old: new})


def _is_anon_name(name: str) -> bool:
    return name.startswith("_") or "#" in name


def _variable_counts(head_terms: Sequence[STerm], body: Sequence[SLiteral]) -> dict[str, int]:
    counts: dict[str, int] = {}

    def bump(terms: Iterable[STerm]) -> None:
        for term in terms:
            if isinstance(term, SVar):
                counts[term.name] = counts.get(term.name, 0) + 1

    bump(head_terms)
    for literal in body:
        if isinstance(literal, (SAtom, SCond)):
            bump(literal.terms)
        elif isinstance(literal, SCompare):
            bump((literal.left, literal.right))
        else:
            bump((literal.target, *literal.args))
    return counts


def _literal_key(literal: SLiteral, counts: dict[str, int]) -> tuple:
    """Canonical key treating variables occurring only once in the rule as
    interchangeable — ``¬R(p, _)`` and ``¬R(p, X)`` with local ``X`` denote
    the same NOT-EXISTS check."""

    def canon(term: STerm) -> object:
        if isinstance(term, SVar) and counts.get(term.name, 0) <= 1:
            return "•"
        return term

    if isinstance(literal, SAtom):
        return ("atom", literal.pred, literal.positive, tuple(canon(t) for t in literal.terms))
    if isinstance(literal, SCond):
        return ("cond", literal.name, literal.positive, tuple(canon(t) for t in literal.terms))
    if isinstance(literal, SCompare):
        normalized = literal.normalized()
        return ("cmp", normalized.op, canon(normalized.left), canon(normalized.right))
    return ("assign", literal.function, canon(literal.target), tuple(canon(t) for t in literal.args))


def _dedup_body(head_terms: Sequence[STerm], body: Sequence[SLiteral]) -> tuple[SLiteral, ...]:
    counts = _variable_counts(head_terms, body)
    seen_keys: set[tuple] = set()
    kept: list[SLiteral] = []
    for literal in body:
        if isinstance(literal, SCompare):
            literal = literal.normalized()
        key = _literal_key(literal, counts)
        if key in seen_keys:
            continue
        seen_keys.add(key)
        kept.append(literal)
    return tuple(kept)


def _unify_unique_keys(rule: SRule) -> SRule | None:
    """Lemma 5: positive atoms of one predicate sharing their key term have
    all remaining terms pairwise equal; unify them by substitution."""
    changed = True
    while changed:
        changed = False
        atoms = [lit for lit in rule.body if isinstance(lit, SAtom) and lit.positive]
        for i, first in enumerate(atoms):
            for second in atoms[i + 1 :]:
                if first.pred != second.pred or not first.terms or not second.terms:
                    continue
                if first.terms[0] != second.terms[0]:
                    continue
                for t1, t2 in zip(first.terms[1:], second.terms[1:]):
                    if t1 == t2:
                        continue
                    # Prefer replacing anonymous variables by named ones so
                    # rule heads keep their readable variable names.
                    if isinstance(t2, SVar) and isinstance(t1, SVar) and _is_anon_name(t1.name):
                        rule = _substitute_rule(rule, t1.name, t2)
                    elif isinstance(t2, SVar):
                        rule = _substitute_rule(rule, t2.name, t1)
                    elif isinstance(t1, SVar):
                        rule = _substitute_rule(rule, t1.name, t2)
                    else:
                        return None  # two different constants: contradiction
                    changed = True
                    break
                if changed:
                    break
            if changed:
                break
    return rule


def _merge_same_constant_vars(rule: SRule) -> SRule:
    """If ``X = c`` and ``Y = c`` both hold, ``X`` and ``Y`` are equal."""
    seen: dict[SConst, SVar] = {}
    for literal in rule.body:
        if (
            isinstance(literal, SCompare)
            and literal.op == "="
            and isinstance(literal.left, SVar)
            and isinstance(literal.right, SConst)
        ):
            representative = seen.get(literal.right)
            if representative is None:
                seen[literal.right] = literal.left
            elif representative != literal.left:
                return _merge_same_constant_vars(
                    _substitute_rule(rule, literal.left.name, representative)
                )
    return rule


def _is_contradictory(body: Sequence[SLiteral]) -> bool:
    """Lemma 4, including the wildcard-aware atom case: a positive atom
    witnesses existence, so a negative atom whose terms each equal the
    positive atom's term (or are free local variables) contradicts it."""
    positives = [l for l in body if isinstance(l, SAtom) and l.positive]
    negatives = [l for l in body if isinstance(l, SAtom) and not l.positive]
    bound: set[str] = set()
    for literal in body:
        if isinstance(literal, SAtom) and literal.positive:
            bound |= literal.variables()
    for negative in negatives:
        for positive in positives:
            if negative.pred != positive.pred or len(negative.terms) != len(positive.terms):
                continue
            if all(
                n_term == p_term
                or (isinstance(n_term, SVar) and n_term.name not in bound)
                for n_term, p_term in zip(negative.terms, positive.terms)
            ):
                return True
    conds = [l for l in body if isinstance(l, SCond)]
    for i, first in enumerate(conds):
        for second in conds[i + 1 :]:
            if (
                first.name == second.name
                and first.terms == second.terms
                and first.positive != second.positive
            ):
                return True
    compares = [l.normalized() for l in body if isinstance(l, SCompare)]
    for i, first in enumerate(compares):
        for second in compares[i + 1 :]:
            if first.left == second.left and first.right == second.right and first.op != second.op:
                return True
    return False


def normalize_rule(rule: SRule) -> SRule | None:
    """Normalize one rule; ``None`` means the rule can never fire (Lemma 4)."""
    while True:
        before = rule
        # An equality binding a variable that occurs nowhere else is
        # trivially satisfiable and can be dropped.
        counts = _variable_counts(rule.head.terms, rule.body)
        pruned: list[SLiteral] = []
        for literal in rule.body:
            if (
                isinstance(literal, SCompare)
                and literal.op == "="
                and isinstance(literal.left, SVar)
                and isinstance(literal.right, SConst)
                and counts.get(literal.left.name, 0) <= 1
            ):
                continue
            if (
                isinstance(literal, SCompare)
                and literal.op == "="
                and isinstance(literal.right, SVar)
                and isinstance(literal.left, SConst)
                and counts.get(literal.right.name, 0) <= 1
            ):
                continue
            pruned.append(literal)
        rule = SRule(rule.head, tuple(pruned))
        # Substitute variable-to-variable/constant-free equalities; keep
        # var = constant comparisons as literals for the closing case merge.
        body: list[SLiteral] = []
        substitution: tuple[str, STerm] | None = None
        for literal in rule.body:
            if isinstance(literal, SCompare):
                if literal.left == literal.right:
                    if literal.op == "!=":
                        return None
                    continue  # trivially true
                if isinstance(literal.left, SConst) and isinstance(literal.right, SConst):
                    if (literal.left == literal.right) != (literal.op == "="):
                        return None
                    continue
                if (
                    literal.op == "="
                    and isinstance(literal.left, SVar)
                    and isinstance(literal.right, SVar)
                    and substitution is None
                ):
                    substitution = (literal.right.name, literal.left)
                    continue
                if (
                    literal.op == "="
                    and isinstance(literal.left, SConst)
                    and isinstance(literal.right, SVar)
                ):
                    literal = SCompare("=", literal.right, literal.left)
            body.append(literal)
        rule = SRule(rule.head, tuple(body))
        if substitution is not None:
            rule = _substitute_rule(rule, substitution[0], substitution[1])
        rule = _merge_same_constant_vars(rule)
        unified = _unify_unique_keys(rule)
        if unified is None:
            return None
        rule = SRule(unified.head, _dedup_body(unified.head.terms, unified.body))
        if _is_contradictory(rule.body):
            return None
        if rule == before:
            return rule


# ---------------------------------------------------------------------------
# Lemma 2
# ---------------------------------------------------------------------------


def drop_empty_predicates(
    rules: Iterable[SRule], empty: set[str], trace: Trace | None = None
) -> list[SRule]:
    """Lemma 2: rules with a positive literal on an empty predicate vanish;
    negative literals on empty predicates are trivially true."""
    result: list[SRule] = []
    for rule in rules:
        body: list[SLiteral] = []
        dead = False
        for literal in rule.body:
            if isinstance(literal, SAtom) and literal.pred in empty:
                if literal.positive:
                    dead = True
                    break
                continue
            body.append(literal)
        if dead:
            _note(trace, f"Lemma 2: removed (empty predicate): {rule}")
            continue
        if len(body) != len(rule.body):
            _note(trace, f"Lemma 2: pruned empty-predicate negations in: {rule}")
        if body:
            result.append(SRule(rule.head, tuple(body)))
        else:
            result.append(rule)
    return result


# ---------------------------------------------------------------------------
# Lemma 3 (tautology), incl. the equality variant, and subsumption
# ---------------------------------------------------------------------------


def _exact_complements(
    mapped: SLiteral,
    partner: SLiteral,
    *,
    local_pattern: set[str],
    local_target: set[str],
) -> bool:
    """True when ``mapped`` is exactly the complement literal ``partner``,
    allowing renaming only between variables local to their rules.

    This strictness matters for soundness: ``R(p, A)`` with ``A`` bound
    elsewhere is *stronger* than ``∃x R(p, x)`` and must not be treated as
    the complement of ``¬R(p, _)``.
    """
    from repro.datalog.symbolic import _literal_shape, _literal_terms

    if _literal_shape(mapped) != _literal_shape(partner):
        return False
    pairing: dict[str, str] = {}
    for m_term, p_term in zip(_literal_terms(mapped), _literal_terms(partner)):
        if m_term == p_term:
            continue
        if (
            isinstance(m_term, SVar)
            and isinstance(p_term, SVar)
            and m_term.name in local_pattern
            and p_term.name in local_target
        ):
            bound = pairing.get(m_term.name)
            if bound is None:
                pairing[m_term.name] = p_term.name
            elif bound != p_term.name:
                return False
            continue
        return False
    return True


def _try_tautology_merge(first: SRule, second: SRule) -> SRule | None:
    """If the rules agree on all but one complementary literal pair, return
    the merged rule with that literal dropped (Lemma 3)."""
    if len(first.body) != len(second.body):
        return None
    for literal in first.body:
        partner = complement(literal)
        if partner is None:
            continue
        reduced_first = first.without(literal)
        shared_first = reduced_first.variables() | first.head.variables()
        local_target = {
            name for name in literal.variables() if name not in shared_first
        }
        for candidate in second.body:
            if complement(candidate) is None:
                continue
            reduced_second = second.without(candidate)
            shared_second = reduced_second.variables() | second.head.variables()
            theta = find_renaming(reduced_second, reduced_first, exact=True)
            if theta is None:
                continue
            mapped = candidate.substitute(theta)
            local_pattern = {
                name for name in candidate.variables() if name not in shared_second
            }
            if _exact_complements(
                mapped, partner, local_pattern=local_pattern, local_target=local_target
            ):
                return normalize_rule(reduced_first)
    return None


def _try_equality_merge(general: SRule, special: SRule) -> SRule | None:
    """The paper's Rule-118→121 move: ``H ← B, x≠y`` merges with the rule
    obtained from ``H ← B`` by unifying ``x`` and ``y``; the result is
    ``H ← B`` with ``x`` and ``y`` independent."""
    if len(general.body) != len(special.body) + 1:
        return None
    for literal in general.body:
        if not isinstance(literal, SCompare) or literal.op != "!=":
            continue
        if not isinstance(literal.left, SVar) or not isinstance(literal.right, SVar):
            continue
        candidate = general.without(literal)
        unified = normalize_rule(
            candidate.substitute({literal.right.name: literal.left})
        )
        if unified is None:
            continue
        if find_renaming(unified, special, exact=True) is not None:
            return normalize_rule(candidate)
    return None


def tautology_merge_pass(rules: list[SRule], trace: Trace | None = None) -> list[SRule]:
    changed = True
    while changed:
        changed = False
        for i, first in enumerate(rules):
            for j, second in enumerate(rules):
                if i >= j or first.head.pred != second.head.pred:
                    continue
                merged = _try_tautology_merge(first, second)
                if merged is None:
                    merged = _try_equality_merge(first, second)
                if merged is None:
                    merged = _try_equality_merge(second, first)
                if merged is not None:
                    _note(trace, f"Lemma 3: merged\n    {first}\n    {second}\n  into {merged}")
                    rules = [r for k, r in enumerate(rules) if k not in (i, j)]
                    rules.append(merged)
                    changed = True
                    break
            if changed:
                break
    return rules


def subsumption_pass(rules: list[SRule], trace: Trace | None = None) -> list[SRule]:
    """Remove rules whose body is a superset of a more general same-head rule
    (e.g. Appendix A Rules 107 and 109 subsumed by Rule 108), and duplicate
    rules modulo renaming."""
    kept: list[SRule] = []
    for rule in rules:
        subsumed = False
        for other in rules:
            if other is rule or other.head.pred != rule.head.pred:
                continue
            if len(other.body) > len(rule.body):
                continue
            if len(other.body) == len(rule.body):
                # duplicates: keep only the first occurrence
                if rules.index(other) < rules.index(rule) and find_renaming(
                    other, rule, exact=True
                ):
                    subsumed = True
                    break
                continue
            if find_renaming(other, rule, exact=False) is not None:
                subsumed = True
                break
        if subsumed:
            _note(trace, f"Subsumption: removed {rule}")
        else:
            kept.append(rule)
    return kept


# ---------------------------------------------------------------------------
# Closing case analysis over ω-comparisons
# ---------------------------------------------------------------------------

CaseAtom = tuple[STerm, SConst]
DomainAxiom = Callable[[SRule, list[CaseAtom]], list[frozenset[CaseAtom]]]


def omega_completeness_axiom(data_predicates: set[str]) -> DomainAxiom:
    """Domain axiom: no stored data row has *all* payload parts equal ``ω``.

    This is the paper's implicit assumption behind the outer-join null
    fillers: a tuple that is entirely null filler would not exist.
    """

    def axiom(base_rule: SRule, case_atoms: list[CaseAtom]) -> list[frozenset[CaseAtom]]:
        impossible: list[frozenset[CaseAtom]] = []
        for literal in base_rule.body:
            if not isinstance(literal, SAtom) or not literal.positive:
                continue
            if literal.pred not in data_predicates:
                continue
            payload = literal.terms[1:]
            covering = frozenset(
                (term, OMEGA) for term in payload if (term, OMEGA) in case_atoms
            )
            if covering and len(covering) == len(payload):
                impossible.append(covering)
        return impossible

    return axiom


def _split_case_literals(rule: SRule) -> tuple[SRule, dict[CaseAtom, bool]]:
    base_body: list[SLiteral] = []
    cases: dict[CaseAtom, bool] = {}
    for literal in rule.body:
        if (
            isinstance(literal, SCompare)
            and isinstance(literal.right, SConst)
        ):
            cases[(literal.left, literal.right)] = literal.op == "="
        elif (
            isinstance(literal, SCompare)
            and isinstance(literal.left, SConst)
        ):
            cases[(literal.right, literal.left)] = literal.op == "="
        else:
            base_body.append(literal)
    return SRule(rule.head, tuple(base_body)), cases


def generalize_head_constants(rule: SRule) -> SRule:
    """Replace constants in head positions by fresh constrained variables so
    case analysis can line the rule up with its constant-free siblings."""
    new_terms: list[STerm] = []
    extra: list[SLiteral] = []
    for term in rule.head.terms:
        if isinstance(term, SConst):
            var = fresh_var("h")
            new_terms.append(var)
            extra.append(SCompare("=", var, term))
        else:
            new_terms.append(term)
    if not extra:
        return rule
    return SRule(
        SAtom(rule.head.pred, tuple(new_terms), rule.head.positive),
        rule.body + tuple(extra),
    )


def case_merge_pass(
    rules: list[SRule],
    axioms: Sequence[DomainAxiom] = (),
    trace: Trace | None = None,
) -> list[SRule]:
    """Merge a group of rules that differ only in ``term (=|≠) const``
    literals when together they cover every possible case allowed by the
    domain axioms."""
    prepared = [normalize_rule(generalize_head_constants(rule)) for rule in rules]
    work = [rule for rule in prepared if rule is not None]
    result: list[SRule] = []
    consumed: set[int] = set()
    for i, rule in enumerate(work):
        if i in consumed:
            continue
        base, cases = _split_case_literals(rule)
        if not cases:
            result.append(rule)
            continue
        group: list[tuple[int, dict[CaseAtom, bool]]] = [(i, cases)]
        for j in range(i + 1, len(work)):
            if j in consumed:
                continue
            other_base, other_cases = _split_case_literals(work[j])
            theta = find_renaming(other_base, base, exact=True)
            if theta is None:
                continue
            mapped = {
                ((theta.get(term.name, term) if isinstance(term, SVar) else term), const): value
                for (term, const), value in other_cases.items()
            }
            group.append((j, mapped))
        atoms = sorted(
            {atom for _, cases_ in group for atom in cases_},
            key=lambda atom: (str(atom[0]), str(atom[1])),
        )
        impossible: set[frozenset[CaseAtom]] = set()
        for axiom in axioms:
            impossible.update(axiom(base, atoms))
        covered: set[tuple[bool, ...]] = set()
        for _, cases_ in group:
            free = [atom for atom in atoms if atom not in cases_]
            for assignment in product((False, True), repeat=len(free)):
                full = dict(cases_)
                full.update(zip(free, assignment))
                covered.add(tuple(full[atom] for atom in atoms))
        complete = True
        for assignment in product((False, True), repeat=len(atoms)):
            truth = dict(zip(atoms, assignment))
            excluded = any(
                all(truth.get(atom, False) for atom in axiom_set)
                for axiom_set in impossible
            )
            if excluded:
                continue
            if tuple(truth[atom] for atom in atoms) not in covered:
                complete = False
                break
        if complete and len(group) >= 1:
            merged = normalize_rule(base)
            if merged is not None:
                _note(
                    trace,
                    "Case analysis: merged "
                    + ", ".join(str(work[k]) for k, _ in group)
                    + f"\n  into {merged}",
                )
                result.append(merged)
                consumed.update(k for k, _ in group)
                continue
        result.append(rule)
    return result


# ---------------------------------------------------------------------------
# Full simplification driver
# ---------------------------------------------------------------------------


def _apply_domain_knowledge(
    rule: SRule,
    omega_free: set[str],
    total_conditions: set[str],
) -> SRule | None:
    """Two pieces of knowledge the paper uses implicitly:

    - *ω-freeness*: stored data tables never contain the null filler ``ω``
      (an all-ω tuple would not exist). For a single-payload atom
      ``q(p, t)`` with ``q`` ω-free, ``t ≠ ω`` is implied and ``t = ω``
      contradictory.
    - *Totality* of value-computing conditions (the ``f`` of ADD/DROP
      COLUMN): ``fB(A, b)`` with an otherwise-unused output ``b`` always
      holds for some ``b`` and can be dropped.
    """
    counts = _variable_counts(rule.head.terms, rule.body)
    implied_nonomega: set[STerm] = set()
    for literal in rule.body:
        if (
            isinstance(literal, SAtom)
            and literal.positive
            and literal.pred in omega_free
            and len(literal.terms) == 2  # key + single payload part
        ):
            implied_nonomega.add(literal.terms[1])
    body: list[SLiteral] = []
    for literal in rule.body:
        if isinstance(literal, SCompare):
            normalized = literal.normalized()
            sides = (normalized.left, normalized.right)
            if OMEGA in sides:
                other = sides[0] if sides[1] == OMEGA else sides[1]
                if other in implied_nonomega:
                    if normalized.op == "=":
                        return None
                    continue  # t ≠ ω is implied; drop it
        if (
            isinstance(literal, SCond)
            and literal.positive
            and literal.name in total_conditions
            and literal.terms
            and isinstance(literal.terms[-1], SVar)
            and counts.get(literal.terms[-1].name, 0) <= 1
        ):
            continue  # total function: some output always exists
        body.append(literal)
    if len(body) == len(rule.body):
        return rule
    return SRule(rule.head, tuple(body))


def simplify_rules(
    rules: Iterable[SRule],
    *,
    empty_predicates: set[str] | None = None,
    axioms: Sequence[DomainAxiom] = (),
    omega_free: set[str] | None = None,
    total_conditions: set[str] | None = None,
    trace: Trace | None = None,
    max_rounds: int = 40,
) -> list[SRule]:
    """Apply Lemmas 2–5, subsumption, and the closing case analysis until a
    fixpoint is reached."""
    current = list(rules)
    if empty_predicates:
        current = drop_empty_predicates(current, empty_predicates, trace)
    for _ in range(max_rounds):
        before = list(current)
        normalized: list[SRule] = []
        for rule in current:
            clean = normalize_rule(rule)
            if clean is not None and (omega_free or total_conditions):
                clean = _apply_domain_knowledge(
                    clean, omega_free or set(), total_conditions or set()
                )
                if clean is not None:
                    clean = normalize_rule(clean)
            if clean is None:
                _note(trace, f"Lemma 4: removed contradictory rule: {rule}")
            else:
                normalized.append(clean)
        current = subsumption_pass(normalized, trace)
        current = tautology_merge_pass(current, trace)
        current = subsumption_pass(current, trace)
        if axioms:
            current = case_merge_pass(current, axioms, trace)
            current = subsumption_pass(current, trace)
        if current == before:
            break
    return current
