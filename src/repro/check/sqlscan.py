"""A reference scanner for the generated delta-code SQL.

The verifier needs to know, for every generated ``CREATE VIEW`` /
``CREATE TRIGGER`` / ``CREATE TABLE`` statement, *which tables, views,
aliases, and columns the statement mentions* — without executing it and
without a full SQL grammar.  The generated dialect is narrow (the
emitters in :mod:`repro.backend.emit` produce it), so a tokenizer plus a
small state machine over FROM/INTO/UPDATE/JOIN positions is exact enough
to resolve every reference while staying robust to statements the
composer rewrote.

Nested views reuse branch aliases (``t0``, ``n``) across UNION branches,
so the alias map is a **multimap**: an ``alias.column`` reference
resolves if *any* candidate table bound to that alias provides the
column.  That trades a few false negatives for zero false positives —
the right trade for a gate that recovery and CI refuse on.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

#: Words the emitters produce as SQL structure.  A bare identifier in
#: alias position that matches one of these is structure, not an alias;
#: and an identifier *named* like one of these cannot be distinguished
#: from structure by the unquoted-identifier scan, so RPC105 skips them.
STRUCTURAL_KEYWORDS = frozenset({
    "SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "NULL", "IS", "IN",
    "AS", "ON", "JOIN", "UNION", "EXISTS", "INSERT", "UPDATE", "DELETE",
    "INTO", "VALUES", "SET", "CREATE", "VIEW", "TRIGGER", "TABLE",
    "INDEX", "INSTEAD", "OF", "BEGIN", "END", "IF", "RAISE", "ABORT",
    "REPLACE", "TEMP", "PRIMARY", "KEY", "INTEGER", "TEXT", "LIKE",
    "CASE", "WHEN", "THEN", "ELSE", "BY", "GROUP", "ORDER", "DISTINCT",
    "ALL", "LEFT", "OUTER", "INNER", "CROSS", "COALESCE", "CAST",
    "BETWEEN", "ASC", "DESC", "LIMIT", "OFFSET", "OLD", "NEW",
})

#: Sentinel bound as the "table" of an alias over a derived-table
#: subquery: the scanner cannot know its output columns, so the
#: reference resolver skips qualifiers that may point at one.
SUBQUERY = "(subquery)"

_TOKEN = re.compile(
    r"""
      '(?:[^']|'')*'             # string literal ('' escapes)
    | "(?:[^"]|"")*"             # quoted identifier ("" escapes)
    | [A-Za-z_][A-Za-z0-9_]*     # bare identifier or keyword
    | \d+(?:\.\d+)?              # number
    | <=|>=|!=|<>|\|\|           # two-char operators
    | .                          # any other single character
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class SqlToken:
    text: str
    kind: str  # ident | qident | string | number | punct

    @property
    def upper(self) -> str:
        return self.text.upper() if self.kind == "ident" else ""

    @property
    def name(self) -> str:
        """The identifier this token denotes (unquoting ``"..."``)."""
        if self.kind == "qident":
            return self.text[1:-1].replace('""', '"')
        return self.text


def tokenize_sql(sql: str) -> list[SqlToken]:
    tokens: list[SqlToken] = []
    for match in _TOKEN.finditer(sql):
        text = match.group(0)
        if text.isspace():
            continue
        if text.startswith("'"):
            kind = "string"
        elif text.startswith('"'):
            kind = "qident"
        elif re.match(r"[A-Za-z_]", text):
            kind = "ident"
        elif text[0].isdigit():
            kind = "number"
        else:
            kind = "punct"
        tokens.append(SqlToken(text, kind))
    return tokens


@dataclass
class StatementScan:
    """Everything the verifier needs to know about one statement."""

    kind: str = "other"  # view | trigger | table | index | other
    name: str | None = None
    on_view: str | None = None  # trigger: the view it fires on
    operation: str | None = None  # trigger: INSERT | UPDATE | DELETE
    table_refs: list[str] = field(default_factory=list)
    #: alias -> every table/view the alias is bound to anywhere in the
    #: statement (UNION branches legitimately reuse alias names).
    aliases: dict[str, set[str]] = field(default_factory=dict)
    column_refs: list[tuple[str, str]] = field(default_factory=list)
    columns_defined: tuple[str, ...] = ()  # CREATE TABLE column list


def _is_name(token: SqlToken) -> bool:
    if token.kind == "qident":
        return True
    return token.kind == "ident" and token.upper not in STRUCTURAL_KEYWORDS


def _matching_paren(tokens: list[SqlToken], start: int) -> int:
    """Index of the ``)`` closing the ``(`` at ``start``."""
    depth = 0
    for i in range(start, len(tokens)):
        if tokens[i].text == "(":
            depth += 1
        elif tokens[i].text == ")":
            depth -= 1
            if depth == 0:
                return i
    return len(tokens) - 1


class _BodyScanner:
    """Collects table refs, aliases, and qualified column refs from the
    token stream of one statement body."""

    def __init__(self, scan: StatementScan):
        self.scan = scan

    def run(self, tokens: list[SqlToken]) -> None:
        i = 0
        while i < len(tokens):
            token = tokens[i]
            if token.upper in ("FROM", "JOIN"):
                i = self._from_list(tokens, i + 1)
                continue
            if token.upper == "INTO":
                i = self._single_ref(tokens, i + 1)
                continue
            if token.upper == "UPDATE":
                i = self._single_ref(tokens, i + 1)
                continue
            if _is_name(token) or token.upper in ("NEW", "OLD"):
                nxt = tokens[i + 1] if i + 1 < len(tokens) else None
                after = tokens[i + 2] if i + 2 < len(tokens) else None
                if (nxt is not None and nxt.text == "."
                        and after is not None
                        and (after.kind in ("ident", "qident"))):
                    self.scan.column_refs.append((token.name, after.name))
                    i += 3
                    continue
            i += 1

    def _bind_alias(self, alias: str, table: str) -> None:
        self.scan.aliases.setdefault(alias, set()).add(table)

    def _single_ref(self, tokens: list[SqlToken], i: int) -> int:
        """One table name after INTO / UPDATE (never aliased, never a
        subquery in the generated dialect)."""
        if i < len(tokens) and _is_name(tokens[i]):
            self.scan.table_refs.append(tokens[i].name)
            return i + 1
        return i

    def _from_list(self, tokens: list[SqlToken], i: int) -> int:
        """A comma-separated FROM list: each entry is a table name or a
        parenthesized subquery, optionally followed by an alias."""
        while i < len(tokens):
            token = tokens[i]
            if token.text == "(":
                close = _matching_paren(tokens, i)
                # Recurse: the subquery may itself read tables.
                _BodyScanner(self.scan).run(tokens[i + 1:close])
                i = close + 1
                if i < len(tokens) and _is_name(tokens[i]):
                    # Alias over a derived table: its columns are opaque
                    # to the scanner, so bind the sentinel that makes the
                    # resolver skip (never flag) references through it.
                    self._bind_alias(tokens[i].name, SUBQUERY)
                    i += 1
            elif _is_name(token):
                table = token.name
                self.scan.table_refs.append(table)
                i += 1
                if i < len(tokens) and _is_name(tokens[i]):
                    nxt = tokens[i + 1] if i + 1 < len(tokens) else None
                    if nxt is None or nxt.text != ".":
                        self._bind_alias(tokens[i].name, table)
                        i += 1
            else:
                break
            if i < len(tokens) and tokens[i].text == ",":
                i += 1
                continue
            break
        return i


def scan_statement(sql: str) -> StatementScan:
    """Classify one generated statement and collect its references."""
    tokens = tokenize_sql(sql)
    scan = StatementScan()
    uppers = [t.upper for t in tokens[:8]]

    def name_at(index: int) -> str | None:
        if index < len(tokens) and tokens[index].kind in ("ident", "qident"):
            return tokens[index].name
        return None

    if uppers[:2] == ["CREATE", "VIEW"]:
        scan.kind = "view"
        scan.name = name_at(2)
        # Body: everything after the AS keyword.
        for i, token in enumerate(tokens):
            if token.upper == "AS":
                _BodyScanner(scan).run(tokens[i + 1:])
                break
        return scan
    if uppers[:2] == ["CREATE", "TRIGGER"]:
        scan.kind = "trigger"
        scan.name = name_at(2)
        body_start = 0
        for i, token in enumerate(tokens):
            if token.upper == "ON":
                scan.on_view = name_at(i + 1)
            elif token.upper in ("INSERT", "UPDATE", "DELETE") and scan.operation is None:
                scan.operation = token.upper
            elif token.upper == "BEGIN":
                body_start = i + 1
                break
        _BodyScanner(scan).run(tokens[body_start:])
        return scan
    if "TABLE" in uppers[:3] and uppers[0] == "CREATE":
        scan.kind = "table"
        # CREATE [TEMP] TABLE [IF NOT EXISTS] <name> ( p ..., col, ... )
        i = uppers.index("TABLE") + 1
        while i < len(tokens) and tokens[i].upper in ("IF", "NOT", "EXISTS"):
            i += 1
        scan.name = name_at(i)
        if i + 1 < len(tokens) and tokens[i + 1].text == "(":
            close = _matching_paren(tokens, i + 1)
            columns: list[str] = []
            expect_name = True
            for token in tokens[i + 2:close]:
                if token.text == ",":
                    expect_name = True
                elif expect_name and token.kind in ("ident", "qident"):
                    columns.append(token.name)
                    expect_name = False
            scan.columns_defined = tuple(columns)
        return scan
    if uppers[:2] == ["CREATE", "INDEX"] or uppers[:3] == ["CREATE", "UNIQUE", "INDEX"]:
        scan.kind = "index"
        i = uppers.index("INDEX") + 1
        while i < len(tokens) and tokens[i].upper in ("IF", "NOT", "EXISTS"):
            i += 1
        scan.name = name_at(i)
        for j in range(i, len(tokens)):
            if tokens[j].upper == "ON":
                table = name_at(j + 1)
                if table is not None:
                    scan.table_refs.append(table)
                    if j + 2 < len(tokens) and tokens[j + 2].text == "(":
                        close = _matching_paren(tokens, j + 2)
                        for token in tokens[j + 3:close]:
                            if token.kind in ("ident", "qident"):
                                scan.column_refs.append((table, token.name))
                break
        return scan
    _BodyScanner(scan).run(tokens)
    return scan


def unquoted_occurrence(sql: str, name: str) -> bool:
    """Does ``name`` appear in ``sql`` as a *bare* word — outside string
    literals and outside double-quoted identifiers?  Used by the RPC105
    pass for names :func:`~repro.util.naming.quote_identifier` would
    quote."""
    if not re.match(r"^[A-Za-z_][A-Za-z0-9_]*$", name):
        # A name with odd characters cannot appear as a bare identifier
        # token at all; nothing to scan for.
        return False
    pattern = re.compile(rf"\b{re.escape(name)}\b", re.IGNORECASE)
    i = 0
    length = len(sql)
    segment_start = 0
    while i < length:
        ch = sql[i]
        if ch in ("'", '"'):
            if pattern.search(sql, segment_start, i):
                return True
            quote = ch
            i += 1
            while i < length:
                if sql[i] == quote:
                    if i + 1 < length and sql[i + 1] == quote:
                        i += 2
                        continue
                    break
                i += 1
            segment_start = i + 1
        i += 1
    return bool(pattern.search(sql, segment_start, length))
