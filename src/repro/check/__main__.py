"""``python -m repro.check`` — the static-analysis command line.

Modes (combinable; every requested pass runs, findings are merged):

- ``--db PATH``       verify the generated delta code of a persisted
                      database (both the flattened and nested emission);
- ``--preflight FILE`` / ``--preflight-text SQL``
                      pre-flight a BiDEL script (against ``--db``'s
                      catalog when given, else an empty catalog);
- ``--lint [ROOT]``   run the project lint.

Exit status is non-zero iff any **error**-severity finding was reported
(warnings never fail the gate), which is what the CI ``static-analysis``
job keys on.
"""

from __future__ import annotations

import argparse
import sys

from repro.check.diagnostics import Diagnostic, error_count


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="Static analysis: delta-code verification, BiDEL "
                    "pre-flight, project lint.",
    )
    parser.add_argument(
        "--db", metavar="PATH",
        help="SQLite database with a persisted catalog: verify its "
             "generated delta code",
    )
    parser.add_argument(
        "--preflight", metavar="FILE",
        help="BiDEL script file to analyze before execution",
    )
    parser.add_argument(
        "--preflight-text", metavar="SQL",
        help="BiDEL script passed inline",
    )
    parser.add_argument(
        "--lint", nargs="?", const="", metavar="ROOT",
        help="run the project lint (optionally over ROOT instead of the "
             "installed repro package)",
    )
    return parser


def run(argv: list[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    if not (args.db or args.preflight or args.preflight_text
            or args.lint is not None):
        _parser().print_usage(sys.stderr)
        print("error: nothing to do — pass --db, --preflight, or --lint",
              file=sys.stderr)
        return 2

    findings: list[Diagnostic] = []
    engine = None
    if args.db:
        import repro
        from repro.check.delta import verify_delta_code
        from repro.check.diagnostics import record_findings

        # resume_backfill=None: static inspection must neither resume nor
        # roll back an in-flight online-MATERIALIZE journal — it reports
        # on the transitional state instead (RPC107).
        engine = repro.open(args.db, create=False, resume_backfill=None)
        try:
            delta_findings = verify_delta_code(engine, flatten=True)
            delta_findings += [
                d for d in verify_delta_code(engine, flatten=False)
                if d not in delta_findings
            ]
            backend = engine.live_backend
            if backend is not None and hasattr(backend, "store"):
                from repro.check.delta import verify_transitional_objects

                delta_findings += verify_transitional_objects(
                    backend.connection, backend.store
                )
            record_findings(engine, delta_findings, scope="cli")
            findings += delta_findings
            print(f"delta code: {len(delta_findings)} finding(s) over "
                  f"{len(engine.version_names())} schema version(s)")
        finally:
            backend = engine.live_backend
            if args.preflight is None and args.preflight_text is None:
                if backend is not None:
                    backend.close()
                engine = None

    script = None
    if args.preflight:
        with open(args.preflight, encoding="utf-8") as handle:
            script = handle.read()
    elif args.preflight_text:
        script = args.preflight_text
    if script is not None:
        from repro.check.preflight import preflight_script

        preflight_findings = preflight_script(engine, script)
        findings += preflight_findings
        print(f"pre-flight: {len(preflight_findings)} finding(s)")
        if engine is not None and engine.live_backend is not None:
            engine.live_backend.close()

    if args.lint is not None:
        from repro.check.lint import run_project_lint

        lint_findings = run_project_lint(args.lint or None)
        findings += lint_findings
        print(f"lint: {len(lint_findings)} finding(s)")

    for diagnostic in findings:
        print(diagnostic.render())
    errors = error_count(findings)
    print(f"{len(findings)} finding(s), {errors} error(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(run())
