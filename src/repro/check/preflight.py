"""BiDEL pre-flight analysis (RPC2xx): check an SMO chain *before* the
engine runs it.

``CHECK <bidel>`` (and ``python -m repro.check --preflight``) parses the
script and simulates it over a working copy of the catalog's schema —
just names and column lists, no data, no delta code — flagging:

- **RPC201** name collisions (schema versions, tables, columns),
- **RPC202** references to unknown or dropped versions/tables,
- **RPC203** references to columns the table does not have,
- **RPC204** information-loss warnings for non-invertible SMOs,
- **RPC205/RPC206** overlap/gap between partition conditions, found by
  evaluating both conditions over a small sample grid built from the
  literals they mention (the engine's own 3-valued
  :meth:`~repro.expr.ast.Expression.evaluate`).

The analysis is best-effort on a broken chain: after reporting a
problem it keeps simulating with the most plausible state, so one
mistake does not drown the rest of the script in noise.
"""

from __future__ import annotations

import itertools
from dataclasses import fields, is_dataclass

from repro.bidel.ast import (
    AddColumn,
    CreateSchemaVersion,
    CreateTable,
    Decompose,
    DropColumn,
    DropSchemaVersion,
    DropTable,
    Join,
    Materialize,
    Merge,
    RenameColumn,
    RenameTable,
    Split,
)
from repro.bidel.parser import parse_script
from repro.check.diagnostics import Diagnostic
from repro.errors import ReproError
from repro.expr.ast import Expression, Literal, is_true

#: Working schema: live version name -> table name -> column tuple.
Schema = dict[str, dict[str, tuple[str, ...]]]

_MAX_SAMPLES = 8192


def catalog_schema(engine) -> Schema:
    """The live (non-dropped) versions of ``engine`` as a working schema."""
    if engine is None:
        return {}
    return {
        version.name: {
            name: tuple(tv.schema.column_names)
            for name, tv in version.tables.items()
        }
        for version in engine.genealogy.active_versions()
    }


def preflight_script(engine, text: str) -> list[Diagnostic]:
    """Analyze a BiDEL script against ``engine``'s current catalog (or an
    empty catalog when ``engine`` is ``None``)."""
    try:
        statements = parse_script(text)
    except ReproError as exc:
        return [Diagnostic("RPC200", "error", "<script>", str(exc))]
    versions = catalog_schema(engine)
    diagnostics: list[Diagnostic] = []
    for statement in statements:
        if isinstance(statement, CreateSchemaVersion):
            _check_create_version(versions, statement, diagnostics)
        elif isinstance(statement, DropSchemaVersion):
            if statement.name not in versions:
                diagnostics.append(Diagnostic(
                    "RPC202", "error", statement.name,
                    f"no such live schema version {statement.name!r} "
                    "(DROP SCHEMA VERSION)",
                ))
            else:
                del versions[statement.name]
        elif isinstance(statement, Materialize):
            _check_materialize(versions, statement, diagnostics)
    return diagnostics


def _check_materialize(versions: Schema, statement: Materialize,
                       diagnostics: list[Diagnostic]) -> None:
    for target in statement.targets:
        version, _, table = target.partition(".")
        if version not in versions:
            diagnostics.append(Diagnostic(
                "RPC202", "error", target,
                f"MATERIALIZE target {target!r}: no such live schema "
                "version",
            ))
        elif table and table not in versions[version]:
            diagnostics.append(Diagnostic(
                "RPC202", "error", target,
                f"MATERIALIZE target {target!r}: version {version!r} has "
                f"no table {table!r}",
            ))


def _check_create_version(versions: Schema, statement: CreateSchemaVersion,
                          diagnostics: list[Diagnostic]) -> None:
    if statement.name in versions:
        diagnostics.append(Diagnostic(
            "RPC201", "error", statement.name,
            f"schema version {statement.name!r} already exists",
        ))
    if statement.source is None:
        tables: dict[str, tuple[str, ...]] = {}
    elif statement.source not in versions:
        diagnostics.append(Diagnostic(
            "RPC202", "error", statement.name,
            f"source schema version {statement.source!r} does not exist "
            "or was dropped",
        ))
        tables = {}
    else:
        tables = dict(versions[statement.source])
    for smo in statement.smos:
        _apply_smo(statement.name, tables, smo, diagnostics)
    versions[statement.name] = tables


def _apply_smo(version: str, tables: dict[str, tuple[str, ...]], smo,
               diagnostics: list[Diagnostic]) -> None:
    def at(table: str) -> str:
        return f"{version}.{table}"

    def report(code: str, severity: str, table: str, message: str) -> None:
        diagnostics.append(Diagnostic(code, severity, at(table), message))

    def require_table(table: str) -> tuple[str, ...] | None:
        columns = tables.get(table)
        if columns is None:
            report("RPC202", "error", table,
                   f"table {table!r} does not exist at this point of the "
                   "chain")
        return columns

    def require_columns(table: str, needed, columns) -> None:
        for column in needed:
            if column not in columns:
                report("RPC203", "error", table,
                       f"column {column!r} does not exist in {table!r} "
                       f"(has: {', '.join(columns) or 'no columns'})")

    def collision(name: str, *, besides: tuple[str, ...] = ()) -> bool:
        if name in tables and name not in besides:
            report("RPC201", "error", name,
                   f"table {name!r} already exists in this version")
            return True
        return False

    if isinstance(smo, CreateTable):
        collision(smo.table)
        seen: set[str] = set()
        for column in smo.columns:
            if column.name in seen:
                report("RPC201", "error", smo.table,
                       f"duplicate column {column.name!r} in CREATE TABLE")
            seen.add(column.name)
        tables[smo.table] = tuple(c.name for c in smo.columns)
    elif isinstance(smo, DropTable):
        if require_table(smo.table) is not None:
            report("RPC204", "warning", smo.table,
                   f"dropping table {smo.table!r} hides its rows from "
                   "this version; they stay reachable only through "
                   "co-existing versions")
            del tables[smo.table]
    elif isinstance(smo, RenameTable):
        columns = require_table(smo.table)
        collision(smo.new_name, besides=(smo.table,))
        if columns is not None:
            del tables[smo.table]
            tables[smo.new_name] = columns
    elif isinstance(smo, RenameColumn):
        columns = require_table(smo.table)
        if columns is None:
            return
        require_columns(smo.table, (smo.column,), columns)
        if smo.new_name in columns and smo.new_name != smo.column:
            report("RPC201", "error", smo.table,
                   f"column {smo.new_name!r} already exists in {smo.table!r}")
        tables[smo.table] = tuple(
            smo.new_name if c == smo.column else c for c in columns
        )
    elif isinstance(smo, AddColumn):
        columns = require_table(smo.table)
        if columns is None:
            return
        if smo.column in columns:
            report("RPC201", "error", smo.table,
                   f"column {smo.column!r} already exists in {smo.table!r}")
        require_columns(smo.table, sorted(smo.function.columns()), columns)
        tables[smo.table] = (*columns, smo.column)
    elif isinstance(smo, DropColumn):
        columns = require_table(smo.table)
        if columns is None:
            return
        require_columns(smo.table, (smo.column,), columns)
        remaining = tuple(c for c in columns if c != smo.column)
        require_columns(smo.table, sorted(smo.default.columns()), remaining)
        report("RPC204", "warning", smo.table,
               f"dropping column {smo.column!r} is lossy backward: rows "
               "created in this version reconstruct it from the DEFAULT "
               "expression")
        tables[smo.table] = remaining
    elif isinstance(smo, Decompose):
        columns = require_table(smo.table)
        if columns is None:
            return
        require_columns(smo.table, smo.first_columns, columns)
        require_columns(smo.table, smo.second_columns, columns)
        collision(smo.first_table, besides=(smo.table,))
        del tables[smo.table]
        tables[smo.first_table] = tuple(smo.first_columns)
        if smo.second_table is not None:
            collision(smo.second_table, besides=())
            second = tuple(smo.second_columns)
            if smo.kind.method == "FK" and smo.kind.fk_column:
                second = (*second, smo.kind.fk_column)
            tables[smo.second_table] = second
            if smo.kind.method == "COND" and smo.kind.condition is not None:
                require_columns(
                    smo.table, sorted(smo.kind.condition.columns()), columns
                )
    elif isinstance(smo, Join):
        first = require_table(smo.first_table)
        second = require_table(smo.second_table)
        if first is None or second is None:
            return
        collision(smo.target, besides=(smo.first_table, smo.second_table))
        joint = (*first, *[c for c in second if c not in first])
        if smo.kind.method == "FK" and smo.kind.fk_column:
            require_columns(smo.second_table, (smo.kind.fk_column,), second)
        if smo.kind.method == "COND" and smo.kind.condition is not None:
            require_columns(
                smo.target, sorted(smo.kind.condition.columns()), joint
            )
        if not smo.outer:
            report("RPC204", "warning", smo.target,
                   "inner JOIN is lossy: rows without a join partner are "
                   "invisible in the target (use OUTER JOIN to keep them)")
        del tables[smo.first_table]
        if smo.second_table in tables:
            del tables[smo.second_table]
        tables[smo.target] = joint
    elif isinstance(smo, Split):
        columns = require_table(smo.table)
        if columns is None:
            return
        collision(smo.first_table, besides=(smo.table,))
        require_columns(
            smo.table, sorted(smo.first_condition.columns()), columns
        )
        del tables[smo.table]
        tables[smo.first_table] = columns
        if smo.second_table is None:
            report("RPC204", "warning", smo.first_table,
                   "single-target SPLIT is lossy: rows not matching the "
                   "condition are invisible in the new version")
        else:
            collision(smo.second_table, besides=())
            assert smo.second_condition is not None
            require_columns(
                smo.table, sorted(smo.second_condition.columns()), columns
            )
            tables[smo.second_table] = columns
            _check_partition(
                version, smo.first_table, smo.first_condition,
                smo.second_condition, diagnostics, gap_is_loss=True,
            )
    elif isinstance(smo, Merge):
        first = require_table(smo.first_table)
        second = require_table(smo.second_table)
        collision(smo.target, besides=(smo.first_table, smo.second_table))
        if first is not None:
            require_columns(
                smo.first_table, sorted(smo.first_condition.columns()), first
            )
            del tables[smo.first_table]
        if second is not None:
            require_columns(
                smo.second_table, sorted(smo.second_condition.columns()),
                second,
            )
            if smo.second_table in tables:
                del tables[smo.second_table]
        if first is not None or second is not None:
            tables[smo.target] = first or second or ()
            _check_partition(
                version, smo.target, smo.first_condition,
                smo.second_condition, diagnostics, gap_is_loss=False,
            )


# ---------------------------------------------------------------------------
# Partition-condition overlap/gap analysis
# ---------------------------------------------------------------------------


def _literal_values(expression: Expression) -> list:
    """Every literal value mentioned anywhere inside ``expression``."""
    values: list = []

    def walk(node) -> None:
        if isinstance(node, Literal):
            values.append(node.value)
            return
        if not is_dataclass(node):
            return
        for field in fields(node):
            value = getattr(node, field.name)
            if isinstance(value, Expression):
                walk(value)
            elif isinstance(value, tuple):
                for item in value:
                    if isinstance(item, Expression):
                        walk(item)

    walk(expression)
    return values


def _sample_values(first: Expression, second: Expression) -> list:
    """Candidate values per column: the literals both conditions mention,
    their numeric neighbours (to probe strict-vs-inclusive boundaries),
    a few generic values, and NULL."""
    values: list = [None, 0, 1, -1]
    for literal in (*_literal_values(first), *_literal_values(second)):
        if literal not in values:
            values.append(literal)
        if isinstance(literal, (int, float)) and not isinstance(literal, bool):
            for neighbour in (literal - 1, literal + 1):
                if neighbour not in values:
                    values.append(neighbour)
    return values


def _check_partition(version: str, table: str, first: Expression,
                     second: Expression, diagnostics: list[Diagnostic],
                     *, gap_is_loss: bool) -> None:
    columns = sorted(first.columns() | second.columns())
    if not columns:
        return
    values = _sample_values(first, second)
    # Cap the grid: with many columns, probe a per-column slice instead
    # of the full cartesian product.
    while len(values) ** len(columns) > _MAX_SAMPLES and len(values) > 3:
        values = values[:-1]
    overlap_row = gap_row = None
    for combo in itertools.product(values, repeat=len(columns)):
        row = dict(zip(columns, combo))
        try:
            first_hit = is_true(first.evaluate(row))
            second_hit = is_true(second.evaluate(row))
        except ReproError:
            continue
        if overlap_row is None and first_hit and second_hit:
            overlap_row = row
        # NULL satisfies neither side of any comparison pair (3-valued
        # logic), so a NULL witness would flag every split ever written;
        # only a fully non-NULL row counts as a gap.
        if (gap_row is None and not first_hit and not second_hit
                and all(v is not None for v in row.values())):
            gap_row = row
        if overlap_row is not None and gap_row is not None:
            break
    if overlap_row is not None:
        diagnostics.append(Diagnostic(
            "RPC205", "warning", f"{version}.{table}",
            f"partition conditions overlap: {overlap_row!r} satisfies "
            f"both ({first.to_sql()}) and ({second.to_sql()})",
        ))
    if gap_row is not None:
        diagnostics.append(Diagnostic(
            "RPC206", "warning", f"{version}.{table}",
            f"partition conditions leave a gap: {gap_row!r} satisfies "
            f"neither ({first.to_sql()}) nor ({second.to_sql()})"
            + (" — such rows are lost" if gap_is_loss else ""),
        ))
