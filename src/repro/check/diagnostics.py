"""Diagnostic model shared by all three static-analysis passes.

Every pass — the delta-code verifier (:mod:`repro.check.delta`), the
BiDEL pre-flight analyzer (:mod:`repro.check.preflight`), and the project
linter (:mod:`repro.check.lint`) — reports findings as immutable
:class:`Diagnostic` records with a **stable code** from
:data:`DIAGNOSTIC_CATALOG`.  Codes never change meaning across releases:
tests, CI gates, and suppression comments key on them.

Code ranges:

- ``RPC1xx`` — delta-code verifier (generated views and triggers),
- ``RPC2xx`` — BiDEL pre-flight analyzer (SMO chains before execution),
- ``RPC3xx`` — project lint (codebase invariants).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Severity levels, in increasing order of badness.  CI and recovery
#: gate on ``error``; ``warning`` is advisory.
SEVERITIES = ("info", "warning", "error")

#: The stable code catalog: every diagnostic any pass can emit.
#: ``docs/static-analysis.md`` documents each entry with a triggering
#: example, and the docs test asserts the two stay in sync.
DIAGNOSTIC_CATALOG: dict[str, str] = {
    # -- delta-code verifier (RPC1xx) -----------------------------------
    "RPC101": "generated statement references a table or view that does not "
              "exist in the physical layout or the generated view set",
    "RPC102": "generated statement references a column (or row-variable "
              "field) that no candidate table or view provides",
    "RPC103": "the generated view dependency graph contains a cycle",
    "RPC104": "a non-materialized table version is missing an INSTEAD OF "
              "trigger for one of INSERT/UPDATE/DELETE",
    "RPC105": "an identifier that requires quoting is emitted unquoted",
    "RPC106": "the flattened view emission reads a physical base table "
              "the nested composition never touches",
    "RPC107": "transitional online-MATERIALIZE object (backfill staging "
              "table, capture trigger, or dirty table) exists without a "
              "journal entry that accounts for it",
    # -- BiDEL pre-flight (RPC2xx) --------------------------------------
    "RPC200": "the BiDEL script does not parse",
    "RPC201": "name collision: the schema version, table, or column "
              "already exists at this point of the chain",
    "RPC202": "reference to an unknown or dropped schema version or table",
    "RPC203": "reference to a column the table does not have at this "
              "point of the chain",
    "RPC204": "information-loss warning: the SMO is not invertible "
              "without auxiliary state",
    "RPC205": "partition conditions overlap: some row satisfies both",
    "RPC206": "partition conditions leave a gap: some row satisfies "
              "neither and would be lost",
    # -- project lint (RPC3xx) ------------------------------------------
    "RPC301": "f-string SQL interpolation outside the quoting-helper "
              "modules",
    "RPC302": "catalog mutation outside the RWLock write side",
    "RPC303": "metric series created outside the fixed-series registry",
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a stable code, a severity, the object it anchors to
    (a generated object name, ``version.table``, or ``path:line``), and a
    human-readable message."""

    code: str
    severity: str
    obj: str
    message: str

    def __post_init__(self) -> None:
        if self.code not in DIAGNOSTIC_CATALOG:
            raise ValueError(f"unknown diagnostic code {self.code!r}")
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def as_row(self) -> tuple[str, str, str, str]:
        """The (code, severity, object, message) result-set row used by
        the ``CHECK`` statement on both transports."""
        return (self.code, self.severity, self.obj, self.message)

    def as_dict(self) -> dict[str, str]:
        return {
            "code": self.code,
            "severity": self.severity,
            "object": self.obj,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.code} {self.severity:<7} {self.obj}: {self.message}"


def error_count(diagnostics: list[Diagnostic]) -> int:
    return sum(1 for d in diagnostics if d.severity == "error")


def summarize(diagnostics: list[Diagnostic], *, scope: str,
              generation: int | None = None) -> dict:
    """The compact summary stored as ``engine.last_check`` and surfaced
    through the unified ``stats()`` snapshot and server ``status``."""
    codes: dict[str, int] = {}
    for diagnostic in diagnostics:
        codes[diagnostic.code] = codes.get(diagnostic.code, 0) + 1
    summary = {
        "scope": scope,
        "findings": len(diagnostics),
        "errors": error_count(diagnostics),
        "warnings": sum(1 for d in diagnostics if d.severity == "warning"),
        "codes": codes,
    }
    if generation is not None:
        summary["generation"] = generation
    return summary


def record_findings(engine, diagnostics: list[Diagnostic], *,
                    scope: str) -> dict:
    """Record a completed check on ``engine``: bump
    ``repro_check_findings_total{code=...}`` for every finding (and
    touch the family so the series exists even for clean runs), and
    store the summary as ``engine.last_check`` for the stats snapshot.
    Returns the summary."""
    counter = engine.metrics.counter(
        "repro_check_findings_total",
        "Static-analysis findings recorded, by diagnostic code.",
        ("code",),
    )
    for diagnostic in diagnostics:
        counter.inc(code=diagnostic.code)
    summary = summarize(
        diagnostics, scope=scope, generation=engine.catalog_generation
    )
    engine.last_check = summary
    return summary
