"""Project lint (RPC3xx): AST-enforced codebase invariants.

Three rules, each guarding an invariant the test suite cannot see:

- **RPC301** — SQL must be assembled by the quoting helpers.  An
  f-string whose literal prefix *starts with* a SQL statement keyword
  and interpolates values is flagged outside the designated SQL-builder
  packages.  Error messages that merely *mention* SQL keywords
  mid-sentence are not flagged.
- **RPC302** — the catalog generation may only move under the RWLock
  write side: an assignment to ``…catalog_generation`` must be lexically
  inside a ``with …write_locked()`` block.
- **RPC303** — metric series exist only inside the fixed-series
  registry: outside ``repro/obs/metrics.py`` nothing may touch a
  ``._series`` mapping or instantiate a metric family class directly.

A finding is suppressed by ``# repro-lint: allow(CODE)`` on the same
line or the line above — every suppression is a reviewed, documented
exception.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

from repro.check.diagnostics import Diagnostic

#: Packages allowed to build SQL text with f-strings — each owns a
#: dialect's serialization discipline the rest of the codebase must
#: delegate to: ``backend``/``sqlgen`` quote through emit/naming,
#: ``bidel`` is the BiDEL unparse serializer (a dialect with no quoting
#: at all), ``persist`` interpolates only its fixed ``_repro_catalog_*``
#: object names.
SQL_BUILDER_PACKAGES = ("backend", "sqlgen", "bidel", "persist")

#: Packages that simulate *user applications* (benchmark, workload, and
#: soak drivers).  Their SQL is this repo's test traffic against the
#: public statement API — and, for ``soak``, preflight-gated BiDEL
#: scripts — not engine-emitted SQL, so the emit-helper rule does not
#: apply.
SQL_CLIENT_PACKAGES = ("workloads", "bench", "soak")

_SQL_HEAD = re.compile(
    r"^\s*(SELECT|INSERT|UPDATE|DELETE|CREATE|DROP|ALTER|SAVEPOINT|"
    r"RELEASE|ROLLBACK|PRAGMA|ATTACH|DETACH|VACUUM|REINDEX)\b"
)

_SUPPRESS = re.compile(r"#\s*repro-lint:\s*allow\(([A-Z0-9, ]+)\)")

_METRIC_CLASSES = frozenset({
    "Counter", "Gauge", "Histogram", "MetricFamily",
    "_Counter", "_Gauge", "_Histogram",
})


def _suppressions(lines: list[str]) -> dict[int, set[str]]:
    """Line number (1-based) -> codes suppressed at that line."""
    allowed: dict[int, set[str]] = {}
    for number, line in enumerate(lines, start=1):
        match = _SUPPRESS.search(line)
        if match:
            codes = {c.strip() for c in match.group(1).split(",") if c.strip()}
            allowed.setdefault(number, set()).update(codes)
            allowed.setdefault(number + 1, set()).update(codes)
    return allowed


class _FileLinter(ast.NodeVisitor):
    def __init__(self, path: Path, relpath: str, tree: ast.AST,
                 lines: list[str]):
        self.relpath = relpath
        exempt = (*SQL_BUILDER_PACKAGES, *SQL_CLIENT_PACKAGES)
        self.is_sql_builder = any(
            part in exempt for part in Path(relpath).parts
        )
        self.is_metrics_module = relpath.endswith("obs/metrics.py")
        self.allowed = _suppressions(lines)
        self.findings: list[Diagnostic] = []
        # Line ranges of `with ...write_locked()...:` bodies — the only
        # places an RPC302-guarded mutation is legal.
        self.write_locked_ranges: list[tuple[int, int]] = []
        for node in ast.walk(tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    expr = ast.unparse(item.context_expr)
                    if "write_locked" in expr:
                        self.write_locked_ranges.append(
                            (node.lineno, node.end_lineno or node.lineno)
                        )
                        break
        self._tree = tree

    def run(self) -> list[Diagnostic]:
        self.visit(self._tree)
        return self.findings

    def _report(self, code: str, line: int, message: str) -> None:
        if code in self.allowed.get(line, ()):
            return
        self.findings.append(
            Diagnostic(code, "error", f"{self.relpath}:{line}", message)
        )

    # -- RPC301 ---------------------------------------------------------

    def visit_JoinedStr(self, node: ast.JoinedStr) -> None:
        if not self.is_sql_builder:
            has_interpolation = any(
                isinstance(value, ast.FormattedValue) for value in node.values
            )
            prefix = ""
            if node.values and isinstance(node.values[0], ast.Constant):
                prefix = str(node.values[0].value)
            if has_interpolation and _SQL_HEAD.match(prefix):
                self._report(
                    "RPC301", node.lineno,
                    "SQL assembled with an f-string outside the "
                    "quoting-helper packages; route identifiers through "
                    "repro.backend.emit / repro.util.naming instead",
                )
        self.generic_visit(node)

    # -- RPC302 ---------------------------------------------------------

    def _check_generation_target(self, target: ast.expr, line: int) -> None:
        if (isinstance(target, ast.Attribute)
                and target.attr == "catalog_generation"):
            inside = any(
                start <= line <= end
                for start, end in self.write_locked_ranges
            )
            if not inside:
                self._report(
                    "RPC302", line,
                    "catalog_generation mutated outside a "
                    "`with ...write_locked()` block",
                )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_generation_target(target, node.lineno)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_generation_target(node.target, node.lineno)
        self.generic_visit(node)

    # -- RPC303 ---------------------------------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if not self.is_metrics_module and node.attr == "_series":
            self._report(
                "RPC303", node.lineno,
                "metric series storage accessed outside the registry; "
                "use the counter()/gauge()/histogram() families",
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if not self.is_metrics_module:
            func = node.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else ""
            )
            if name in _METRIC_CLASSES:
                self._report(
                    "RPC303", node.lineno,
                    f"metric family {name!r} instantiated directly; "
                    "register series via MetricsRegistry instead",
                )
        self.generic_visit(node)


def default_root() -> Path:
    """The ``src/repro`` package this module was imported from."""
    return Path(__file__).resolve().parent.parent


def run_project_lint(root: str | Path | None = None) -> list[Diagnostic]:
    """Lint every Python file under ``root`` (default: the installed
    ``repro`` package) and return the findings."""
    base = Path(root) if root is not None else default_root()
    findings: list[Diagnostic] = []
    for path in sorted(base.rglob("*.py")):
        text = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(text, filename=str(path))
        except SyntaxError as exc:
            findings.append(Diagnostic(
                "RPC301", "error", f"{path.name}:{exc.lineno or 0}",
                f"file does not parse: {exc.msg}",
            ))
            continue
        relpath = str(path.relative_to(base.parent))
        linter = _FileLinter(path, relpath, tree, text.splitlines())
        findings.extend(linter.run())
    return findings
