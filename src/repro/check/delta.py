"""Static verification of the generated delta code (RPC101–RPC106).

The backend compiles the catalog into ``CREATE VIEW`` and ``CREATE
TRIGGER`` statements (:mod:`repro.backend.codegen`).  This pass checks
the *text* of that program against the catalog — without executing any
of it:

- **RPC101** every referenced table resolves against the physical
  layout, the scaffolding DDL, or another generated view;
- **RPC102** every qualified column reference (``alias.col``,
  ``NEW.col``, ``OLD.col``) resolves against some candidate relation;
- **RPC103** the view dependency graph is acyclic;
- **RPC104** every active table version has INSTEAD OF triggers for all
  three DML operations;
- **RPC105** identifiers that need quoting are never emitted bare;
- **RPC106** the flattened emission never reads a physical base table
  the nested composition does not.  (The converse is legal: flattening
  prunes joins whose columns a later SMO dropped, so the nested basis
  may be a strict superset — the differential suite covers content
  agreement.)

``view_statements`` / ``trigger_statements`` are injectable so the
seeded-defect suite can verify *mutated* delta code; RPC106 (which needs
both emissions) only runs on generator output.
"""

from __future__ import annotations

from graphlib import CycleError, TopologicalSorter

from repro.backend.emit import SEQUENCES_TABLE
from repro.check.diagnostics import Diagnostic, record_findings
from repro.check.sqlscan import (
    STRUCTURAL_KEYWORDS,
    SUBQUERY,
    StatementScan,
    scan_statement,
    unquoted_occurrence,
)
from repro.util.naming import quote_identifier

_DML_OPS = ("INSERT", "UPDATE", "DELETE")


def _physical_objects(engine) -> dict[str, set[str]]:
    """Every physical relation the generated code may read or write:
    the engine's table layout (data + aux tables), the scaffolding DDL's
    put/staging tables and sequence table."""
    from repro.backend import codegen

    objects: dict[str, set[str]] = {}
    for name, table in engine.database.tables.items():
        objects[name] = {"p", *table.schema.column_names}
    for statement in codegen.scaffold_statements(engine):
        scan = scan_statement(statement)
        if scan.kind == "table" and scan.name:
            objects.setdefault(scan.name, set()).update(scan.columns_defined)
    objects.setdefault(SEQUENCES_TABLE, {"name", "value"})
    return objects


def _catalog_view_columns(engine) -> dict[str, set[str]]:
    from repro.backend import codegen

    return {
        tv.view_name: {"p", *tv.schema.column_names}
        for tv in codegen.active_table_versions(engine)
    }


def _resolve_references(
    scans: list[StatementScan],
    objects: dict[str, set[str]],
    view_columns: dict[str, set[str] | None],
) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []

    def columns_of(name: str) -> set[str] | None:
        if name in objects:
            return objects[name]
        return view_columns.get(name)

    known = set(objects) | set(view_columns)
    for scan in scans:
        where = scan.name or "<statement>"
        for ref in scan.table_refs:
            if ref not in known:
                diagnostics.append(Diagnostic(
                    "RPC101", "error", where,
                    f"references {ref!r}, which is neither a physical "
                    "table nor a generated view",
                ))
        for qualifier, column in scan.column_refs:
            if qualifier.upper() in ("NEW", "OLD"):
                row_columns = view_columns.get(scan.on_view or "")
                if row_columns is not None and column not in row_columns:
                    diagnostics.append(Diagnostic(
                        "RPC102", "error", where,
                        f"{qualifier}.{column} does not exist: view "
                        f"{scan.on_view!r} has no column {column!r}",
                    ))
                continue
            candidates = scan.aliases.get(qualifier)
            if candidates is not None:
                if SUBQUERY in candidates:
                    continue  # derived table: columns are opaque
                column_sets = [columns_of(c) for c in candidates]
                if any(cols is None for cols in column_sets):
                    continue  # some candidate is opaque — don't guess
                if not any(column in cols for cols in column_sets):
                    diagnostics.append(Diagnostic(
                        "RPC102", "error", where,
                        f"{qualifier}.{column} does not resolve: no table "
                        f"bound to alias {qualifier!r} "
                        f"({', '.join(sorted(candidates))}) has a column "
                        f"{column!r}",
                    ))
            elif qualifier in known:
                cols = columns_of(qualifier)
                if cols is not None and column not in cols:
                    diagnostics.append(Diagnostic(
                        "RPC102", "error", where,
                        f"{qualifier}.{column} does not resolve: "
                        f"{qualifier!r} has no column {column!r}",
                    ))
            else:
                diagnostics.append(Diagnostic(
                    "RPC102", "error", where,
                    f"{qualifier}.{column} uses unknown reference "
                    f"qualifier {qualifier!r} (not an alias, row "
                    "variable, or relation in scope)",
                ))
    return diagnostics


def _check_cycles(view_scans: list[StatementScan]) -> list[Diagnostic]:
    defined = {scan.name for scan in view_scans if scan.name}
    graph = {
        scan.name: {ref for ref in scan.table_refs if ref in defined}
        for scan in view_scans
        if scan.name
    }
    try:
        TopologicalSorter(graph).prepare()
    except CycleError as exc:
        cycle = exc.args[1] if len(exc.args) > 1 else []
        return [Diagnostic(
            "RPC103", "error", str(cycle[0]) if cycle else "<views>",
            "view dependency cycle: " + " -> ".join(map(str, cycle)),
        )]
    return []


def _check_trigger_completeness(
    engine, trigger_scans: list[StatementScan]
) -> list[Diagnostic]:
    from repro.backend import codegen

    defined = {scan.name for scan in trigger_scans if scan.name}
    diagnostics: list[Diagnostic] = []
    for tv in codegen.active_table_versions(engine):
        for op in _DML_OPS:
            expected = tv.trigger_name(op)
            if expected not in defined:
                diagnostics.append(Diagnostic(
                    "RPC104", "error", tv.view_name,
                    f"missing INSTEAD OF {op} trigger "
                    f"({expected!r}) — {op} on this version would hit "
                    "the view directly and fail",
                ))
    return diagnostics


def _quotable_catalog_names(engine) -> set[str]:
    """Catalog identifiers the emitters must always quote: anything
    :func:`quote_identifier` would wrap.  Names equal to a structural
    keyword of the generated dialect are skipped — a bare occurrence is
    indistinguishable from SQL structure."""
    from repro.backend import codegen

    names: set[str] = set()
    for tv in codegen.active_table_versions(engine):
        names.update(tv.schema.column_names)
        names.add(tv.view_name)
        names.add(tv.data_table_name)
    return {
        name for name in names
        if quote_identifier(name) != name
        and name.upper() not in STRUCTURAL_KEYWORDS
    }


def _check_quoting(
    statements: list[str],
    scans: list[StatementScan],
    quotable: set[str],
) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    for statement, scan in zip(statements, scans):
        for name in sorted(quotable):
            if unquoted_occurrence(statement, name):
                diagnostics.append(Diagnostic(
                    "RPC105", "warning", scan.name or "<statement>",
                    f"identifier {name!r} requires quoting but appears "
                    "bare in the generated SQL",
                ))
    return diagnostics


def _physical_basis(
    view_scans: list[StatementScan],
) -> dict[str, frozenset[str]]:
    """Per view, the set of non-view relations it transitively reads."""
    refs = {scan.name: set(scan.table_refs) for scan in view_scans if scan.name}
    memo: dict[str, frozenset[str]] = {}

    def leaves(name: str, trail: set[str]) -> frozenset[str]:
        if name in memo:
            return memo[name]
        if name in trail:
            return frozenset()  # cycle: RPC103 reports it
        trail = trail | {name}
        result: set[str] = set()
        for ref in refs.get(name, ()):
            if ref in refs:
                result |= leaves(ref, trail)
            else:
                result.add(ref)
        memo[name] = frozenset(result)
        return memo[name]

    return {name: leaves(name, set()) for name in refs}


def _check_emission_agreement(engine) -> list[Diagnostic]:
    from repro.backend import codegen

    flat = _physical_basis(
        [scan_statement(s) for s in codegen.view_statements(engine, flatten=True)]
    )
    nested = _physical_basis(
        [scan_statement(s) for s in codegen.view_statements(engine, flatten=False)]
    )
    diagnostics: list[Diagnostic] = []
    for name in sorted(set(flat) | set(nested)):
        flat_basis = flat.get(name, frozenset())
        nested_basis = nested.get(name, frozenset())
        # Flattening may legally read FEWER base tables than the nested
        # composition: a join contributing only columns a later SMO
        # dropped is dead in the inlined query but still referenced by
        # the intermediate views.  Reading a table the nested emission
        # never touches, though, means the two programs answer from
        # different data — that is the defect this check exists for.
        if not flat_basis <= nested_basis:
            diagnostics.append(Diagnostic(
                "RPC106", "error", name,
                "flattened emission reads physical base tables the nested "
                f"one does not: flat reads {sorted(flat_basis)}, nested "
                f"reads {sorted(nested_basis)}",
            ))
    return diagnostics


def verify_delta_code(
    engine,
    *,
    flatten: bool = True,
    view_statements: list[str] | None = None,
    trigger_statements: list[str] | None = None,
) -> list[Diagnostic]:
    """Statically verify the delta code for ``engine``'s current catalog.

    Generates the program from the catalog unless explicit statements
    are injected (the seeded-defect tests mutate known-good output and
    pass it back in).  Returns every finding; callers gate on
    error-severity ones."""
    from repro.backend import codegen

    injected = view_statements is not None or trigger_statements is not None
    if view_statements is None:
        view_statements = codegen.view_statements(engine, flatten=flatten)
    if trigger_statements is None:
        trigger_statements = codegen.trigger_statements(engine)

    view_scans = [scan_statement(s) for s in view_statements]
    trigger_scans = [scan_statement(s) for s in trigger_statements]

    objects = _physical_objects(engine)
    view_columns: dict[str, set[str] | None] = dict(
        _catalog_view_columns(engine)
    )
    for scan in view_scans:
        # A view the statements define but the catalog does not know has
        # opaque columns; it still counts as a resolvable name.
        if scan.name and scan.name not in view_columns:
            view_columns[scan.name] = None

    diagnostics = _resolve_references(
        view_scans + trigger_scans, objects, view_columns
    )
    diagnostics += _check_cycles(view_scans)
    diagnostics += _check_trigger_completeness(engine, trigger_scans)
    quotable = _quotable_catalog_names(engine)
    if quotable:
        diagnostics += _check_quoting(
            view_statements + trigger_statements,
            view_scans + trigger_scans,
            quotable,
        )
    if not injected:
        diagnostics += _check_emission_agreement(engine)
    return diagnostics


def verify_transitional_objects(connection, store) -> list[Diagnostic]:
    """RPC107: bound the transitional online-MATERIALIZE objects.

    During a journaled backfill the database legitimately carries
    ``_repro_bf…`` staging tables, ``_repro_bf__cap__…`` capture
    triggers, and the ``_repro_backfill_dirty`` table; the journal's plan
    names every one of them.  Anything transitional *outside* that set —
    or any transitional object present with no journal at all — is an
    orphan from a torn move and is reported as an error.  A journal that
    names a staging table the database does not hold is equally torn.
    """
    from repro.backend import online

    record = store.read_backfill() if store is not None else None
    expected: set[str] = set()
    plan = None
    if record is not None:
        plan = online.plan_from_payload(record.plan)
        expected = plan.transitional_names()

    diagnostics: list[Diagnostic] = []
    present: set[str] = set()
    for name, kind in connection.execute(
        "SELECT name, type FROM sqlite_master WHERE type IN ('table', 'trigger')"
    ):
        if not online.is_transitional(name):
            continue
        present.add(name)
        if record is None:
            diagnostics.append(Diagnostic(
                "RPC107", "error", name,
                f"transitional backfill {kind} exists but no backfill "
                "journal is in flight (orphan of a torn move)",
            ))
        elif name not in expected:
            diagnostics.append(Diagnostic(
                "RPC107", "error", name,
                f"transitional backfill {kind} is not named by the "
                "in-flight journal's plan",
            ))
    if plan is not None:
        for move in plan.trackable():
            if move.stage not in present:
                diagnostics.append(Diagnostic(
                    "RPC107", "error", move.stage,
                    "the in-flight journal names this staging table but "
                    "the database does not hold it",
                ))
        if online.DIRTY_TABLE not in present:
            diagnostics.append(Diagnostic(
                "RPC107", "error", online.DIRTY_TABLE,
                "a backfill journal is in flight but the change-capture "
                "table is missing",
            ))
    return diagnostics


def verify_and_record(engine, *, flatten: bool = True, scope: str) -> dict:
    """Run the verifier and record the outcome (metrics +
    ``engine.last_check``); returns the summary dict."""
    diagnostics = verify_delta_code(engine, flatten=flatten)
    summary = record_findings(engine, diagnostics, scope=scope)
    # engine.last_check stays compact; the caller-facing report carries
    # the individual findings too.
    return {**summary, "diagnostics": [d.as_dict() for d in diagnostics]}
