"""Static analysis for the reproduction: delta-code verification, BiDEL
pre-flight, and project lint.

Three passes, one diagnostic model (stable ``RPC…`` codes, severities,
locations — :mod:`repro.check.diagnostics`):

- :func:`verify_delta_code` statically checks the generated views and
  trigger programs against the catalog (RPC1xx);
- :func:`preflight_script` analyzes a BiDEL script before the engine
  runs it (RPC2xx) — also exposed as the ``CHECK <bidel>`` statement on
  both transports;
- :func:`run_project_lint` enforces codebase invariants (RPC3xx).

CLI: ``python -m repro.check --db path`` (see :mod:`repro.check.__main__`).
"""

from repro.check.delta import verify_and_record, verify_delta_code
from repro.check.diagnostics import (
    DIAGNOSTIC_CATALOG,
    SEVERITIES,
    Diagnostic,
    error_count,
    record_findings,
    summarize,
)
from repro.check.lint import run_project_lint
from repro.check.preflight import preflight_script

__all__ = [
    "DIAGNOSTIC_CATALOG",
    "SEVERITIES",
    "Diagnostic",
    "error_count",
    "preflight_script",
    "record_findings",
    "run_project_lint",
    "summarize",
    "verify_and_record",
    "verify_delta_code",
]
