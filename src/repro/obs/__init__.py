"""repro.obs — the observability subsystem.

Metrics registry (labeled counters/gauges/histograms with Prometheus
text exposition), statement tracing with a slow-query log, the unified
stats snapshot schema, the scrape endpoint, and the timing primitive.
See ``docs/observability.md`` for the metric catalog and tracing guide.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.snapshot import SNAPSHOT_SCHEMA, engine_snapshot
from repro.obs.timing import Stopwatch
from repro.obs.tracing import Span, SlowQuery, Trace, TraceBuilder, Tracer, new_id

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SNAPSHOT_SCHEMA",
    "SlowQuery",
    "Span",
    "Stopwatch",
    "Trace",
    "TraceBuilder",
    "Tracer",
    "engine_snapshot",
    "new_id",
    "MetricsHTTPServer",
]

from repro.obs.http import MetricsHTTPServer  # noqa: E402  (after core names)
