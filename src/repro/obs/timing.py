"""The timing primitive: a reusable, lap-recording stopwatch.

Moved here from ``repro.util.timing`` when observability became a
subsystem — ``repro.util.timing`` re-exports it for compatibility.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class Stopwatch:
    """Accumulating stopwatch with laps; usable as a context manager.

    ``reset()`` also discards a *pending* (unfinished) section, so a
    stopwatch abandoned mid-``start()`` can be reused cleanly.
    """

    elapsed: float = 0.0
    laps: list[float] = field(default_factory=list)
    _started_at: float | None = None

    def start(self) -> "Stopwatch":
        self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._started_at is None:
            raise RuntimeError("Stopwatch.stop() without a matching start()")
        lap = time.perf_counter() - self._started_at
        self._started_at = None
        self.elapsed += lap
        self.laps.append(lap)
        return lap

    def reset(self) -> None:
        self.elapsed = 0.0
        self.laps.clear()
        self._started_at = None

    @property
    def elapsed_ms(self) -> float:
        return self.elapsed * 1000.0

    @property
    def running(self) -> bool:
        return self._started_at is not None

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
