"""A process-level metrics registry: counters, gauges, histograms.

One :class:`MetricsRegistry` (owned by the engine, created in
``InVerDa.__init__``) collects every instrumented number in the system —
statement latencies, plan-cache events, pool lease waits, catalog-lock
write waits, transition durations, the catalog generation — as **labeled
series**: a metric family (name + type + label names) holds one series
per distinct label-value combination, exactly the Prometheus data model.

Design constraints, in order:

1. **Hot-path cheap.** A counter increment or histogram observation is
   one lock acquisition, one dict lookup, and one add.  A *disabled*
   registry (``enabled=False``) reduces every write to a single
   attribute check, which is what the fig16 smoke bench measures the
   instrumented hot path against.
2. **Stdlib only.** No prometheus_client dependency: the registry
   renders the text exposition format
   (``text/plain; version=0.0.4``) itself, and :meth:`snapshot`
   returns plain JSON-serializable dicts for the wire protocol.
3. **Idempotent registration.** ``registry.counter(name, ...)`` returns
   the existing family when already registered (components bind lazily
   and in any order); re-registering with a different type or label set
   is a programming error and raises.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

#: Default latency buckets (seconds): sub-millisecond through 10s, tuned
#: for statement/lock/lease timings on the reproduction's workloads.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _format_value(value: float) -> str:
    """Prometheus number formatting: integral values without the ``.0``."""
    value = float(value)
    if value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_label(value: object) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


class MetricFamily:
    """Base of the three family kinds: a name, label names, and one
    series per label-value tuple.  Thread-safe via a per-family lock."""

    kind = "untyped"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str,
                 labelnames: tuple[str, ...]):
        self._registry = registry
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._series: dict[tuple, object] = {}

    def _key(self, labels: dict) -> tuple:
        if len(labels) != len(self.labelnames) or any(
            name not in labels for name in self.labelnames
        ):
            raise ValueError(
                f"metric {self.name!r} takes labels {list(self.labelnames)}, "
                f"got {sorted(labels)}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def reset(self) -> None:
        """Drop every series (test/advisor-window helper; a scraped
        production registry should never be reset mid-flight)."""
        with self._lock:
            self._series.clear()

    # -- introspection ---------------------------------------------------

    def _series_snapshot(self) -> dict[tuple, object]:
        with self._lock:
            return dict(self._series)

    def snapshot(self) -> dict:
        series = []
        for key, value in sorted(self._series_snapshot().items()):
            series.append(
                {"labels": dict(zip(self.labelnames, key)),
                 **self._series_payload(value)}
            )
        return {"type": self.kind, "help": self.help,
                "labels": list(self.labelnames), "series": series}

    def _series_payload(self, value: object) -> dict:
        return {"value": value}

    def _label_text(self, key: tuple, extra: str = "") -> str:
        pairs = [
            f'{name}="{_escape_label(value)}"'
            for name, value in zip(self.labelnames, key)
        ]
        if extra:
            pairs.append(extra)
        return "{" + ",".join(pairs) + "}" if pairs else ""

    def render(self) -> list[str]:
        lines = [f"# HELP {self.name} {self.help}",
                 f"# TYPE {self.name} {self.kind}"]
        for key, value in sorted(self._series_snapshot().items()):
            lines.extend(self._render_series(key, value))
        return lines

    def _render_series(self, key: tuple, value: object) -> list[str]:
        return [f"{self.name}{self._label_text(key)} {_format_value(value)}"]


class Counter(MetricFamily):
    """A monotonically increasing sum per label combination."""

    kind = "counter"

    def inc(self, amount: float = 1, **labels) -> None:
        if not self._registry.enabled:
            return
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels) -> float:
        with self._lock:
            return self._series.get(self._key(labels), 0)

    def values(self) -> dict[tuple, float]:
        """Label tuple -> accumulated value (consumed by the workload
        recorder's per-version aggregation)."""
        return self._series_snapshot()  # type: ignore[return-value]


class Gauge(MetricFamily):
    """A point-in-time value per label combination."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        if not self._registry.enabled:
            return
        key = self._key(labels)
        with self._lock:
            self._series[key] = value

    def inc(self, amount: float = 1, **labels) -> None:
        if not self._registry.enabled:
            return
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + amount

    def dec(self, amount: float = 1, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        with self._lock:
            return self._series.get(self._key(labels), 0)


class _HistogramSeries:
    __slots__ = ("counts", "sum", "count")

    def __init__(self, n_buckets: int):
        self.counts = [0] * n_buckets  # per-bucket (non-cumulative)
        self.sum = 0.0
        self.count = 0


class Histogram(MetricFamily):
    """A bucketed distribution (fixed upper bounds) per label combination."""

    kind = "histogram"

    def __init__(self, registry, name, help, labelnames,
                 buckets: tuple[float, ...] = DEFAULT_BUCKETS):
        super().__init__(registry, name, help, labelnames)
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError(f"histogram {self.name!r} needs at least one bucket")

    def observe(self, value: float, **labels) -> None:
        if not self._registry.enabled:
            return
        key = self._key(labels)
        index = bisect_left(self.buckets, value)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(len(self.buckets) + 1)
            series.counts[index] += 1
            series.sum += value
            series.count += 1

    def series_stats(self, **labels) -> dict:
        """``{"count", "sum"}`` for one label combination (zeros when the
        series was never observed)."""
        with self._lock:
            series = self._series.get(self._key(labels))
            if series is None:
                return {"count": 0, "sum": 0.0}
            return {"count": series.count, "sum": series.sum}

    def _series_payload(self, value: object) -> dict:
        assert isinstance(value, _HistogramSeries)
        cumulative, buckets = 0, []
        for bound, count in zip(self.buckets, value.counts):
            cumulative += count
            buckets.append([bound, cumulative])
        buckets.append(["+Inf", value.count])
        return {"count": value.count, "sum": value.sum, "buckets": buckets}

    def _render_series(self, key: tuple, value: object) -> list[str]:
        assert isinstance(value, _HistogramSeries)
        lines, cumulative = [], 0
        for bound, count in zip(self.buckets, value.counts):
            cumulative += count
            extra = f'le="{_format_value(bound)}"'
            lines.append(
                f"{self.name}_bucket{self._label_text(key, extra)} {cumulative}"
            )
        inf_label = 'le="+Inf"'
        lines.append(
            f"{self.name}_bucket{self._label_text(key, inf_label)} {value.count}"
        )
        lines.append(f"{self.name}_sum{self._label_text(key)} {_format_value(value.sum)}")
        lines.append(f"{self.name}_count{self._label_text(key)} {value.count}")
        return lines


class MetricsRegistry:
    """The one place every instrumented number lands.

    ``enabled=False`` turns every write into a no-op attribute check —
    the uninstrumented baseline the overhead bench compares against.
    """

    def __init__(self, *, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._families: dict[str, MetricFamily] = {}

    # -- registration (get-or-create) -----------------------------------

    def _register(self, cls, name: str, help: str,
                  labelnames: tuple[str, ...], **kwargs) -> MetricFamily:
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if type(family) is not cls or family.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} is already registered as a "
                        f"{family.kind} with labels {list(family.labelnames)}"
                    )
                return family
            family = cls(self, name, help, tuple(labelnames), **kwargs)
            self._families[name] = family
            return family

    def counter(self, name: str, help: str = "",
                labelnames: tuple[str, ...] = ()) -> Counter:
        return self._register(Counter, name, help, labelnames)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "",
              labelnames: tuple[str, ...] = ()) -> Gauge:
        return self._register(Gauge, name, help, labelnames)  # type: ignore[return-value]

    def histogram(self, name: str, help: str = "",
                  labelnames: tuple[str, ...] = (),
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
        return self._register(Histogram, name, help, labelnames, buckets=buckets)  # type: ignore[return-value]

    def get(self, name: str) -> MetricFamily | None:
        with self._lock:
            return self._families.get(name)

    # -- exposition ------------------------------------------------------

    def snapshot(self) -> dict:
        """Every family's series as plain JSON-serializable dicts (the
        ``metrics`` key of the unified stats snapshot)."""
        with self._lock:
            families = list(self._families.items())
        return {name: family.snapshot() for name, family in sorted(families)}

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4), served
        by ``GET /metrics`` and the server's ``metrics`` op."""
        with self._lock:
            families = [f for _, f in sorted(self._families.items())]
        lines: list[str] = []
        for family in families:
            lines.extend(family.render())
        return "\n".join(lines) + ("\n" if lines else "")
