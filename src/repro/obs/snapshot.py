"""The unified stats snapshot.

Before the observability layer, four classes each grew their own
``stats()`` dict shape (connection, remote connection, session pool,
server status).  :func:`engine_snapshot` is now the single source: every
surface returns this schema (or a subset of it, for surfaces that can't
see the whole engine), with the pre-existing keys kept in place as
compatible aliases.

Schema (``schema`` key names the version of this very layout)::

    {
      "schema": "repro.obs/1",
      "backend": "memory" | "sqlite",
      "plan_cache": {...},              # PlanCache.stats()
      "catalog": {"generation": int, "fingerprint": str, ...},
      "workload": {"reads": {...}, "writes": {...}},
      "metrics": {...},                 # MetricsRegistry.snapshot()
      "tracing": {...},                 # Tracer.stats()
      "check": {...} | None,            # last static-analysis summary
      "pool": {...},                    # live backend only
    }
"""

from __future__ import annotations

SNAPSHOT_SCHEMA = "repro.obs/1"


def engine_snapshot(engine, *, backend=None, include_metrics: bool = True) -> dict:
    """The full observability snapshot for an engine (plus its live
    backend when attached)."""
    snapshot = {
        "schema": SNAPSHOT_SCHEMA,
        "backend": "sqlite" if backend is not None else "memory",
        "plan_cache": engine.plan_cache.stats(),
        "catalog": {
            "generation": engine.catalog_generation,
            "fingerprint": engine.catalog_fingerprint(),
        },
        "workload": {
            "reads": dict(engine.workload.reads),
            "writes": dict(engine.workload.writes),
        },
        "tracing": engine.tracer.stats(),
        "check": engine.last_check,
    }
    if include_metrics:
        snapshot["metrics"] = engine.metrics.snapshot()
    if backend is not None:
        snapshot["pool"] = backend.pool.stats()
        snapshot["catalog"].update(backend.catalog_stats())
    return snapshot
