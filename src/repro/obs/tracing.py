"""Statement tracing: spans, traces, slow-query ring buffer.

A :class:`Tracer` (one per engine; the remote driver holds its own for
the client side) records **traces** — a root span plus children — for
individual statements.  Tracing is *disabled by default*; when off, the
cursor's fast path does one attribute check and moves on.  Two things
can switch a statement into traced mode:

* the tracer is enabled (``connect(trace=True)``, ``--trace``), or
* the frame arrived with a trace context from a remote client — the
  server always continues a span the client started, so a traced remote
  statement yields one trace across both processes.

Independent of tracing, every tracer keeps a **slow-query log**: a ring
buffer of statements whose wall time exceeded ``slow_ms`` (per-tracer
default, overridable per connection).  ``slow_ms=None`` disables it.

Trace/span ids are 16-hex-char strings (:func:`new_id`), matching the
W3C trace-context span-id width; they travel the wire as plain JSON.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field


def new_id() -> str:
    """A random 64-bit id in hex — unique enough for trace correlation."""
    return os.urandom(8).hex()


@dataclass
class Span:
    """One timed operation inside a trace."""

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None
    start: float
    duration: float = 0.0
    attributes: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration_ms": self.duration * 1000.0,
            "attributes": dict(self.attributes),
        }


@dataclass
class Trace:
    """A finished trace: the root span first, children after."""

    trace_id: str
    spans: list[Span]

    @property
    def root(self) -> Span:
        return self.spans[0]

    def to_dict(self) -> dict:
        return {"trace_id": self.trace_id,
                "spans": [span.to_dict() for span in self.spans]}


class TraceBuilder:
    """Accumulates the spans of one statement; hand out via
    :meth:`Tracer.begin`, close with :meth:`finish`."""

    def __init__(self, tracer: "Tracer", name: str,
                 trace_id: str | None = None,
                 parent_id: str | None = None):
        self._tracer = tracer
        self.trace_id = trace_id or new_id()
        self.root = Span(
            name=name,
            trace_id=self.trace_id,
            span_id=new_id(),
            parent_id=parent_id,
            start=time.perf_counter(),
        )
        self.spans: list[Span] = [self.root]

    @contextmanager
    def span(self, name: str, **attributes):
        """Time a child span of the root around the ``with`` body."""
        child = Span(
            name=name,
            trace_id=self.trace_id,
            span_id=new_id(),
            parent_id=self.root.span_id,
            start=time.perf_counter(),
            attributes=attributes,
        )
        try:
            yield child
        finally:
            child.duration = time.perf_counter() - child.start
            self.spans.append(child)

    def add_span(self, name: str, duration: float, *,
                 parent_id: str | None = None, start: float | None = None,
                 **attributes) -> Span:
        """Attach an externally-timed span (e.g. network time computed
        from a reply envelope, or a server-side span joined in)."""
        child = Span(
            name=name,
            trace_id=self.trace_id,
            span_id=new_id(),
            parent_id=parent_id or self.root.span_id,
            start=self.root.start if start is None else start,
            duration=duration,
            attributes=attributes,
        )
        self.spans.append(child)
        return child

    def finish(self, **attributes) -> Trace:
        """Close the root span, record the trace with the tracer."""
        self.root.duration = time.perf_counter() - self.root.start
        self.root.attributes.update(attributes)
        trace = Trace(self.trace_id, self.spans)
        self._tracer._record(trace)
        return trace


@dataclass
class SlowQuery:
    """One slow-query log entry."""

    sql: str
    version: str
    duration_ms: float
    threshold_ms: float
    trace_id: str | None = None

    def to_dict(self) -> dict:
        return {"sql": self.sql, "version": self.version,
                "duration_ms": self.duration_ms,
                "threshold_ms": self.threshold_ms,
                "trace_id": self.trace_id}


class Tracer:
    """Per-engine (or per-remote-driver) trace recorder + slow-query log."""

    def __init__(self, *, enabled: bool = False, slow_ms: float | None = None,
                 max_traces: int = 256, max_slow: int = 128):
        self.enabled = enabled
        self.slow_ms = slow_ms
        self._lock = threading.Lock()
        self._traces: deque[Trace] = deque(maxlen=max_traces)
        self._slow: deque[SlowQuery] = deque(maxlen=max_slow)
        self._trace_count = 0
        self._slow_count = 0

    def begin(self, name: str, *, trace_id: str | None = None,
              parent_id: str | None = None) -> TraceBuilder:
        return TraceBuilder(self, name, trace_id=trace_id, parent_id=parent_id)

    def _record(self, trace: Trace) -> None:
        with self._lock:
            self._traces.append(trace)
            self._trace_count += 1

    def note_statement(self, sql: str, version: str, duration: float, *,
                       threshold_ms: float | None = None,
                       trace_id: str | None = None) -> SlowQuery | None:
        """Log the statement if it crossed the slow threshold.

        ``threshold_ms`` overrides the tracer default (a per-connection
        ``slow_ms`` knob); ``None`` falls back to ``self.slow_ms``, and
        when both are unset nothing is ever logged.
        """
        limit = self.slow_ms if threshold_ms is None else threshold_ms
        if limit is None:
            return None
        duration_ms = duration * 1000.0
        if duration_ms < limit:
            return None
        entry = SlowQuery(sql=sql, version=version, duration_ms=duration_ms,
                          threshold_ms=limit, trace_id=trace_id)
        with self._lock:
            self._slow.append(entry)
            self._slow_count += 1
        return entry

    # -- introspection ---------------------------------------------------

    def recent_traces(self, limit: int | None = None) -> list[Trace]:
        with self._lock:
            traces = list(self._traces)
        return traces if limit is None else traces[-limit:]

    def slow_queries(self, limit: int | None = None) -> list[SlowQuery]:
        with self._lock:
            entries = list(self._slow)
        return entries if limit is None else entries[-limit:]

    def stats(self) -> dict:
        with self._lock:
            return {
                "enabled": self.enabled,
                "slow_ms": self.slow_ms,
                "traces_recorded": self._trace_count,
                "traces_buffered": len(self._traces),
                "slow_queries_recorded": self._slow_count,
                "slow_queries_buffered": len(self._slow),
            }

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()
            self._slow.clear()
