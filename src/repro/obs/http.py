"""A tiny scrape endpoint: ``GET /metrics`` in Prometheus text format.

Stdlib-only (``http.server``), started by ``python -m repro.server
--metrics-port N`` on a daemon thread next to the TCP server.  Serves:

* ``GET /metrics`` — the registry in text exposition format 0.0.4
* ``GET /``        — a one-line index pointing at ``/metrics``
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _MetricsHandler(BaseHTTPRequestHandler):
    def do_GET(self):  # noqa: N802 - http.server API
        if self.path.split("?", 1)[0] == "/metrics":
            body = self.server.registry.render_prometheus().encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", CONTENT_TYPE)
        elif self.path == "/":
            body = b"repro metrics endpoint; scrape /metrics\n"
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; charset=utf-8")
        else:
            body = b"not found\n"
            self.send_response(404)
            self.send_header("Content-Type", "text/plain; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format, *args):  # noqa: A002 - http.server API
        pass  # scrapes every few seconds would otherwise spam stderr


class MetricsHTTPServer:
    """Threaded HTTP server exposing one registry; ``port=0`` picks an
    ephemeral port (read it back from :attr:`address`)."""

    def __init__(self, registry, host: str = "127.0.0.1", port: int = 0):
        self._httpd = ThreadingHTTPServer((host, port), _MetricsHandler)
        self._httpd.daemon_threads = True
        self._httpd.registry = registry
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    def start(self) -> "MetricsHTTPServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-metrics-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
