"""Tokenizer shared by the expression parser and the BiDEL parser."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParseError

# Token kinds
IDENT = "IDENT"
NUMBER = "NUMBER"
STRING = "STRING"
OP = "OP"
LPAREN = "LPAREN"
RPAREN = "RPAREN"
COMMA = "COMMA"
SEMICOLON = "SEMICOLON"
DOT = "DOT"
PARAM = "PARAM"  # a '?' placeholder (qmark-style parameter binding)
EOF = "EOF"

_TWO_CHAR_OPS = ("<=", ">=", "!=", "<>", "||")
_ONE_CHAR_OPS = "+-*/%<>="


@dataclass(frozen=True)
class Token:
    kind: str
    value: str
    line: int
    column: int

    def matches_keyword(self, word: str) -> bool:
        return self.kind == IDENT and self.value.upper() == word.upper()


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text`` into a list ending with an ``EOF`` token.

    Identifiers may end in ``!`` (schema version names like ``Do!``).
    Comments run from ``--`` to end of line.
    """
    tokens: list[Token] = []
    line = 1
    column = 1
    i = 0
    length = len(text)

    def advance(n: int) -> None:
        nonlocal i, line, column
        for _ in range(n):
            if i < length and text[i] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            i += 1

    while i < length:
        ch = text[i]
        if ch.isspace():
            advance(1)
            continue
        if text[i : i + 2] == "--":
            while i < length and text[i] != "\n":
                advance(1)
            continue
        start_line, start_column = line, column
        if ch == "'":
            advance(1)
            chars: list[str] = []
            closed = False
            while i < length:
                if text[i] == "'":
                    if text[i + 1 : i + 2] == "'":
                        chars.append("'")
                        advance(2)
                        continue
                    advance(1)
                    closed = True
                    break
                chars.append(text[i])
                advance(1)
            if not closed:
                raise ParseError("unterminated string literal", start_line, start_column)
            tokens.append(Token(STRING, "".join(chars), start_line, start_column))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < length and text[i + 1].isdigit()):
            j = i
            saw_dot = False
            while j < length and (text[j].isdigit() or (text[j] == "." and not saw_dot)):
                if text[j] == ".":
                    # A dot not followed by a digit is a separator, not a decimal point.
                    if j + 1 >= length or not text[j + 1].isdigit():
                        break
                    saw_dot = True
                j += 1
            value = text[i:j]
            advance(j - i)
            tokens.append(Token(NUMBER, value, start_line, start_column))
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < length and (text[j].isalnum() or text[j] == "_"):
                j += 1
            if j < length and text[j] == "!":
                j += 1
            value = text[i:j]
            advance(j - i)
            tokens.append(Token(IDENT, value, start_line, start_column))
            continue
        two = text[i : i + 2]
        if two in _TWO_CHAR_OPS:
            advance(2)
            normalized = "!=" if two == "<>" else two
            tokens.append(Token(OP, normalized, start_line, start_column))
            continue
        if ch in _ONE_CHAR_OPS:
            advance(1)
            tokens.append(Token(OP, ch, start_line, start_column))
            continue
        if ch == "(":
            advance(1)
            tokens.append(Token(LPAREN, ch, start_line, start_column))
            continue
        if ch == ")":
            advance(1)
            tokens.append(Token(RPAREN, ch, start_line, start_column))
            continue
        if ch == ",":
            advance(1)
            tokens.append(Token(COMMA, ch, start_line, start_column))
            continue
        if ch == ";":
            advance(1)
            tokens.append(Token(SEMICOLON, ch, start_line, start_column))
            continue
        if ch == ".":
            advance(1)
            tokens.append(Token(DOT, ch, start_line, start_column))
            continue
        if ch == "?":
            advance(1)
            tokens.append(Token(PARAM, ch, start_line, start_column))
            continue
        raise ParseError(f"unexpected character {ch!r}", start_line, start_column)

    tokens.append(Token(EOF, "", line, column))
    return tokens
