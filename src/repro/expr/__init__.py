"""SQL-flavoured scalar/boolean expression language.

BiDEL embeds expressions in three places: the partitioning conditions of
``SPLIT``/``MERGE``/``DECOMPOSE ON``/``JOIN ON``, the value functions of
``ADD COLUMN``/``DROP COLUMN``, and user predicates passed to the data-access
API. This package provides one shared implementation with SQL ``NULL``
(three-valued) semantics, rendering to SQL text, and structural helpers
(column collection, renaming, negation).
"""

from repro.expr.ast import (
    Binary,
    BoolOp,
    Column,
    Comparison,
    Expression,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    Unary,
    conjunction,
    is_true,
    negate,
)
from repro.expr.lexer import Token, tokenize
from repro.expr.parser import parse_expression

__all__ = [
    "Expression",
    "Literal",
    "Column",
    "Unary",
    "Binary",
    "Comparison",
    "BoolOp",
    "IsNull",
    "InList",
    "Like",
    "FuncCall",
    "parse_expression",
    "tokenize",
    "Token",
    "negate",
    "conjunction",
    "is_true",
]
