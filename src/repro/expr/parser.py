"""Recursive-descent parser for the expression language.

Grammar (classic SQL precedence, loosest binding first)::

    expr        := or_expr
    or_expr     := and_expr (OR and_expr)*
    and_expr    := not_expr (AND not_expr)*
    not_expr    := NOT not_expr | predicate
    predicate   := additive ( cmp additive
                            | IS [NOT] NULL
                            | [NOT] IN '(' expr (',' expr)* ')'
                            | [NOT] LIKE additive )?
    additive    := multiplicative (('+'|'-'|'||') multiplicative)*
    multiplicative := unary (('*'|'/'|'%') unary)*
    unary       := ('-'|'+') unary | primary
    primary     := NUMBER | STRING | TRUE | FALSE | NULL
                 | IDENT '(' [expr (',' expr)*] ')'   -- function call
                 | IDENT                              -- column reference
                 | '(' expr ')'
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.expr import lexer
from repro.expr.ast import (
    Binary,
    BoolOp,
    Column,
    Comparison,
    Expression,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    Unary,
)
from repro.expr.lexer import Token

_COMPARISON_OPS = {"=", "!=", "<", "<=", ">", ">="}
_RESERVED_WORDS = {"AND", "OR", "NOT", "NULL", "TRUE", "FALSE", "IS", "IN", "LIKE"}


class ExpressionParser:
    """Parses a token stream; usable standalone or embedded in BiDEL."""

    def __init__(self, tokens: list[Token], position: int = 0):
        self._tokens = tokens
        self._position = position

    @property
    def position(self) -> int:
        return self._position

    def _peek(self) -> Token:
        return self._tokens[self._position]

    def _next(self) -> Token:
        token = self._tokens[self._position]
        self._position += 1
        return token

    def _error(self, message: str) -> ParseError:
        token = self._peek()
        return ParseError(message, token.line, token.column)

    def _accept_keyword(self, word: str) -> bool:
        if self._peek().matches_keyword(word):
            self._next()
            return True
        return False

    def _expect(self, kind: str, what: str) -> Token:
        if self._peek().kind != kind:
            raise self._error(f"expected {what}, found {self._peek().value!r}")
        return self._next()

    def parse(self) -> Expression:
        return self._or_expr()

    def _or_expr(self) -> Expression:
        items = [self._and_expr()]
        while self._accept_keyword("OR"):
            items.append(self._and_expr())
        if len(items) == 1:
            return items[0]
        return BoolOp("OR", tuple(items))

    def _and_expr(self) -> Expression:
        items = [self._not_expr()]
        while self._accept_keyword("AND"):
            items.append(self._not_expr())
        if len(items) == 1:
            return items[0]
        return BoolOp("AND", tuple(items))

    def _not_expr(self) -> Expression:
        if self._accept_keyword("NOT"):
            return Unary("NOT", self._not_expr())
        return self._predicate()

    def _predicate(self) -> Expression:
        left = self._additive()
        token = self._peek()
        if token.kind == lexer.OP and token.value in _COMPARISON_OPS:
            self._next()
            right = self._additive()
            return Comparison(token.value, left, right)
        if token.matches_keyword("IS"):
            self._next()
            negated = self._accept_keyword("NOT")
            if not self._accept_keyword("NULL"):
                raise self._error("expected NULL after IS [NOT]")
            return IsNull(left, negated)
        negated = False
        if token.matches_keyword("NOT"):
            following = self._tokens[self._position + 1]
            if following.matches_keyword("IN") or following.matches_keyword("LIKE"):
                self._next()
                negated = True
                token = self._peek()
        if token.matches_keyword("IN"):
            self._next()
            self._expect(lexer.LPAREN, "'('")
            items = [self.parse()]
            while self._peek().kind == lexer.COMMA:
                self._next()
                items.append(self.parse())
            self._expect(lexer.RPAREN, "')'")
            return InList(left, tuple(items), negated)
        if token.matches_keyword("LIKE"):
            self._next()
            return Like(left, self._additive(), negated)
        return left

    def _additive(self) -> Expression:
        left = self._multiplicative()
        while True:
            token = self._peek()
            if token.kind == lexer.OP and token.value in ("+", "-", "||"):
                self._next()
                left = Binary(token.value, left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> Expression:
        left = self._unary()
        while True:
            token = self._peek()
            if token.kind == lexer.OP and token.value in ("*", "/", "%"):
                self._next()
                left = Binary(token.value, left, self._unary())
            else:
                return left

    def _unary(self) -> Expression:
        token = self._peek()
        if token.kind == lexer.OP and token.value in ("-", "+"):
            self._next()
            return Unary(token.value, self._unary())
        return self._primary()

    def _primary(self) -> Expression:
        token = self._peek()
        if token.kind == lexer.NUMBER:
            self._next()
            if "." in token.value:
                return Literal(float(token.value))
            return Literal(int(token.value))
        if token.kind == lexer.STRING:
            self._next()
            return Literal(token.value)
        if token.kind == lexer.LPAREN:
            self._next()
            inner = self.parse()
            self._expect(lexer.RPAREN, "')'")
            return inner
        if token.kind == lexer.IDENT:
            upper = token.value.upper()
            if upper == "NULL":
                self._next()
                return Literal(None)
            if upper == "TRUE":
                self._next()
                return Literal(True)
            if upper == "FALSE":
                self._next()
                return Literal(False)
            if upper in _RESERVED_WORDS:
                raise self._error(f"unexpected keyword {token.value!r}")
            self._next()
            if self._peek().kind == lexer.LPAREN:
                self._next()
                args: list[Expression] = []
                if self._peek().kind != lexer.RPAREN:
                    args.append(self.parse())
                    while self._peek().kind == lexer.COMMA:
                        self._next()
                        args.append(self.parse())
                self._expect(lexer.RPAREN, "')'")
                return FuncCall(token.value.lower(), tuple(args))
            return Column(token.value)
        raise self._error(f"unexpected token {token.value!r}")


def parse_expression(text: str) -> Expression:
    """Parse a standalone expression string; the whole input must be consumed."""
    tokens = lexer.tokenize(text)
    parser = ExpressionParser(tokens)
    expression = parser.parse()
    trailing = tokens[parser.position]
    if trailing.kind != lexer.EOF:
        raise ParseError(
            f"unexpected trailing input {trailing.value!r}", trailing.line, trailing.column
        )
    return expression
