"""Expression AST with SQL three-valued-logic evaluation and SQL rendering.

Values are plain Python objects: ``None`` plays SQL ``NULL``, plus ``bool``,
``int``, ``float``, and ``str``. Every node implements:

- ``evaluate(row)`` — evaluate against a mapping from column name to value,
  honouring SQL NULL propagation and Kleene logic for AND/OR/NOT;
- ``to_sql()`` — render as SQL text (SQLite-compatible dialect);
- ``columns()`` — the set of referenced column names;
- ``rename(mapping)`` — a structurally-new expression with columns renamed.
"""

from __future__ import annotations

import math
import re
from collections.abc import Mapping
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import ExpressionError

Value = Any  # None | bool | int | float | str


def is_true(value: Value) -> bool:
    """SQL WHERE semantics: only a genuine true counts (NULL is not true)."""
    return value is True


class Expression:
    """Abstract base class for all expression nodes."""

    def evaluate(self, row: Mapping[str, Value]) -> Value:
        raise NotImplementedError

    def to_sql(self) -> str:
        raise NotImplementedError

    def columns(self) -> frozenset[str]:
        raise NotImplementedError

    def rename(self, mapping: Mapping[str, str]) -> "Expression":
        raise NotImplementedError

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_sql()


@dataclass(frozen=True)
class Literal(Expression):
    value: Value

    def evaluate(self, row: Mapping[str, Value]) -> Value:
        return self.value

    def to_sql(self) -> str:
        if self.value is None:
            return "NULL"
        if self.value is True:
            return "TRUE"
        if self.value is False:
            return "FALSE"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return repr(self.value)

    def columns(self) -> frozenset[str]:
        return frozenset()

    def rename(self, mapping: Mapping[str, str]) -> Expression:
        return self


@dataclass(frozen=True)
class Column(Expression):
    name: str

    def evaluate(self, row: Mapping[str, Value]) -> Value:
        try:
            return row[self.name]
        except KeyError:
            raise ExpressionError(f"unknown column {self.name!r} in expression") from None

    def to_sql(self) -> str:
        return self.name

    def columns(self) -> frozenset[str]:
        return frozenset({self.name})

    def rename(self, mapping: Mapping[str, str]) -> Expression:
        return Column(mapping.get(self.name, self.name))


@dataclass(frozen=True)
class Unary(Expression):
    op: str  # '-', '+', 'NOT'
    operand: Expression

    def evaluate(self, row: Mapping[str, Value]) -> Value:
        value = self.operand.evaluate(row)
        if self.op == "NOT":
            if value is None:
                return None
            return not is_true(value)
        if value is None:
            return None
        if self.op == "-":
            return -value
        return +value

    def to_sql(self) -> str:
        if self.op == "NOT":
            return f"NOT ({self.operand.to_sql()})"
        return f"{self.op}({self.operand.to_sql()})"

    def columns(self) -> frozenset[str]:
        return self.operand.columns()

    def rename(self, mapping: Mapping[str, str]) -> Expression:
        return Unary(self.op, self.operand.rename(mapping))


_ARITH: dict[str, Callable[[Value, Value], Value]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
}


@dataclass(frozen=True)
class Binary(Expression):
    op: str  # '+', '-', '*', '/', '%', '||'
    left: Expression
    right: Expression

    def evaluate(self, row: Mapping[str, Value]) -> Value:
        left = self.left.evaluate(row)
        right = self.right.evaluate(row)
        if left is None or right is None:
            return None
        if self.op == "||":
            return _sql_text(left) + _sql_text(right)
        if self.op == "/":
            if right == 0:
                return None  # SQLite yields NULL on division by zero
            if isinstance(left, int) and isinstance(right, int):
                return _truncate_toward_zero(left / right)
            return left / right
        if self.op == "%":
            if right == 0:
                return None
            return _truncate_toward_zero(math.fmod(left, right))
        return _ARITH[self.op](left, right)

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} {self.op} {self.right.to_sql()})"

    def columns(self) -> frozenset[str]:
        return self.left.columns() | self.right.columns()

    def rename(self, mapping: Mapping[str, str]) -> Expression:
        return Binary(self.op, self.left.rename(mapping), self.right.rename(mapping))


def _truncate_toward_zero(value: float) -> int | float:
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return int(value) if not isinstance(value, float) else math.trunc(value)


def _sql_text(value: Value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    return value if isinstance(value, str) else str(value)


_COMPARATORS: dict[str, Callable[[Value, Value], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_NEGATED_COMPARATOR = {"=": "!=", "!=": "=", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}


@dataclass(frozen=True)
class Comparison(Expression):
    op: str
    left: Expression
    right: Expression

    def evaluate(self, row: Mapping[str, Value]) -> Value:
        left = self.left.evaluate(row)
        right = self.right.evaluate(row)
        if left is None or right is None:
            return None
        try:
            return _COMPARATORS[self.op](left, right)
        except TypeError as exc:
            raise ExpressionError(
                f"cannot compare {left!r} {self.op} {right!r}: {exc}"
            ) from None

    def to_sql(self) -> str:
        op = "<>" if self.op == "!=" else self.op
        return f"({self.left.to_sql()} {op} {self.right.to_sql()})"

    def columns(self) -> frozenset[str]:
        return self.left.columns() | self.right.columns()

    def rename(self, mapping: Mapping[str, str]) -> Expression:
        return Comparison(self.op, self.left.rename(mapping), self.right.rename(mapping))


@dataclass(frozen=True)
class BoolOp(Expression):
    op: str  # 'AND' | 'OR'
    items: tuple[Expression, ...]

    def evaluate(self, row: Mapping[str, Value]) -> Value:
        saw_null = False
        for item in self.items:
            value = item.evaluate(row)
            if value is None:
                saw_null = True
            elif self.op == "AND" and not is_true(value):
                return False
            elif self.op == "OR" and is_true(value):
                return True
        if saw_null:
            return None
        return self.op == "AND"

    def to_sql(self) -> str:
        joined = f" {self.op} ".join(item.to_sql() for item in self.items)
        return f"({joined})"

    def columns(self) -> frozenset[str]:
        result: frozenset[str] = frozenset()
        for item in self.items:
            result |= item.columns()
        return result

    def rename(self, mapping: Mapping[str, str]) -> Expression:
        return BoolOp(self.op, tuple(item.rename(mapping) for item in self.items))


@dataclass(frozen=True)
class IsNull(Expression):
    operand: Expression
    negated: bool = False

    def evaluate(self, row: Mapping[str, Value]) -> Value:
        value = self.operand.evaluate(row)
        return (value is not None) if self.negated else (value is None)

    def to_sql(self) -> str:
        suffix = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand.to_sql()} {suffix})"

    def columns(self) -> frozenset[str]:
        return self.operand.columns()

    def rename(self, mapping: Mapping[str, str]) -> Expression:
        return IsNull(self.operand.rename(mapping), self.negated)


@dataclass(frozen=True)
class InList(Expression):
    operand: Expression
    items: tuple[Expression, ...]
    negated: bool = False

    def evaluate(self, row: Mapping[str, Value]) -> Value:
        value = self.operand.evaluate(row)
        if value is None:
            return None
        saw_null = False
        for item in self.items:
            candidate = item.evaluate(row)
            if candidate is None:
                saw_null = True
            elif candidate == value:
                return not self.negated
        if saw_null:
            return None
        return self.negated

    def to_sql(self) -> str:
        values = ", ".join(item.to_sql() for item in self.items)
        keyword = "NOT IN" if self.negated else "IN"
        return f"({self.operand.to_sql()} {keyword} ({values}))"

    def columns(self) -> frozenset[str]:
        result = self.operand.columns()
        for item in self.items:
            result |= item.columns()
        return result

    def rename(self, mapping: Mapping[str, str]) -> Expression:
        return InList(
            self.operand.rename(mapping),
            tuple(item.rename(mapping) for item in self.items),
            self.negated,
        )


@dataclass(frozen=True)
class Like(Expression):
    operand: Expression
    pattern: Expression
    negated: bool = False

    def evaluate(self, row: Mapping[str, Value]) -> Value:
        value = self.operand.evaluate(row)
        pattern = self.pattern.evaluate(row)
        if value is None or pattern is None:
            return None
        regex = _like_to_regex(str(pattern))
        matched = regex.match(str(value)) is not None
        return (not matched) if self.negated else matched

    def to_sql(self) -> str:
        keyword = "NOT LIKE" if self.negated else "LIKE"
        return f"({self.operand.to_sql()} {keyword} {self.pattern.to_sql()})"

    def columns(self) -> frozenset[str]:
        return self.operand.columns() | self.pattern.columns()

    def rename(self, mapping: Mapping[str, str]) -> Expression:
        return Like(self.operand.rename(mapping), self.pattern.rename(mapping), self.negated)


def _like_to_regex(pattern: str) -> re.Pattern[str]:
    parts: list[str] = []
    for ch in pattern:
        if ch == "%":
            parts.append(".*")
        elif ch == "_":
            parts.append(".")
        else:
            parts.append(re.escape(ch))
    return re.compile("^" + "".join(parts) + "$", re.IGNORECASE | re.DOTALL)


def _func_concat(*args: Value) -> Value:
    if any(arg is None for arg in args):
        return None
    return "".join(_sql_text(arg) for arg in args)


def _func_coalesce(*args: Value) -> Value:
    for arg in args:
        if arg is not None:
            return arg
    return None


def _null_propagating(fn: Callable[..., Value]) -> Callable[..., Value]:
    def wrapped(*args: Value) -> Value:
        if any(arg is None for arg in args):
            return None
        return fn(*args)

    return wrapped


def _func_substr(text: str, start: int, length: int | None = None) -> str:
    # SQL substr is 1-based; negative start counts from the end like SQLite.
    text = _sql_text(text)
    if start > 0:
        begin = start - 1
    elif start < 0:
        begin = max(len(text) + start, 0)
    else:
        begin = 0
    if length is None:
        return text[begin:]
    return text[begin : begin + max(length, 0)]


SCALAR_FUNCTIONS: dict[str, Callable[..., Value]] = {
    "upper": _null_propagating(lambda s: _sql_text(s).upper()),
    "lower": _null_propagating(lambda s: _sql_text(s).lower()),
    "length": _null_propagating(lambda s: len(_sql_text(s))),
    "abs": _null_propagating(abs),
    "round": _null_propagating(lambda x, n=0: round(x, int(n))),
    "coalesce": _func_coalesce,
    "concat": _func_concat,
    "substr": _null_propagating(_func_substr),
    "least": _null_propagating(min),
    "greatest": _null_propagating(max),
    "mod": _null_propagating(lambda a, b: None if b == 0 else _truncate_toward_zero(math.fmod(a, b))),
}

# SQLite spellings for functions whose names differ from ours.
_SQLITE_FUNCTION_NAMES = {"least": "min", "greatest": "max"}


@dataclass(frozen=True)
class FuncCall(Expression):
    name: str  # stored lower-case
    args: tuple[Expression, ...]

    def evaluate(self, row: Mapping[str, Value]) -> Value:
        try:
            fn = SCALAR_FUNCTIONS[self.name]
        except KeyError:
            raise ExpressionError(f"unknown function {self.name!r}") from None
        return fn(*(arg.evaluate(row) for arg in self.args))

    def to_sql(self) -> str:
        if self.name == "concat":
            # SQLite has no CONCAT; render as a || chain.
            if not self.args:
                return "''"
            return "(" + " || ".join(arg.to_sql() for arg in self.args) + ")"
        sql_name = _SQLITE_FUNCTION_NAMES.get(self.name, self.name)
        rendered = ", ".join(arg.to_sql() for arg in self.args)
        return f"{sql_name}({rendered})"

    def columns(self) -> frozenset[str]:
        result: frozenset[str] = frozenset()
        for arg in self.args:
            result |= arg.columns()
        return result

    def rename(self, mapping: Mapping[str, str]) -> Expression:
        return FuncCall(self.name, tuple(arg.rename(mapping) for arg in self.args))


def negate(expression: Expression) -> Expression:
    """Structural negation with light simplification.

    Used to build ``NOT cR(A)`` literals when instantiating SMO rules; pushing
    the negation into comparisons keeps generated SQL readable.
    """
    if isinstance(expression, Unary) and expression.op == "NOT":
        return expression.operand
    if isinstance(expression, Comparison):
        return Comparison(_NEGATED_COMPARATOR[expression.op], expression.left, expression.right)
    if isinstance(expression, IsNull):
        return IsNull(expression.operand, not expression.negated)
    if isinstance(expression, Literal) and isinstance(expression.value, bool):
        return Literal(not expression.value)
    return Unary("NOT", expression)


def conjunction(expressions: list[Expression]) -> Expression:
    """AND together a list of expressions (TRUE when the list is empty)."""
    if not expressions:
        return Literal(True)
    if len(expressions) == 1:
        return expressions[0]
    return BoolOp("AND", tuple(expressions))
