"""Exception hierarchy shared by every repro subsystem.

All errors raised by the library derive from :class:`ReproError` so that
applications can catch library failures with a single ``except`` clause while
still being able to distinguish parse errors, catalog violations, and runtime
data-access problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ExpressionError(ReproError):
    """Problem while lexing, parsing, or evaluating a scalar expression."""


class ParseError(ReproError):
    """Syntactic problem in a BiDEL script or expression.

    Carries the 1-based ``line``/``column`` of the offending token when
    known, so callers can point users at the exact script location.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" (line {line}"
            location += f", column {column})" if column is not None else ")"
        super().__init__(message + location)
        self.line = line
        self.column = column


class SchemaError(ReproError):
    """Invalid schema definition or schema lookup failure."""


class DatalogError(ReproError):
    """Malformed Datalog rules or an evaluation-time violation."""


class CatalogError(ReproError):
    """Violation of schema-version-catalog invariants (unknown versions,
    dangling table versions, cyclic genealogies, ...)."""


class MaterializationError(CatalogError):
    """A requested materialization schema violates validity conditions (55)
    or (56) of the paper, or names unknown table versions."""


class CatalogCorruptError(CatalogError):
    """The catalog persisted inside a database does not match the database
    itself: fingerprint mismatches after log replay, or physical tables
    missing/drifted.  Recovery refuses to serve wrong answers; see
    ``repro.open(..., repair=True)`` / ``force=True`` for escape hatches."""


class EvolutionError(ReproError):
    """A BiDEL evolution cannot be applied to the given source version."""


class AccessError(ReproError):
    """Invalid data access through a schema version (unknown table/column,
    bad value types, write to a dropped version, ...)."""


class TransactionError(ReproError):
    """A write batch could not be applied atomically."""


class VerificationError(ReproError):
    """A bidirectionality check (symbolic or runtime) failed."""


class BackendError(ReproError):
    """Failure in an execution backend (e.g. the SQLite delta-code backend)."""


# -- DB-API (PEP 249) hierarchy for the SQL-facing connection layer ---------


class SqlError(ReproError):
    """Base class for the SQL access layer (PEP 249 ``Error``)."""


class InterfaceError(SqlError):
    """Misuse of the DB-API interface itself (e.g. operating on a closed
    connection or cursor) rather than of the database."""


class DatabaseError(SqlError):
    """Error related to the database (PEP 249 ``DatabaseError``)."""


class ProgrammingError(DatabaseError):
    """Bad SQL text, wrong parameter count, unknown table or column."""


class OperationalError(DatabaseError):
    """Errors during statement processing not caused by the statement text
    (e.g. a write rejected because the version accepts no writes)."""


class NotSupportedError(DatabaseError):
    """A requested SQL feature lies outside the supported dialect."""
