"""SQL-facing DB-API (PEP 249) access layer for co-existing schema versions.

>>> import repro
>>> db = repro.InVerDa()
>>> db.execute("CREATE SCHEMA VERSION TasKy WITH CREATE TABLE Task(author TEXT, task TEXT, prio INTEGER);")
>>> conn = repro.connect(db, version="TasKy")
>>> cur = conn.cursor()
>>> _ = cur.execute("INSERT INTO Task(author, task, prio) VALUES (?, ?, ?)", ("Ann", "Write paper", 1))
>>> cur.execute("SELECT task FROM Task WHERE prio = ?", (1,)).fetchall()
[('Write paper',)]
>>> conn.commit()

The module exposes the standard PEP 249 globals (``apilevel``,
``threadsafety``, ``paramstyle``) and exception aliases; the exception
classes themselves live in :mod:`repro.errors` inside the library's
single ``ReproError`` hierarchy.
"""

from repro.errors import (
    DatabaseError,
    InterfaceError,
    NotSupportedError,
    OperationalError,
    ProgrammingError,
    SqlError,
)
from repro.sql.ast import (
    BidelStatement,
    Delete,
    Insert,
    Parameter,
    Select,
    SqlStatement,
    Update,
)
from repro.sql.connection import Connection, Cursor, connect
from repro.sql.parser import parse_statement

apilevel = "2.0"
threadsafety = 1  # threads may share the module, not connections
paramstyle = "qmark"

Error = SqlError
Warning = SqlError  # no separate warning class; kept for PEP 249 shape

__all__ = [
    "connect",
    "Connection",
    "Cursor",
    "parse_statement",
    "SqlStatement",
    "Select",
    "Insert",
    "Update",
    "Delete",
    "BidelStatement",
    "Parameter",
    "apilevel",
    "threadsafety",
    "paramstyle",
    "Error",
    "Warning",
    "InterfaceError",
    "DatabaseError",
    "ProgrammingError",
    "OperationalError",
    "NotSupportedError",
]
