"""Statement AST of the SQL-facing access layer.

Statements reuse :mod:`repro.expr` expression nodes for every scalar
position (projections, WHERE, SET values, VALUES tuples, ORDER BY keys,
LIMIT/OFFSET), extended with one extra node: :class:`Parameter`, a
``?`` placeholder bound at execution time (qmark paramstyle).

A parsed statement is immutable and reusable: executing it never mutates
the AST — parameter binding substitutes :class:`~repro.expr.ast.Literal`
nodes into a structural copy via :func:`bind_expression`.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from typing import Any

from repro.errors import ProgrammingError
from repro.expr.ast import (
    Binary,
    BoolOp,
    Column,
    Comparison,
    Expression,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    Unary,
)


@dataclass(frozen=True)
class Parameter(Expression):
    """A ``?`` placeholder; ``index`` is its 0-based position in the
    statement's parameter list."""

    index: int

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        raise ProgrammingError(
            f"parameter {self.index + 1} was never bound; pass a parameter "
            "sequence to Cursor.execute()"
        )

    def to_sql(self) -> str:
        return "?"

    def columns(self) -> frozenset[str]:
        return frozenset()

    def rename(self, mapping: Mapping[str, str]) -> Expression:
        return self


def bind_expression(expression: Expression, params: Sequence[Any]) -> Expression:
    """A structural copy of ``expression`` with every :class:`Parameter`
    replaced by the corresponding ``Literal`` from ``params``."""
    if isinstance(expression, Parameter):
        return Literal(params[expression.index])
    if isinstance(expression, (Literal, Column)):
        return expression
    if isinstance(expression, Unary):
        return Unary(expression.op, bind_expression(expression.operand, params))
    if isinstance(expression, Binary):
        return Binary(
            expression.op,
            bind_expression(expression.left, params),
            bind_expression(expression.right, params),
        )
    if isinstance(expression, Comparison):
        return Comparison(
            expression.op,
            bind_expression(expression.left, params),
            bind_expression(expression.right, params),
        )
    if isinstance(expression, BoolOp):
        return BoolOp(
            expression.op, tuple(bind_expression(item, params) for item in expression.items)
        )
    if isinstance(expression, IsNull):
        return IsNull(bind_expression(expression.operand, params), expression.negated)
    if isinstance(expression, InList):
        return InList(
            bind_expression(expression.operand, params),
            tuple(bind_expression(item, params) for item in expression.items),
            expression.negated,
        )
    if isinstance(expression, Like):
        return Like(
            bind_expression(expression.operand, params),
            bind_expression(expression.pattern, params),
            expression.negated,
        )
    if isinstance(expression, FuncCall):
        return FuncCall(
            expression.name, tuple(bind_expression(arg, params) for arg in expression.args)
        )
    raise ProgrammingError(f"cannot bind parameters in {type(expression).__name__}")


@dataclass(frozen=True)
class SelectItem:
    """One projection: an expression with an optional ``AS`` alias."""

    expression: Expression
    alias: str | None = None

    @property
    def output_name(self) -> str:
        if self.alias is not None:
            return self.alias
        if isinstance(self.expression, Column):
            return self.expression.name
        return self.expression.to_sql()


@dataclass(frozen=True)
class OrderItem:
    expression: Expression
    descending: bool = False


class SqlStatement:
    """Marker base class for everything :func:`parse_statement` returns."""

    param_count: int = 0


@dataclass(frozen=True)
class Select(SqlStatement):
    table: str
    items: tuple[SelectItem, ...] | None  # None means SELECT *
    where: Expression | None = None
    order_by: tuple[OrderItem, ...] = ()
    limit: Expression | None = None
    offset: Expression | None = None
    param_count: int = 0


@dataclass(frozen=True)
class Insert(SqlStatement):
    table: str
    columns: tuple[str, ...] | None  # None means schema column order
    rows: tuple[tuple[Expression, ...], ...] = ()
    param_count: int = 0


@dataclass(frozen=True)
class Update(SqlStatement):
    table: str
    assignments: tuple[tuple[str, Expression], ...] = ()
    where: Expression | None = None
    param_count: int = 0


@dataclass(frozen=True)
class Delete(SqlStatement):
    table: str
    where: Expression | None = None
    param_count: int = 0


@dataclass(frozen=True)
class BidelStatement(SqlStatement):
    """A BiDEL DDL script (CREATE/DROP SCHEMA VERSION, MATERIALIZE) passed
    through verbatim to the engine."""

    text: str = ""


@dataclass(frozen=True)
class Explain(SqlStatement):
    """``EXPLAIN <statement>`` — plan provenance introspection.

    Executing it never touches data: the result set is a two-column
    (property, value) table describing how the wrapped statement would
    run — plan class, backend SQL, flattened view text, cache status.
    Parameters inside the wrapped statement stay unbound (``EXPLAIN``
    itself takes none).
    """

    statement: SqlStatement = None  # type: ignore[assignment]
    param_count: int = 0


@dataclass(frozen=True)
class Check(SqlStatement):
    """``CHECK <bidel script>`` — static pre-flight analysis.

    The wrapped BiDEL script is analyzed against the current catalog
    without executing anything: the result set is one row per
    diagnostic (code, severity, object, message).  The catalog, the
    plan cache, and the workload data stay untouched.
    """

    script: str = ""
    param_count: int = 0
