"""PEP-249-style connections and cursors over co-existing schema versions.

``repro.connect(engine, version=...)`` binds a DB-API connection to ONE
schema version — the paper's promise that "each schema version itself
appears to the user like a full-fledged single-schema database" made
literal: the client speaks SQL, the engine routes every statement through
the generated mapping logic so writes surface (correctly transformed) in
every other co-existing version.

The module defines the access layer twice over:

- :class:`BaseConnection` / :class:`BaseCursor` — the transport-independent
  DB-API core (cursor buffering and fetch semantics, context-manager
  transaction scopes, closed-state checks that name the offending method).
  Both the in-process transport below and the network transport in
  :mod:`repro.server.client` subclass these, so the two surfaces cannot
  drift apart.
- :class:`Connection` / :class:`Cursor` — the in-process transport:
  statements are parsed and planned in the caller's process, directly
  against the engine (or its live SQLite backend).

Transactions
------------

On the **in-memory engine** writes are applied eagerly and journalled, so
transactions are undo-log-backed: ``commit()`` discards the journal,
``rollback()`` replays it backwards — undoing the write everywhere it
propagated.  Connections share the engine's single journal: a connection
whose transaction began while another connection's was open joins that
transaction and only rolls back its own suffix, and isolation is READ
UNCOMMITTED (single-process, single-writer engine).

On the **live SQLite backend** every connection leases its *own* session
(a pooled ``sqlite3`` handle to the shared database), so transactions are
real and per-session: ``BEGIN``/``COMMIT``/``ROLLBACK`` run on the
session's handle and concurrent sessions proceed in parallel.  Isolation
follows the database mode — snapshot isolation under WAL (file-backed
databases: readers never block and see committed state), READ UNCOMMITTED
on the default shared-cache in-memory database (in-flight writes are
visible across sessions, and a write conflicting with another session's
open transaction fails fast with ``OperationalError``).

Common semantics on both backends:

- with ``autocommit=False`` (the DB-API default) a transaction starts
  implicitly at the first write and ends at ``commit()``/``rollback()``;
- with ``autocommit=True`` each statement commits itself, but ``with
  conn:`` still opens an explicit transaction scope for its duration;
- ``with conn:`` commits on normal exit and rolls back on exception;
  nested ``with`` blocks join the outermost transaction (only the
  outermost block commits or rolls back);
- executing BiDEL DDL through a cursor implicitly commits EVERY open
  transaction, across all sessions (DDL is not transactional); a stale
  transaction token detects this and makes later commit/rollback inert.
"""

from __future__ import annotations

import itertools
import re
import sqlite3
import time
from collections.abc import Iterator, Mapping, Sequence
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.catalog.versions import SchemaVersion
from repro.errors import (
    AccessError,
    CatalogError,
    ExpressionError,
    InterfaceError,
    OperationalError,
    ProgrammingError,
    SchemaError,
)
from repro.relational.types import DataType
from repro.sql.ast import BidelStatement, Check, Explain, SqlStatement
from repro.sql.parser import parse_statement
from repro.sql.plancache import DdlPlan
from repro.sql.planner import StatementResult, compile_statement_memory

if TYPE_CHECKING:  # pragma: no cover
    from repro.backend.sqlite import LiveSqliteBackend, SqliteSession
    from repro.core.engine import InVerDa

_scope_counter = itertools.count()


@dataclass
class _Transaction:
    journal: list | None  # engine undo log (memory backends only)
    mark: int  # journal length (memory) / session epoch (sqlite) at begin
    owner: bool  # did this connection open the engine-level journal?


def _normalize_params(parameters: Sequence[Any] | None, expected: int) -> tuple:
    if parameters is None:
        parameters = ()
    if isinstance(parameters, (str, bytes)):
        raise ProgrammingError("parameters must be a sequence of values, not a string")
    if isinstance(parameters, Mapping):
        raise ProgrammingError(
            "qmark paramstyle takes a positional sequence, not a mapping"
        )
    params = tuple(parameters)
    if len(params) != expected:
        raise ProgrammingError(
            f"statement takes {expected} parameter(s), {len(params)} given"
        )
    return params


#: Reusable no-op context for the untraced fast path (nullcontext carries
#: no state, so one instance serves every statement).
_NOOP_SPAN = nullcontext()


def _span(builder, name: str, **attributes):
    """A tracing span when a trace is active, otherwise a shared no-op."""
    if builder is None:
        return _NOOP_SPAN
    return builder.span(name, **attributes)


_EXPLAIN_PREFIX = re.compile(r"^\s*EXPLAIN\s+", re.IGNORECASE)

_EXPLAIN_DESCRIPTION = (
    ("property", DataType.TEXT, None, None, None, None, None),
    ("value", DataType.TEXT, None, None, None, None, None),
)


class ExplainPlan:
    """The compiled form of ``EXPLAIN <statement>``: wraps the inner
    statement's plan and, when run, reports its provenance — plan class,
    rendered backend SQL, the flattened view's stored SQL, and whether
    the inner statement currently sits in the shared plan cache —
    without touching any data."""

    kind = "explain"
    param_count = 0

    def __init__(self, inner):
        self.inner = inner

    def run_explain(self, connection: "Connection", operation: str) -> StatementResult:
        engine = connection.engine
        rows: list[tuple[str, str]] = [
            ("statement_kind", self.inner.kind),
            ("backend", connection.backend_name),
            ("version", connection.version_name),
            ("catalog_generation", str(engine.catalog_generation)),
        ]
        rows.extend((name, str(value)) for name, value in self.inner.explain_entries())
        view_name = getattr(self.inner, "view_name", None)
        if view_name and connection._session is not None:
            stored = connection._session.execute(
                "SELECT sql FROM sqlite_master WHERE type = 'view' AND name = ?",
                (view_name,),
            ).fetchone()
            if stored and stored[0]:
                rows.append(("view_sql", stored[0]))
        if connection._use_plan_cache:
            inner_text = _EXPLAIN_PREFIX.sub("", operation)
            key = (inner_text, connection.version_name, connection.backend_name)
            cached = engine.plan_cache.peek(key, engine.catalog_generation)
            rows.append(("plan_cached", str(cached is not None).lower()))
        else:
            rows.append(("plan_cached", "off"))
        return StatementResult(
            description=_EXPLAIN_DESCRIPTION, rows=rows, rowcount=len(rows)
        )


_CHECK_DESCRIPTION = (
    ("code", DataType.TEXT, None, None, None, None, None),
    ("severity", DataType.TEXT, None, None, None, None, None),
    ("object", DataType.TEXT, None, None, None, None, None),
    ("message", DataType.TEXT, None, None, None, None, None),
)


class CheckPlan:
    """The compiled form of ``CHECK <bidel script>``: runs the static
    pre-flight analyzer over the wrapped script against the current
    catalog and reports one row per diagnostic.  Nothing is executed and
    nothing is mutated — the catalog generation, the plan cache, and the
    workload data stay exactly as they were."""

    kind = "check"
    param_count = 0

    def __init__(self, script: str):
        self.script = script

    def run_check(self, connection: "Connection", operation: str) -> StatementResult:
        from repro.check.diagnostics import record_findings
        from repro.check.preflight import preflight_script

        engine = connection.engine
        diagnostics = preflight_script(engine, self.script)
        record_findings(engine, diagnostics, scope="check-statement")
        rows = [d.as_row() for d in diagnostics]
        return StatementResult(
            description=_CHECK_DESCRIPTION, rows=rows, rowcount=len(rows)
        )


@contextmanager
def _translated_errors():
    """Surface engine-level and backend failures as DB-API error classes."""
    try:
        yield
    except (SchemaError, ExpressionError, CatalogError) as exc:
        raise ProgrammingError(str(exc)) from exc
    except AccessError as exc:
        raise OperationalError(str(exc)) from exc
    except sqlite3.Error as exc:
        raise OperationalError(str(exc)) from exc


# ---------------------------------------------------------------------------
# Transport-independent DB-API core
# ---------------------------------------------------------------------------


class BaseCursor:
    """The transport-independent half of a DB-API cursor.

    Subclasses implement :meth:`execute` / :meth:`executemany` (filling the
    row buffer via :meth:`_install_result`) and, for paged transports,
    :meth:`_fetch_more`.  Fetch semantics, iteration, and closed-state
    checks live here so every transport behaves identically.
    """

    def __init__(self, connection: "BaseConnection"):
        self._connection = connection
        self._closed = False
        self.arraysize = 1
        self._description: tuple[tuple, ...] | None = None
        self._rowcount = -1
        self._lastrowid: int | None = None
        self._buffer: list[tuple] = []  # fetched rows
        self._pos = 0  # next unconsumed row in the buffer (O(1) fetchone)
        self._exhausted = True  # no further rows beyond the buffer
        #: The finished trace of the last executed statement (a
        #: :class:`repro.obs.Trace`), or ``None`` when untraced.
        self.trace = None
        #: Plan-cache outcome of the last statement: hit | miss | off.
        self.cache_event: str | None = None
        #: Statement kind of the last execute (select | insert | ...).
        self.statement_kind: str | None = None

    # -- metadata ----------------------------------------------------------

    @property
    def connection(self) -> "BaseConnection":
        return self._connection

    @property
    def description(self) -> tuple[tuple, ...] | None:
        return self._description

    @property
    def rowcount(self) -> int:
        return self._rowcount

    @property
    def lastrowid(self) -> int | None:
        return self._lastrowid

    @property
    def rows_pending(self) -> bool:
        """Whether further ``fetch*`` calls can still return rows (the
        network server uses this to decide if a statement needs paging)."""
        return self._pos < len(self._buffer) or not self._exhausted

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        self._closed = True
        self._install_result(StatementResult())

    def _check_open(self, operation: str) -> "BaseConnection":
        """Fail with the *offending method's name* when closed."""
        if self._closed:
            raise InterfaceError(f"{operation}(): cannot operate on a closed cursor")
        connection = self._connection
        connection._check_open(operation)
        return connection

    def _install_result(self, result: StatementResult, *, exhausted: bool = True) -> None:
        self._description = result.description
        self._rowcount = result.rowcount
        self._lastrowid = result.lastrowid
        self._buffer = list(result.rows)
        self._pos = 0
        self._exhausted = exhausted

    # -- execution (transport-specific) ------------------------------------

    def execute(self, operation: str, parameters: Sequence[Any] | None = None) -> "BaseCursor":
        raise NotImplementedError

    def executemany(
        self, operation: str, seq_of_parameters: Sequence[Sequence[Any]]
    ) -> "BaseCursor":
        raise NotImplementedError

    # -- fetching ----------------------------------------------------------

    def _fetch_more(self, size: int) -> list[tuple]:
        """Pull up to ``size`` further rows from the transport.  The
        in-process transport buffers complete results, so the default is
        empty; the network transport pages rows from the server here."""
        return []

    def _remaining(self) -> int:
        return len(self._buffer) - self._pos

    def _compact(self) -> None:
        """Release consumed rows once they are at least half the buffer:
        amortized O(1) per row, so paged consumers (the network server
        streaming a result to a slow client) hold at most ~2x the
        *remaining* rows in memory, never the full result."""
        if self._pos and self._pos * 2 >= len(self._buffer):
            del self._buffer[: self._pos]
            self._pos = 0

    def _refill(self, want: int) -> None:
        if self._exhausted or self._remaining() >= want:
            return
        if self._pos:  # drop consumed rows before growing the buffer
            del self._buffer[: self._pos]
            self._pos = 0
        while not self._exhausted and len(self._buffer) < want:
            page = self._fetch_more(max(want - len(self._buffer), 1))
            if not page:
                self._exhausted = True
                break
            self._buffer.extend(page)

    def fetchone(self) -> tuple | None:
        self._check_open("fetchone")
        self._refill(1)
        if self._pos >= len(self._buffer):
            return None
        row = self._buffer[self._pos]
        self._pos += 1
        self._compact()
        return row

    def fetchmany(self, size: int | None = None) -> list[tuple]:
        self._check_open("fetchmany")
        if size is None:
            size = self.arraysize
        size = max(size, 0)  # a negative size must never rewind the cursor
        self._refill(size)
        rows = self._buffer[self._pos : self._pos + size]
        self._pos += len(rows)
        self._compact()
        return rows

    def fetchall(self) -> list[tuple]:
        self._check_open("fetchall")
        while not self._exhausted:
            page = self._fetch_more(max(self.arraysize, 1))
            if not page:
                break
            self._buffer.extend(page)
        self._exhausted = True
        rows = self._buffer[self._pos :]
        self._buffer = []
        self._pos = 0
        return rows

    def __iter__(self) -> Iterator[tuple]:
        while (row := self.fetchone()) is not None:
            yield row

    # -- PEP 249 no-ops ----------------------------------------------------

    def setinputsizes(self, sizes) -> None:  # noqa: D102 - PEP 249
        pass

    def setoutputsize(self, size, column=None) -> None:  # noqa: D102 - PEP 249
        pass


class BaseConnection:
    """The transport-independent half of a DB-API connection.

    Subclasses provide :meth:`cursor`, :meth:`commit`, :meth:`rollback`,
    :meth:`close`, the :attr:`in_transaction` property, and
    :meth:`_enter_scope` (open the explicit transaction of a ``with``
    block).  The shared surface — execute shortcuts, context-manager
    semantics, closed-state checks naming the offending method — lives
    here.
    """

    def __init__(self, *, autocommit: bool = False):
        self.autocommit = autocommit
        self._closed = False
        self._with_depth = 0

    # -- lifecycle ---------------------------------------------------------

    def _check_open(self, operation: str) -> None:
        if self._closed:
            raise InterfaceError(
                f"{operation}(): cannot operate on a closed connection"
            )

    def close(self) -> None:
        raise NotImplementedError

    def cursor(self) -> BaseCursor:
        raise NotImplementedError

    # -- statement shortcuts -----------------------------------------------

    def execute(self, operation: str, parameters: Sequence[Any] | None = None) -> BaseCursor:
        """Shortcut: a fresh cursor with ``operation`` already executed."""
        self._check_open("execute")
        return self.cursor().execute(operation, parameters)

    def executemany(
        self, operation: str, seq_of_parameters: Sequence[Sequence[Any]]
    ) -> BaseCursor:
        self._check_open("executemany")
        return self.cursor().executemany(operation, seq_of_parameters)

    # -- transactions ------------------------------------------------------

    @property
    def in_transaction(self) -> bool:
        raise NotImplementedError

    def commit(self) -> None:
        raise NotImplementedError

    def rollback(self) -> None:
        raise NotImplementedError

    def _enter_scope(self) -> None:
        """Open the explicit transaction scope of a ``with`` block."""
        raise NotImplementedError

    def __enter__(self) -> "BaseConnection":
        self._check_open("__enter__")
        self._with_depth += 1
        self._enter_scope()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._with_depth -= 1
        if self._with_depth == 0 and not self._closed:
            if exc_type is None:
                self.commit()
            else:
                self.rollback()
        return False


# ---------------------------------------------------------------------------
# In-process transport
# ---------------------------------------------------------------------------


class Cursor(BaseCursor):
    """A DB-API cursor bound to its connection's schema version."""

    _connection: "Connection"

    # -- execution ---------------------------------------------------------

    def execute(self, operation: str, parameters: Sequence[Any] | None = None) -> "Cursor":
        """Execute one SQL statement (or a BiDEL DDL script).

        Statements are planned through the engine's shared
        :class:`~repro.sql.plancache.PlanCache`: a repeated statement text
        on the same version and backend skips parsing and planner lowering
        entirely (plans are tagged with the catalog generation, so DDL on
        any connection invalidates them).

        Every statement lands in the engine's metrics registry (latency,
        workload, error counters); spans are recorded only when tracing is
        on for this connection/engine or the statement arrived with a
        remote trace context."""
        connection = self._check_open("execute")
        self._install_result(StatementResult())
        self.trace = None
        self.cache_event = None
        engine = connection.engine
        builder = connection._begin_statement_trace(operation)
        started = time.perf_counter()
        kind = "unknown"
        try:
            kind = self._execute_inner(connection, engine, builder, operation,
                                       parameters)
        except BaseException:
            connection._finish_statement(self, operation, kind, started, builder,
                                         error=True)
            raise
        connection._finish_statement(self, operation, kind, started, builder)
        return self

    def _execute_inner(self, connection, engine, builder, operation,
                       parameters) -> str:
        with engine.catalog_lock.read_locked():
            with _span(builder, "plan"):
                plan, cached = connection._plan_for(operation)
            self.cache_event = (
                "hit" if cached else ("miss" if connection._use_plan_cache else "off")
            )
            if plan.kind == "explain":
                with _translated_errors():
                    self._install_result(plan.run_explain(connection, operation))
                engine.workload.record(connection.version_name, "explain")
                return "explain"
            if plan.kind == "check":
                with _translated_errors():
                    self._install_result(plan.run_check(connection, operation))
                engine.workload.record(connection.version_name, "check")
                return "check"
            if plan.kind != "ddl":
                params = _normalize_params(parameters, plan.param_count)
                if plan.kind == "select":
                    with _span(
                        builder, "execute", backend=connection.backend_name
                    ), _translated_errors():
                        self._install_result(connection._run_plan(plan, params))
                    engine.workload.record(connection.version_name, "select")
                    return "select"
                with _span(
                    builder, "execute", backend=connection.backend_name
                ), connection._write_scope(), _translated_errors():
                    self._install_result(connection._run_plan(plan, params))
                engine.workload.record(connection.version_name, plan.kind)
                return plan.kind
        # BiDEL DDL runs outside the read scope: the engine takes the
        # catalog write lock itself.  DDL is not transactional: it
        # implicitly commits EVERY open transaction. A journal kept across
        # a migration would name physical tables the swap may drop, making
        # rollback a lie.
        _normalize_params(parameters, plan.param_count)
        with _span(builder, "commit"):
            connection.commit()
            connection._force_end_transactions()
        with _span(builder, "execute", backend="engine"), _translated_errors():
            engine.execute(plan.statement.text)
        engine.workload.record(connection.version_name, "ddl")
        return "ddl"

    def executemany(
        self, operation: str, seq_of_parameters: Sequence[Sequence[Any]]
    ) -> "Cursor":
        """Execute a DML statement once per parameter row, atomically.

        The statement is planned ONCE (via the shared plan cache) and only
        parameter binding varies per row.  INSERTs take a batched fast
        path on both backends: the in-memory engine applies the whole
        batch as a single change set (one propagation pass through the
        version genealogy), the SQLite backend issues one multi-row
        ``executemany`` against the generated view.  Everything else runs
        row by row inside one atomic scope. Either way, an error in the
        middle of the batch undoes the whole batch.
        """
        connection = self._check_open("executemany")
        self._install_result(StatementResult())
        self.trace = None
        self.cache_event = None
        engine = connection.engine
        seq_of_parameters = list(seq_of_parameters)
        builder = connection._begin_statement_trace(operation)
        started = time.perf_counter()
        kind = "unknown"
        try:
            kind = self._executemany_inner(
                connection, engine, builder, operation, seq_of_parameters
            )
        except BaseException:
            connection._finish_statement(self, operation, kind, started, builder,
                                         error=True)
            raise
        connection._finish_statement(self, operation, kind, started, builder)
        return self

    def _executemany_inner(self, connection, engine, builder, operation,
                           seq_of_parameters) -> str:
        with engine.catalog_lock.read_locked():
            with _span(builder, "plan"):
                plan, cached = connection._plan_for(operation)
            self.cache_event = (
                "hit" if cached else ("miss" if connection._use_plan_cache else "off")
            )
            if plan.kind in ("select", "ddl", "explain", "check"):
                raise ProgrammingError("executemany() only accepts DML statements")
            if plan.kind == "insert":
                normalized = [
                    _normalize_params(parameters, plan.param_count)
                    for parameters in seq_of_parameters
                ]
                with _span(
                    builder, "execute", backend=connection.backend_name,
                    batch=len(normalized),
                ), connection._write_scope(), _translated_errors():
                    self._install_result(
                        connection._run_plan_many(plan, normalized)
                    )
            else:
                total = 0
                lastrowid: int | None = None
                with _span(
                    builder, "execute", backend=connection.backend_name,
                    batch=len(seq_of_parameters),
                ), connection._write_scope(), _translated_errors():
                    for parameters in seq_of_parameters:
                        params = _normalize_params(parameters, plan.param_count)
                        result = connection._run_plan(plan, params)
                        total += max(result.rowcount, 0)
                        if result.lastrowid is not None:
                            lastrowid = result.lastrowid
                self._install_result(
                    StatementResult(rowcount=total, lastrowid=lastrowid)
                )
            engine.workload.record(
                connection.version_name, plan.kind, len(seq_of_parameters)
            )
            return plan.kind


class Connection(BaseConnection):
    """A DB-API connection to one co-existing schema version."""

    def __init__(
        self,
        engine: "InVerDa",
        version: SchemaVersion,
        *,
        autocommit: bool = False,
        backend: "LiveSqliteBackend | None" = None,
        plan_cache: bool = True,
        trace: bool = False,
        slow_ms: float | None = None,
    ):
        super().__init__(autocommit=autocommit)
        self.engine = engine
        self._version = version
        self._backend = backend
        self._use_plan_cache = plan_cache
        self._trace = trace
        self._slow_ms = slow_ms
        #: One-shot remote trace context ``(trace_id, parent_span_id)``;
        #: the network server sets it right before executing a statement
        #: that arrived with a client-side trace, so the engine-side spans
        #: join the client's trace instead of starting their own.
        self._trace_context: tuple[str, str] | None = None
        # Metric families are resolved once per connection, not per
        # statement — the hot path only pays dict-free method calls.
        metrics = engine.metrics
        self._m_latency = metrics.histogram(
            "repro_statement_latency_seconds",
            "Statement wall time by schema version, statement kind, and "
            "plan-cache outcome.",
            ("version", "kind", "cache"),
        )
        self._m_errors = metrics.counter(
            "repro_statement_errors_total",
            "Statements that raised, by schema version.",
            ("version",),
        )
        self._m_slow = metrics.counter(
            "repro_slow_statements_total",
            "Statements exceeding the slow-query threshold, by version.",
            ("version",),
        )
        # On the live backend every connection leases its own session — a
        # pooled sqlite3 handle with real per-session transactions.
        self._session: "SqliteSession | None" = (
            backend.open_session() if backend is not None else None
        )
        self._txn: _Transaction | None = None

    # -- metadata ----------------------------------------------------------

    @property
    def version_name(self) -> str:
        return self._version.name

    @property
    def backend_name(self) -> str:
        return "memory" if self._backend is None else "sqlite"

    @property
    def in_transaction(self) -> bool:
        if self._txn is None:
            return False
        if (
            self._session is not None
            and self._session.transaction_epoch != self._txn.mark
        ):
            # The transaction was force-ended (catalog transition or
            # backend shutdown); report reality, not the stale token.
            return False
        return True

    # -- statement dispatch ------------------------------------------------

    def _plan_for(self, operation: str):
        """The compiled plan for ``operation`` — from the engine's shared
        plan cache when possible, else parsed and lowered now (and cached
        for the next statement).  Must run under the catalog read lock so
        the generation tag is stable while the plan is compiled and used.
        Returns ``(plan, cached)`` where ``cached`` reports a cache hit."""
        if self._version.dropped:
            # Without this guard a session pinned to a dropped version
            # could keep executing statements against table versions the
            # dropped version *shares* with surviving ones (their views
            # outlive the drop).  The documented contract — and what the
            # network server already enforces — is a clean OperationalError.
            raise OperationalError(
                f"schema version {self._version.name!r} was dropped; close "
                "this connection and reconnect to a live version"
            )
        engine = self.engine
        cache = engine.plan_cache if self._use_plan_cache else None
        generation = engine.catalog_generation
        key = (operation, self._version.name, self.backend_name)
        if cache is not None:
            plan = cache.get(key, generation)
            if plan is not None:
                self._check_data_plane(plan)
                return plan, True
        statement = parse_statement(operation)
        with _translated_errors():
            plan = self._compile(statement)
        if cache is not None and plan.kind not in ("ddl", "explain", "check"):
            # DDL executions bump the generation and clear the cache, so a
            # DDL entry could never be hit again — don't churn LRU slots
            # that could hold hot DML plans (re-parse is already cheap via
            # the parser's own text cache).  EXPLAIN is an introspection
            # one-off: caching it would shadow the inner statement's own
            # cache status, which is exactly what it reports.
            cache.put(key, generation, plan)
        return plan, False

    def _check_data_plane(self, plan) -> None:
        """A cached plan must honour the same guard a fresh compile does:
        once a live backend owns the data plane, a connection still bound
        to the in-memory snapshot may not serve (stale) data — only DDL,
        which runs through the engine, is still allowed."""
        if (
            plan.kind != "ddl"
            and self._session is None
            and self.engine.live_backend is not None
        ):
            raise InterfaceError(
                "connection was opened before a live execution backend "
                "was attached; reconnect with backend='sqlite'"
            )

    def _compile(self, statement: SqlStatement):
        if isinstance(statement, BidelStatement):
            return DdlPlan(statement)
        if isinstance(statement, Explain):
            return ExplainPlan(self._compile(statement.statement))
        if isinstance(statement, Check):
            # Compiled before the stale-session guard: CHECK reads only
            # the catalog, never the data plane, so a pre-attach
            # connection may still run it (like DDL and EXPLAIN over it).
            return CheckPlan(statement.script)
        if self._session is None:
            if self.engine.live_backend is not None:
                # This connection predates the backend attach; its data
                # plane is the dead in-memory snapshot. Refuse rather than
                # silently diverge from the SQLite state.
                raise InterfaceError(
                    "connection was opened before a live execution backend "
                    "was attached; reconnect with backend='sqlite'"
                )
            return compile_statement_memory(self._version, statement)
        from repro.backend.planner import compile_statement_sqlite

        return compile_statement_sqlite(self._version, statement)

    def _run_plan(self, plan, params: tuple) -> StatementResult:
        if self._session is None:
            return plan.run(self.engine, params)
        return plan.run(self._session, params)

    def _run_plan_many(self, plan, seq_of_parameters) -> StatementResult:
        if self._session is None:
            return plan.run_many(self.engine, seq_of_parameters)
        return plan.run_many(self._session, seq_of_parameters)

    # -- statement instrumentation -----------------------------------------

    def _begin_statement_trace(self, operation: str):
        """A :class:`~repro.obs.TraceBuilder` for this statement, or
        ``None`` on the untraced fast path.  A pending remote trace
        context (set by the network server) always wins: the engine-side
        spans join the client's trace."""
        context, self._trace_context = self._trace_context, None
        tracer = self.engine.tracer
        if context is not None:
            builder = tracer.begin(
                "engine.statement", trace_id=context[0], parent_id=context[1]
            )
        elif self._trace or tracer.enabled:
            builder = tracer.begin("statement")
        else:
            return None
        builder.root.attributes["sql"] = operation
        return builder

    def _finish_statement(self, cursor: BaseCursor, operation: str, kind: str,
                          started: float, builder, *, error: bool = False) -> None:
        """Record the statement's metrics (latency or error counter, slow
        log) and, when traced, close the trace onto the cursor."""
        duration = time.perf_counter() - started
        version = self.version_name
        cursor.statement_kind = kind
        cache = cursor.cache_event or "off"
        if error:
            self._m_errors.inc(version=version)
        else:
            self._m_latency.observe(duration, version=version, kind=kind,
                                    cache=cache)
        slow = self.engine.tracer.note_statement(
            operation, version, duration,
            threshold_ms=self._slow_ms,
            trace_id=builder.trace_id if builder is not None else None,
        )
        if slow is not None:
            self._m_slow.inc(version=version)
        if builder is not None:
            cursor.trace = builder.finish(
                kind=kind, cache=cache, version=version, error=error
            )

    def stats(self) -> dict:
        """Unified observability snapshot (``repro.obs/1``): plan-cache
        counters, catalog durability facts (generation, fingerprint,
        on-disk staleness), workload and tracing summaries, the full
        metrics snapshot, and — on the live backend — the session pool's
        occupancy.  The top-level ``backend`` / ``plan_cache`` /
        ``catalog`` / ``pool`` keys predate the unified schema and are
        kept as stable aliases."""
        from repro.obs import engine_snapshot

        return engine_snapshot(self.engine, backend=self._backend)

    def _force_end_transactions(self) -> None:
        """DDL implicitly commits every open transaction, including other
        connections' (they will find their journal gone).  Backend
        sessions are quiesced by the engine itself, under the catalog
        write lock, before it touches the catalog."""
        if self._backend is None:
            self.engine._undo_log = None

    def table_names(self) -> list[str]:
        return self._version.table_names()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return f"<repro.sql.Connection version={self.version_name!r} {state}>"

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Roll back any open transaction, release the backend session
        back to the pool, and close the connection."""
        if self._closed:
            return
        if self._txn is not None:
            self.rollback()
        self._closed = True
        if self._session is not None:
            self._session.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass  # interpreter shutdown or an already-closed pool

    # -- cursors -----------------------------------------------------------

    def cursor(self) -> Cursor:
        self._check_open("cursor")
        return Cursor(self)

    # -- transactions ------------------------------------------------------

    def _begin(self) -> None:
        if self._txn is not None:
            if (
                self._session is not None
                and self._session.transaction_epoch != self._txn.mark
            ):
                self._txn = None  # force-ended; a fresh transaction begins
            else:
                return
        if self._session is not None:
            with _translated_errors():
                self._session.begin()
            self._txn = _Transaction(
                journal=None, mark=self._session.transaction_epoch, owner=True
            )
            return
        log = self.engine._undo_log
        if log is None:
            log = []
            self.engine._undo_log = log
            self._txn = _Transaction(journal=log, mark=0, owner=True)
        else:
            self._txn = _Transaction(journal=log, mark=len(log), owner=False)

    def commit(self) -> None:
        """End the current transaction, keeping its writes."""
        self._check_open("commit")
        if self._txn is None:
            return
        if self._session is not None:
            self._txn, txn = None, self._txn
            if self._session.transaction_epoch != txn.mark:
                return  # the transaction this token names already ended
            with self.engine.catalog_lock.read_locked(), _translated_errors():
                self._session.commit()
            return
        if self._txn.owner and self.engine._undo_log is self._txn.journal:
            self.engine._undo_log = None
        self._txn = None

    def rollback(self) -> None:
        """Undo every write of the current transaction — including its
        propagated effects in all other schema versions."""
        self._check_open("rollback")
        if self._txn is None:
            return
        if self._session is not None:
            self._txn, txn = None, self._txn
            if self._session.transaction_epoch != txn.mark:
                return  # the transaction this token names already ended
            with self.engine.catalog_lock.read_locked(), _translated_errors():
                self._session.rollback()
            return
        # Only touch the journal this transaction actually wrote into. If
        # it is gone (the owning connection committed or rolled back), the
        # joined transaction ended with it and there is nothing to undo —
        # a mark into a NEWER journal would erase someone else's writes.
        if self.engine._undo_log is self._txn.journal:
            self.engine._rollback_to(self._txn.mark)
            if self._txn.owner:
                self.engine._undo_log = None
        self._txn = None

    @contextmanager
    def _write_scope(self):
        """Statement-level atomicity around a write.

        Opens the implicit transaction when not in autocommit mode, then
        guards the statement with a savepoint so a failure mid-statement
        (or mid-executemany-batch) never leaves partial effects behind."""
        self._check_open("execute")
        if not self.autocommit:
            self._begin()
        if self._session is not None:
            # The statement savepoint runs on this connection's OWN
            # session: in autocommit mode (no open transaction) releasing
            # it commits the statement; inside a transaction it only
            # bounds the statement's effects.  Conflicts with other
            # sessions surface as SQLite lock errors, not silent joins.
            session = self._session
            # An autocommit write takes the backend's write lock up
            # front: routed writes read the view before the trigger
            # writes, and that deferred upgrade loses a WAL snapshot
            # race against any concurrent writer (e.g. an online
            # backfill chunk) as an immediate, untimed-out lock error.
            # It queues for the backend write *gate* first — waiters on
            # a Python lock are woken the moment the holder releases,
            # where SQLite's busy handler would poll and starve behind a
            # back-to-back backfill chunk loop.
            own_txn = False
            gate = None
            if self.autocommit and not session.in_transaction:
                gate = getattr(session.backend, "write_gate", None)
                if gate is not None:
                    gate.acquire()
                try:
                    with _translated_errors():
                        session.begin_immediate()
                    own_txn = True
                except BaseException:
                    if gate is not None:
                        gate.release()
                    raise
            try:
                # The savepoint name is generated here (stmt_<counter>),
                # never user input, so no identifier quoting applies.
                savepoint = f"stmt_{next(_scope_counter)}"
                try:
                    with _translated_errors():
                        session.execute(f"SAVEPOINT {savepoint}")  # repro-lint: allow(RPC301)
                except BaseException:
                    if own_txn and not session.closed:
                        session.rollback()
                    raise
                try:
                    yield
                except BaseException:
                    if not session.closed:
                        session.execute(f"ROLLBACK TO {savepoint}")  # repro-lint: allow(RPC301)
                        session.execute(f"RELEASE {savepoint}")  # repro-lint: allow(RPC301)
                        if own_txn:
                            session.rollback()
                    raise
                else:
                    with _translated_errors():
                        session.execute(f"RELEASE {savepoint}")  # repro-lint: allow(RPC301)
                        if own_txn:
                            session.commit()
            finally:
                if gate is not None and own_txn:
                    gate.release()
            return
        engine = self.engine
        if engine._undo_log is None:
            engine._undo_log = []
            try:
                yield
            except BaseException:
                engine._rollback_to(0)
                raise
            finally:
                engine._undo_log = None
        else:
            mark = len(engine._undo_log)
            try:
                yield
            except BaseException:
                engine._rollback_to(mark)
                raise
            else:
                if self.autocommit and self._txn is None:
                    # An autocommit statement ran while another
                    # connection's transaction holds the journal: commit
                    # it NOW by dropping its undo entries, so the foreign
                    # rollback cannot erase a self-committed write.
                    del engine._undo_log[mark:]

    def _enter_scope(self) -> None:
        with self.engine.catalog_lock.read_locked():
            self._begin()


def _resolve_backend(engine: "InVerDa", backend) -> "LiveSqliteBackend | None":
    from repro.backend.sqlite import LiveSqliteBackend

    if backend is None:
        return engine.live_backend
    if isinstance(backend, LiveSqliteBackend):
        return backend
    if backend == "memory":
        if engine.live_backend is not None:
            raise InterfaceError(
                "engine has a live execution backend attached; its in-memory "
                "tables are a stale snapshot — connect with backend='sqlite'"
            )
        return None
    if backend == "sqlite":
        live = engine.live_backend
        if live is not None:
            return live
        return LiveSqliteBackend.attach(engine)
    raise InterfaceError(f"unknown backend {backend!r}; use 'memory' or 'sqlite'")


def connect(
    engine: "InVerDa",
    version: str | None = None,
    *,
    autocommit: bool = False,
    backend: str | None = None,
    plan_cache: bool = True,
    trace: bool = False,
    slow_ms: float | None = None,
) -> Connection:
    """Open a DB-API connection to ``version`` of ``engine``.

    ``version`` may be omitted when exactly one schema version is active.
    With ``autocommit=True`` every statement commits itself; explicit
    transaction scopes are still available via ``with conn:``.

    ``backend`` selects the execution engine: ``"memory"`` plans
    statements onto the pure-Python engine, ``"sqlite"`` executes them on
    the live SQLite backend (attaching one on first use) where generated
    views and INSTEAD OF triggers serve reads and writes inside SQLite.
    The default is the engine's attached backend, if any, else memory.

    ``plan_cache=False`` opts this connection out of the engine's shared
    statement-plan cache (every execute re-parses and re-plans; used by
    the fig16 benchmark to measure the cold path).

    ``trace=True`` records a span trace for every statement on this
    connection (readable from ``cursor.trace``) even when the engine's
    tracer is otherwise disabled.  ``slow_ms`` sets a per-connection
    slow-query threshold: statements slower than this land in the
    engine tracer's slow-query ring buffer.
    """
    schema_version = resolve_schema_version(engine, version)
    resolved = _resolve_backend(engine, backend)
    return Connection(
        engine,
        schema_version,
        autocommit=autocommit,
        backend=resolved,
        plan_cache=plan_cache,
        trace=trace,
        slow_ms=slow_ms,
    )


def resolve_schema_version(engine: "InVerDa", version: str | None) -> SchemaVersion:
    """Resolve ``version`` (or the sole active version when ``None``) to
    its :class:`SchemaVersion`; shared by both transports' connects.
    Unknown names surface as :class:`InterfaceError`."""
    if version is None:
        names = engine.version_names()
        if len(names) != 1:
            raise InterfaceError(
                "version= is required when the engine has "
                f"{len(names)} active schema versions ({', '.join(names) or 'none'})"
            )
        version = names[0]
    try:
        return engine.genealogy.schema_version(version)
    except CatalogError as exc:
        raise InterfaceError(str(exc)) from exc


def resolve_version_name(engine: "InVerDa", version: str | None) -> str:
    """Like :func:`resolve_schema_version`, returning just the name."""
    return resolve_schema_version(engine, version).name
