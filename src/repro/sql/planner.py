"""Lowering SQL statements onto the engine's version routing.

This module owns the CRUD primitives of the access layer: every visible
read goes through :meth:`InVerDa.read_table_version` and every write
through :meth:`InVerDa.apply_change`, so the engine's generated mapping
logic keeps all co-existing schema versions consistent. Both the DB-API
cursor and the legacy :class:`~repro.core.access.VersionConnection` shim
call into these functions.

Like SQLite, every table exposes a ``rowid`` pseudo-column carrying the
internal tuple identifier ``p`` of the paper's trigger architecture —
unless the table has a real column of that name. ``rowid`` is not part of
``SELECT *`` but may be projected, filtered, and ordered on explicitly,
which gives SQL clients a stable handle on rows of tables without a
visible key column.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.bidel.smo.base import TableChange
from repro.catalog.genealogy import TableVersion
from repro.catalog.versions import SchemaVersion
from repro.errors import (
    AccessError,
    CatalogError,
    ExpressionError,
    ProgrammingError,
    SchemaError,
)
from repro.expr.ast import Column as ColumnRef
from repro.expr.ast import Expression, is_true
from repro.relational.types import DataType
from repro.sql.ast import (
    Delete,
    Insert,
    OrderItem,
    Select,
    SelectItem,
    SqlStatement,
    Update,
    bind_expression,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import InVerDa

ROWID = "rowid"

RowMapping = dict[str, Any]
Predicate = Callable[[RowMapping], bool]


def resolve_table(version: SchemaVersion, table: str) -> TableVersion:
    try:
        return version.table_version(table)
    except (AccessError, CatalogError) as exc:
        raise ProgrammingError(str(exc)) from exc


def rowid_exposed(tv: TableVersion) -> bool:
    """The ``rowid`` pseudo-column exists unless shadowed by a real one."""
    return not tv.schema.has_column(ROWID)


def visible_rows(
    engine: "InVerDa", tv: TableVersion, *, with_rowid: bool = False
) -> Iterable[tuple[int, RowMapping]]:
    """(key, mapping) pairs of the table version's visible extent."""
    schema = tv.schema
    expose = with_rowid and rowid_exposed(tv)
    for key, row in engine.read_table_version(tv, cache={}).items():
        mapping = schema.row_to_mapping(row)
        if expose:
            mapping[ROWID] = key
        yield key, mapping


# ---------------------------------------------------------------------------
# Write primitives (shared with the legacy VersionConnection shim)
# ---------------------------------------------------------------------------


def insert_rows(
    engine: "InVerDa", tv: TableVersion, mappings: Iterable[Mapping[str, Any]]
) -> list[int]:
    """Insert rows as ONE change batch (a single propagation pass); returns
    the allocated internal tuple identifiers."""
    change = TableChange()
    keys: list[int] = []
    for values in mappings:
        if tv.key_column is not None:
            provided = values.get(tv.key_column)
            key = int(provided) if provided is not None else engine.allocate_key()
            values = dict(values)
            values[tv.key_column] = key
        else:
            key = engine.allocate_key()
        change.upserts[key] = tv.schema.row_from_mapping(values)
        keys.append(key)
    if keys:
        engine.apply_change(tv, change)
    return keys


def update_rows(
    engine: "InVerDa",
    tv: TableVersion,
    predicate: Predicate,
    transform: Callable[[RowMapping], Mapping[str, Any]],
    *,
    with_rowid: bool = False,
) -> int:
    """Update matching rows; ``transform`` maps the current row to its SET
    values. Applied as one change batch; returns the number of rows."""
    schema = tv.schema
    change = TableChange()
    for key, mapping in visible_rows(engine, tv, with_rowid=with_rowid):
        if not predicate(mapping):
            continue
        updates = transform(mapping)
        if tv.key_column is not None and tv.key_column in updates:
            raise AccessError(
                f"column {tv.key_column!r} of {tv.name!r} is the generated "
                "identifier and cannot be updated"
            )
        if ROWID in updates and rowid_exposed(tv):
            raise AccessError("the rowid pseudo-column cannot be updated")
        mapping = dict(mapping)
        if rowid_exposed(tv):
            mapping.pop(ROWID, None)
        mapping.update(updates)
        change.upserts[key] = schema.row_from_mapping(mapping)
    if change.empty:
        return 0
    engine.apply_change(tv, change)
    return len(change.upserts)


def delete_rows(
    engine: "InVerDa",
    tv: TableVersion,
    predicate: Predicate,
    *,
    with_rowid: bool = False,
) -> int:
    """Delete matching rows as one change batch; returns the number removed."""
    change = TableChange()
    for key, mapping in visible_rows(engine, tv, with_rowid=with_rowid):
        if predicate(mapping):
            change.deletes.add(key)
    if change.empty:
        return 0
    engine.apply_change(tv, change)
    return len(change.deletes)


# ---------------------------------------------------------------------------
# SQL statement execution
# ---------------------------------------------------------------------------


@dataclass
class StatementResult:
    """What one executed statement produced, DB-API shaped."""

    description: tuple[tuple, ...] | None = None
    rows: list[tuple] = field(default_factory=list)
    rowcount: int = -1
    lastrowid: int | None = None


def _where_predicate(where: Expression | None) -> Predicate:
    if where is None:
        return lambda mapping: True
    return lambda mapping: is_true(where.evaluate(mapping))


def _evaluate_scalar(expression: Expression, mapping: RowMapping) -> Any:
    try:
        return expression.evaluate(mapping)
    except ExpressionError as exc:
        raise ProgrammingError(str(exc)) from exc


def _int_clause(expression: Expression, what: str) -> int:
    value = _evaluate_scalar(expression, {})
    if not isinstance(value, int) or isinstance(value, bool):
        raise ProgrammingError(f"{what} must be an integer, got {value!r}")
    return value


def _sort_rows(
    rows: list[tuple[int, RowMapping]], order_by: tuple[OrderItem, ...]
) -> None:
    """Stable multi-key sort; NULLs sort last in either direction."""
    for item in reversed(order_by):
        def sort_key(entry: tuple[int, RowMapping]):
            value = _evaluate_scalar(item.expression, entry[1])
            return (value is None, value) if not item.descending else (value is not None, value)

        rows.sort(key=sort_key, reverse=item.descending)


def _projection(
    tv: TableVersion, items: tuple[SelectItem, ...] | None
) -> tuple[tuple[SelectItem, ...], tuple[tuple, ...]]:
    """Resolve the select list and build the cursor ``description``
    (7-tuples per PEP 249; only name and type_code are populated)."""
    schema = tv.schema
    if items is None:
        items = tuple(SelectItem(ColumnRef(column.name)) for column in schema.columns)
    description = []
    for item in items:
        type_code = None
        expression = item.expression
        if isinstance(expression, ColumnRef):
            if schema.has_column(expression.name):
                type_code = schema.column(expression.name).dtype
            elif expression.name == ROWID and rowid_exposed(tv):
                type_code = DataType.INTEGER
            else:
                raise ProgrammingError(
                    f"table {tv.name!r} has no column {expression.name!r}"
                )
        description.append((item.output_name, type_code, None, None, None, None, None))
    return items, tuple(description)


def execute_select(
    engine: "InVerDa", version: SchemaVersion, stmt: Select, params: tuple
) -> StatementResult:
    tv = resolve_table(version, stmt.table)
    items, description = _projection(tv, stmt.items)
    if stmt.param_count:
        items = tuple(
            SelectItem(bind_expression(item.expression, params), item.alias)
            for item in items
        )
    where = bind_expression(stmt.where, params) if stmt.where is not None else None
    order_by = tuple(
        OrderItem(bind_expression(item.expression, params), item.descending)
        for item in stmt.order_by
    )
    predicate = _where_predicate(where)
    matched = [
        entry
        for entry in visible_rows(engine, tv, with_rowid=True)
        if predicate(entry[1])
    ]
    _sort_rows(matched, order_by)
    if stmt.offset is not None:
        # Negative offsets clamp to 0 (as in SQLite), never a tail slice.
        offset = max(_int_clause(bind_expression(stmt.offset, params), "OFFSET"), 0)
        matched = matched[offset:]
    if stmt.limit is not None:
        limit = _int_clause(bind_expression(stmt.limit, params), "LIMIT")
        if limit >= 0:
            matched = matched[:limit]
    rows = [
        tuple(_evaluate_scalar(item.expression, mapping) for item in items)
        for _key, mapping in matched
    ]
    return StatementResult(description=description, rows=rows, rowcount=len(rows))


def build_insert_mappings(
    version: SchemaVersion, stmt: Insert, params: tuple
) -> tuple[TableVersion, list[RowMapping]]:
    """Evaluate an INSERT's VALUES tuples into column->value mappings."""
    tv = resolve_table(version, stmt.table)
    schema = tv.schema
    if stmt.columns is not None:
        columns = stmt.columns
        for name in columns:
            if not schema.has_column(name):
                raise ProgrammingError(f"table {tv.name!r} has no column {name!r}")
    else:
        columns = schema.column_names
    mappings: list[RowMapping] = []
    for values in stmt.rows:
        if len(values) != len(columns):
            raise ProgrammingError(
                f"row has {len(values)} values; INSERT expects {len(columns)}"
            )
        mappings.append(
            {
                name: _evaluate_scalar(bind_expression(expression, params), {})
                for name, expression in zip(columns, values)
            }
        )
    return tv, mappings


def execute_insert(
    engine: "InVerDa", version: SchemaVersion, stmt: Insert, params: tuple
) -> StatementResult:
    tv, mappings = build_insert_mappings(version, stmt, params)
    keys = insert_rows(engine, tv, mappings)
    return StatementResult(rowcount=len(keys), lastrowid=keys[-1] if keys else None)


def execute_update(
    engine: "InVerDa", version: SchemaVersion, stmt: Update, params: tuple
) -> StatementResult:
    tv = resolve_table(version, stmt.table)
    schema = tv.schema
    assignments = []
    for name, expression in stmt.assignments:
        if not schema.has_column(name):
            raise ProgrammingError(f"table {tv.name!r} has no column {name!r}")
        if name == tv.key_column:
            raise AccessError(
                f"column {name!r} of {tv.name!r} is the generated "
                "identifier and cannot be updated"
            )
        assignments.append((name, bind_expression(expression, params)))
    where = bind_expression(stmt.where, params) if stmt.where is not None else None

    def transform(mapping: RowMapping) -> Mapping[str, Any]:
        return {
            name: _evaluate_scalar(expression, mapping)
            for name, expression in assignments
        }

    count = update_rows(
        engine, tv, _where_predicate(where), transform, with_rowid=True
    )
    return StatementResult(rowcount=count)


def execute_delete(
    engine: "InVerDa", version: SchemaVersion, stmt: Delete, params: tuple
) -> StatementResult:
    tv = resolve_table(version, stmt.table)
    where = bind_expression(stmt.where, params) if stmt.where is not None else None
    count = delete_rows(engine, tv, _where_predicate(where), with_rowid=True)
    return StatementResult(rowcount=count)


def execute_statement(
    engine: "InVerDa", version: SchemaVersion, stmt: SqlStatement, params: tuple
) -> StatementResult:
    if isinstance(stmt, Select):
        return execute_select(engine, version, stmt, params)
    if isinstance(stmt, Insert):
        return execute_insert(engine, version, stmt, params)
    if isinstance(stmt, Update):
        return execute_update(engine, version, stmt, params)
    if isinstance(stmt, Delete):
        return execute_delete(engine, version, stmt, params)
    raise ProgrammingError(f"cannot execute {type(stmt).__name__} here")


class MemoryPlan:
    """A cached statement plan for the in-memory engine.

    Execution on this backend *is* the engine's row-level routing, so the
    plan body only pins what is pure per statement text: the parsed AST,
    the resolved table version (validated at compile time), and for
    SELECTs the prebuilt cursor ``description``.
    """

    _KINDS = {Select: "select", Insert: "insert", Update: "update", Delete: "delete"}

    def __init__(self, version: SchemaVersion, stmt: SqlStatement):
        kind = self._KINDS.get(type(stmt))
        if kind is None:
            raise ProgrammingError(f"cannot execute {type(stmt).__name__} here")
        self.kind = kind
        self.version = version
        self.stmt = stmt
        self.param_count = stmt.param_count
        # Validate table (and, for SELECT, projection) once at compile time
        # so a cached plan and a cold execution fail identically.
        tv = resolve_table(version, stmt.table)
        if isinstance(stmt, Select):
            _projection(tv, stmt.items)

    def run(self, engine: "InVerDa", params: tuple) -> StatementResult:
        return execute_statement(engine, self.version, self.stmt, params)

    def explain_entries(self) -> list[tuple[str, str]]:
        tv = resolve_table(self.version, self.stmt.table)
        return [
            ("plan", type(self).__name__),
            ("table_version", tv.name),
            ("routing", "engine row-level routing (memory backend)"),
        ]

    def run_many(self, engine: "InVerDa", seq_of_params) -> StatementResult:
        """Bulk-load fast path (``seq_of_params`` rows are already-
        normalized tuples): evaluate every parameter row's VALUES, then
        insert them as ONE change batch (a single propagation pass through
        the version genealogy)."""
        assert isinstance(self.stmt, Insert)
        tv = None
        mappings: list[RowMapping] = []
        for params in seq_of_params:
            tv, row_mappings = build_insert_mappings(
                self.version, self.stmt, params
            )
            mappings.extend(row_mappings)
        keys = insert_rows(engine, tv, mappings) if tv is not None else []
        return StatementResult(
            rowcount=len(keys), lastrowid=keys[-1] if keys else None
        )


def compile_statement_memory(version: SchemaVersion, stmt: SqlStatement) -> MemoryPlan:
    return MemoryPlan(version, stmt)
