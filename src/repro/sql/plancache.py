"""A shared parse/plan cache for the statement hot path.

Executing a statement costs three things before any row is touched:
parsing the SQL text, resolving it against the bound schema version, and
lowering it to an executable plan (on the live SQLite backend: rendered
backend SQL plus the prepared ``description``).  All three are pure
functions of ``(sql_text, version, backend, catalog state)`` — so the
engine keeps one :class:`PlanCache` shared by **every** connection of
both transports (in-process and the TCP server's server-side
connections), and repeated statements skip parsing and planning entirely.

Catalog state is summarized by the engine's monotonic
``catalog_generation``, bumped under the catalog write lock on every
transition (evolution, ``MATERIALIZE``, drop).  Each cache entry records
the generation it was compiled under; a lookup whose generation does not
match is a miss (the stale entry is dropped on the spot).  The cache is
additionally registered as a catalog listener, so a transition clears it
wholesale — a connection that executes, evolves, and re-executes the same
SQL text always sees the new catalog.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

#: Cache key: (sql_text, schema version name, backend kind).
PlanKey = tuple[str, str, str]


@dataclass
class DdlPlan:
    """A parsed BiDEL DDL script (executed through the engine, not the
    data plane); cached so repeated DDL text skips the parse."""

    statement: Any  # repro.sql.ast.BidelStatement
    kind: str = "ddl"
    param_count: int = 0


class PlanCache:
    """Thread-safe LRU of compiled statement plans.

    Entries are keyed by ``(sql_text, version_uid, backend_kind)`` and
    tagged with the catalog generation they were compiled under; a
    generation mismatch invalidates the entry lazily, and catalog
    transitions clear the cache eagerly via the engine's catalog-listener
    hook.  Hit/miss counters feed ``Connection.stats()`` and the session
    pool's observability surface.
    """

    def __init__(self, maxsize: int = 512):
        self.maxsize = maxsize
        self._lock = threading.Lock()
        self._entries: OrderedDict[PlanKey, tuple[int, Any]] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._invalidations = 0
        self._events = None  # repro_plan_cache_events_total, once bound

    def bind_metrics(self, registry) -> None:
        """Mirror hit/miss/invalidation counts into the metrics registry
        (labeled series ``repro_plan_cache_events_total{event}``)."""
        self._events = registry.counter(
            "repro_plan_cache_events_total",
            "Plan cache events by outcome.",
            ("event",),
        )

    def get(self, key: PlanKey, generation: int):
        """The cached plan for ``key`` compiled under ``generation``, or
        ``None`` (stale entries are evicted as they are found)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry[0] == generation:
                self._entries.move_to_end(key)
                self._hits += 1
                hit = True
                plan = entry[1]
            else:
                if entry is not None:
                    del self._entries[key]
                self._misses += 1
                hit = False
                plan = None
        if self._events is not None:
            self._events.inc(event="hit" if hit else "miss")
        return plan

    def peek(self, key: PlanKey, generation: int):
        """Like :meth:`get` but with no counter or LRU side effects —
        used by ``EXPLAIN`` to report whether a plan is cached."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry[0] == generation:
                return entry[1]
            return None

    def put(self, key: PlanKey, generation: int, plan: Any) -> None:
        with self._lock:
            self._entries[key] = (generation, plan)
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def on_catalog_event(self, event: str, **info) -> None:
        """Catalog-listener hook: any transition invalidates every plan
        (the generation tag already protects correctness; clearing keeps
        the cache from carrying dead weight)."""
        with self._lock:
            self._entries.clear()
            self._invalidations += 1
        if self._events is not None:
            self._events.inc(event="invalidation")

    def stats(self) -> dict:
        """Hit/miss/size counters (surfaced through ``Connection.stats()``
        and ``SessionPool.stats()``)."""
        with self._lock:
            total = self._hits + self._misses
            return {
                "hits": self._hits,
                "misses": self._misses,
                "hit_rate": (self._hits / total) if total else 0.0,
                "size": len(self._entries),
                "maxsize": self.maxsize,
                "invalidations": self._invalidations,
            }
