"""Parser for the SQL dialect of the DB-API layer.

Reuses the shared tokenizer (:mod:`repro.expr.lexer`) and embeds the
expression parser, extended to accept ``?`` parameter placeholders.
Grammar (keywords case-insensitive)::

    statement := select | insert | update | delete | bidel_script
    select    := SELECT ('*' | item (',' item)*) FROM table
                 [WHERE expr]
                 [ORDER BY expr [ASC|DESC] (',' expr [ASC|DESC])*]
                 [LIMIT expr [OFFSET expr]]
    item      := expr [AS name]
    insert    := INSERT INTO table ['(' name (',' name)* ')']
                 VALUES tuple (',' tuple)*
    tuple     := '(' expr (',' expr)* ')'
    update    := UPDATE table SET name '=' expr (',' name '=' expr)*
                 [WHERE expr]
    delete    := DELETE FROM table [WHERE expr]

A script starting with ``CREATE SCHEMA VERSION``, ``DROP SCHEMA VERSION``,
or ``MATERIALIZE`` is recognized as BiDEL DDL and returned as a
:class:`~repro.sql.ast.BidelStatement` for verbatim pass-through to the
engine (those scripts may contain multiple ``;``-separated statements).
"""

from __future__ import annotations

from functools import lru_cache

from repro.errors import ParseError, ProgrammingError
from repro.expr import lexer
from repro.expr.ast import Expression
from repro.expr.lexer import Token, tokenize
from repro.expr.parser import ExpressionParser
from repro.sql.ast import (
    BidelStatement,
    Check,
    Delete,
    Explain,
    Insert,
    OrderItem,
    Parameter,
    Select,
    SelectItem,
    SqlStatement,
    Update,
)

_CLAUSE_KEYWORDS = {
    "FROM", "WHERE", "ORDER", "BY", "LIMIT", "OFFSET", "AS", "ASC", "DESC",
    "SET", "VALUES", "INTO", "SELECT", "INSERT", "UPDATE", "DELETE",
}


class _ParamCounter:
    """Assigns consecutive indexes to ``?`` placeholders across all the
    expression slots of one statement."""

    def __init__(self) -> None:
        self.count = 0

    def next_index(self) -> int:
        index = self.count
        self.count += 1
        return index


class SqlExpressionParser(ExpressionParser):
    """The shared expression parser plus ``?`` placeholders.

    Clause keywords (FROM, LIMIT, ...) are not treated as column names, so
    a missing WHERE operand fails with a clear error instead of silently
    consuming the next clause's keyword.
    """

    def __init__(self, tokens: list[Token], position: int, counter: _ParamCounter):
        super().__init__(tokens, position)
        self._counter = counter

    def _primary(self) -> Expression:
        token = self._peek()
        if token.kind == lexer.PARAM:
            self._next()
            return Parameter(self._counter.next_index())
        if token.kind == lexer.IDENT and token.value.upper() in _CLAUSE_KEYWORDS:
            raise self._error(f"unexpected keyword {token.value!r} in expression")
        return super()._primary()


class SqlParser:
    def __init__(self, text: str):
        self._text = text
        self._tokens = tokenize(text)
        self._position = 0
        self._params = _ParamCounter()

    # -- token helpers -----------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._position + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _next(self) -> Token:
        token = self._tokens[self._position]
        if token.kind != lexer.EOF:
            self._position += 1
        return token

    def _error(self, message: str) -> ParseError:
        token = self._peek()
        return ParseError(message, token.line, token.column)

    def _accept_keyword(self, word: str) -> bool:
        if self._peek().matches_keyword(word):
            self._next()
            return True
        return False

    def _expect_keyword(self, word: str) -> None:
        if not self._accept_keyword(word):
            raise self._error(f"expected {word}, found {self._peek().value!r}")

    def _expect(self, kind: str, what: str) -> Token:
        if self._peek().kind != kind:
            raise self._error(f"expected {what}, found {self._peek().value!r}")
        return self._next()

    def _identifier(self, what: str) -> str:
        token = self._expect(lexer.IDENT, what)
        return token.value

    def _expression(self) -> Expression:
        parser = SqlExpressionParser(self._tokens, self._position, self._params)
        expression = parser.parse()
        self._position = parser.position
        return expression

    def _end_of_statement(self) -> None:
        while self._peek().kind == lexer.SEMICOLON:
            self._next()
        token = self._peek()
        if token.kind != lexer.EOF:
            raise self._error(f"unexpected trailing input {token.value!r}")

    # -- statements --------------------------------------------------------

    def parse_statement(self) -> SqlStatement:
        token = self._peek()
        if token.kind != lexer.IDENT:
            raise self._error("empty or malformed statement")
        if self._is_bidel_script():
            return BidelStatement(self._text)
        if token.value.upper() == "CHECK":
            self._next()
            if not self._is_bidel_script():
                raise self._error(
                    "CHECK applies to BiDEL DDL (CREATE/DROP SCHEMA "
                    "VERSION, MATERIALIZE)"
                )
            return Check(script=self._script_tail())
        if token.value.upper() == "EXPLAIN":
            self._next()
            if self._is_bidel_script():
                raise self._error(
                    "EXPLAIN applies to SELECT, INSERT, UPDATE, or DELETE, "
                    "not to BiDEL DDL"
                )
            return Explain(statement=self._dml_statement())
        return self._dml_statement()

    def _dml_statement(self) -> SqlStatement:
        token = self._peek()
        head = token.value.upper() if token.kind == lexer.IDENT else ""
        if head == "SELECT":
            return self._select()
        if head == "INSERT":
            return self._insert()
        if head == "UPDATE":
            return self._update()
        if head == "DELETE":
            return self._delete()
        raise self._error(
            f"unsupported statement {token.value!r}; expected SELECT, INSERT, "
            "UPDATE, DELETE, EXPLAIN, or BiDEL DDL"
        )

    def _script_tail(self) -> str:
        """The source text from the current token onward — the BiDEL
        script wrapped by a CHECK prefix, passed through verbatim."""
        token = self._peek()
        lines = self._text.splitlines(keepends=True)
        offset = sum(len(line) for line in lines[:token.line - 1])
        return self._text[offset + token.column - 1:]

    def _is_bidel_script(self) -> bool:
        first, second, third = self._peek(0), self._peek(1), self._peek(2)
        if first.matches_keyword("MATERIALIZE"):
            return True
        return (
            (first.matches_keyword("CREATE") or first.matches_keyword("DROP"))
            and second.matches_keyword("SCHEMA")
            and third.matches_keyword("VERSION")
        )

    def _select(self) -> Select:
        self._expect_keyword("SELECT")
        items: tuple[SelectItem, ...] | None
        token = self._peek()
        if token.kind == lexer.OP and token.value == "*":
            self._next()
            items = None
        else:
            collected = [self._select_item()]
            while self._peek().kind == lexer.COMMA:
                self._next()
                collected.append(self._select_item())
            items = tuple(collected)
        self._expect_keyword("FROM")
        table = self._identifier("table name")
        where = self._where_clause()
        order_by: list[OrderItem] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._order_item())
            while self._peek().kind == lexer.COMMA:
                self._next()
                order_by.append(self._order_item())
        limit = offset = None
        if self._accept_keyword("LIMIT"):
            limit = self._expression()
            if self._accept_keyword("OFFSET"):
                offset = self._expression()
        self._end_of_statement()
        return Select(
            table=table,
            items=items,
            where=where,
            order_by=tuple(order_by),
            limit=limit,
            offset=offset,
            param_count=self._params.count,
        )

    def _select_item(self) -> SelectItem:
        expression = self._expression()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._identifier("alias")
        return SelectItem(expression, alias)

    def _order_item(self) -> OrderItem:
        expression = self._expression()
        descending = False
        if self._accept_keyword("DESC"):
            descending = True
        else:
            self._accept_keyword("ASC")
        return OrderItem(expression, descending)

    def _where_clause(self) -> Expression | None:
        if self._accept_keyword("WHERE"):
            return self._expression()
        return None

    def _insert(self) -> Insert:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._identifier("table name")
        columns: tuple[str, ...] | None = None
        if self._peek().kind == lexer.LPAREN:
            self._next()
            names = [self._identifier("column name")]
            while self._peek().kind == lexer.COMMA:
                self._next()
                names.append(self._identifier("column name"))
            self._expect(lexer.RPAREN, "')'")
            columns = tuple(names)
        self._expect_keyword("VALUES")
        rows = [self._value_tuple()]
        while self._peek().kind == lexer.COMMA:
            self._next()
            rows.append(self._value_tuple())
        self._end_of_statement()
        return Insert(
            table=table,
            columns=columns,
            rows=tuple(rows),
            param_count=self._params.count,
        )

    def _value_tuple(self) -> tuple[Expression, ...]:
        self._expect(lexer.LPAREN, "'('")
        values = [self._expression()]
        while self._peek().kind == lexer.COMMA:
            self._next()
            values.append(self._expression())
        self._expect(lexer.RPAREN, "')'")
        return tuple(values)

    def _update(self) -> Update:
        self._expect_keyword("UPDATE")
        table = self._identifier("table name")
        self._expect_keyword("SET")
        assignments = [self._assignment()]
        while self._peek().kind == lexer.COMMA:
            self._next()
            assignments.append(self._assignment())
        where = self._where_clause()
        self._end_of_statement()
        return Update(
            table=table,
            assignments=tuple(assignments),
            where=where,
            param_count=self._params.count,
        )

    def _assignment(self) -> tuple[str, Expression]:
        name = self._identifier("column name")
        token = self._peek()
        if token.kind != lexer.OP or token.value != "=":
            raise self._error(f"expected '=', found {token.value!r}")
        self._next()
        return name, self._expression()

    def _delete(self) -> Delete:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._identifier("table name")
        where = self._where_clause()
        self._end_of_statement()
        return Delete(table=table, where=where, param_count=self._params.count)


#: Counter hook: how often the execution layer asked for a parse
#: (``requests``) and how often a parse actually ran (``parses``, i.e.
#: text-cache misses).  The plan cache's regression tests assert on these
#: — a cached plan must not even *request* a parse.
parse_counters = {"requests": 0, "parses": 0}


def reset_parse_counters() -> None:
    parse_counters["requests"] = 0
    parse_counters["parses"] = 0


@lru_cache(maxsize=512)
def _parse_statement_cached(text: str) -> SqlStatement:
    parse_counters["parses"] += 1
    try:
        return SqlParser(text).parse_statement()
    except ParseError as exc:
        raise ProgrammingError(str(exc)) from exc


def parse_statement(text: str) -> SqlStatement:
    """Parse one SQL statement (or a BiDEL DDL script) into its AST.

    Results are cached: statements are immutable, so repeated execution of
    the same text (the common case for parameterized workloads) skips the
    parse entirely.
    """
    parse_counters["requests"] += 1
    return _parse_statement_cached(text)
