"""SPLIT and MERGE: the horizontal partitioning SMOs (Section 4).

Both SMOs share one lens between a *unified* side (one table ``U``) and a
*partitioned* side (tables ``R`` and optionally ``S`` with conditions
``cR``/``cS``). For SPLIT the unified side is the source; for MERGE it is
the target — the rule sets are exactly mirrored, which is how the paper
argues MERGE's bidirectionality from SPLIT's (Appendix A, last paragraph).

Auxiliary tables (living on the unified side, Rules 21–25):

- ``Rminus``/``Sminus`` — keys of *lost twins* (deleted from one partition
  while the twin survives in the other);
- ``Splus`` — full rows of *separated twins* (same key, diverged payload;
  ``R`` is the primus inter pares and its row is the one stored in ``U``);
- ``Rstar``/``Sstar`` — keys of partition rows violating their partition's
  condition (inserted through the partitioned side);
- ``Uprime`` (the paper's ``T'``) on the partitioned side — rows of ``U``
  matching neither condition.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bidel.ast import Merge, Split
from repro.bidel.smo.base import (
    KeyedRows,
    MapContext,
    SideState,
    SmoSemantics,
    TableChange,
    evaluate_condition,
    require,
)
from repro.datalog.ast import Atom, Compare, CondLit, Rule, RuleSet, Var, wildcard
from repro.expr.ast import Expression
from repro.relational.schema import TableSchema
from repro.relational.table import Key, Row

EMPTY_SCHEMA_COLUMNS: tuple = ()


@dataclass(frozen=True)
class _Roles:
    """Role names of the partition lens as seen from one SMO."""

    unified: str
    first: str
    second: str | None
    uprime: str = "Uprime"
    rminus: str = "Rminus"
    rstar: str = "Rstar"
    splus: str = "Splus"
    sminus: str = "Sminus"
    sstar: str = "Sstar"


class _PartitionLens:
    """Executable semantics of the unified↔partitioned lens."""

    def __init__(
        self,
        roles: _Roles,
        schema: TableSchema,
        c_first: Expression,
        c_second: Expression | None,
    ):
        self.roles = roles
        self.schema = schema
        self.c_first = c_first
        self.c_second = c_second

    # -- condition helpers -------------------------------------------------

    def _cr(self, row: Row) -> bool:
        return evaluate_condition(self.c_first, self.schema, row)

    def _cs(self, row: Row) -> bool:
        return self.c_second is not None and evaluate_condition(
            self.c_second, self.schema, row
        )

    # -- full-state maps (Rules 12–17 and 18–25) ---------------------------

    def partition(self, ctx: MapContext) -> SideState:
        """Unified side (+ its aux) → partitioned side (Rules 12–17)."""
        roles = self.roles
        unified = ctx.read(roles.unified)
        rminus = ctx.read(roles.rminus)
        rstar = ctx.read(roles.rstar)
        splus = ctx.read(roles.splus)
        sminus = ctx.read(roles.sminus)
        sstar = ctx.read(roles.sstar)

        first: KeyedRows = {}
        second: KeyedRows = {}
        uprime: KeyedRows = {}
        for key, row in unified.items():
            in_first = (self._cr(row) and key not in rminus) or key in rstar
            if in_first:
                first[key] = row
            if self.roles.second is not None:
                if key in splus:
                    pass  # handled below: the separated twin wins
                elif (self._cs(row) and key not in sminus) or key in sstar:
                    second[key] = row
            if (
                not self._cr(row)
                and not self._cs(row)
                and key not in rstar
                and key not in sstar
            ):
                uprime[key] = row
        for key, row in splus.items():
            second[key] = row

        result: SideState = {roles.first: first, roles.uprime: uprime}
        if roles.second is not None:
            result[roles.second] = second
        return result

    def unify(self, ctx: MapContext) -> SideState:
        """Partitioned side (+ Uprime) → unified side (Rules 18–25)."""
        roles = self.roles
        first = ctx.read(roles.first)
        second = ctx.read(roles.second) if roles.second is not None else {}
        uprime = ctx.read(roles.uprime)

        unified: KeyedRows = dict(first)
        for key, row in second.items():
            unified.setdefault(key, row)  # R is the primus inter pares
        for key, row in uprime.items():
            unified.setdefault(key, row)

        rminus: KeyedRows = {}
        rstar: KeyedRows = {}
        splus: KeyedRows = {}
        sminus: KeyedRows = {}
        sstar: KeyedRows = {}
        for key, row in first.items():
            if not self._cr(row):
                rstar[key] = ()
            if roles.second is not None and key not in second and self._cs(row):
                sminus[key] = ()
        for key, row in second.items():
            if key not in first and self._cr(row):
                rminus[key] = ()
            if not self._cs(row):
                sstar[key] = ()
            twin = first.get(key)
            if twin is not None and twin != row:
                splus[key] = row

        result: SideState = {roles.unified: unified, roles.rstar: rstar}
        if roles.second is not None:
            result[roles.rminus] = rminus
            result[roles.splus] = splus
            result[roles.sminus] = sminus
            result[roles.sstar] = sstar
        return result

    # -- key-local write propagation ----------------------------------------

    def propagate_to_partitions(
        self, change: TableChange, ctx: MapContext
    ) -> dict[str, TableChange]:
        """Writes on the unified side with the partitioned side stored.

        The stored partitioned side implies the unified-side aux tables are
        empty (they exist only when the unified side is materialized), so
        placement is the plain condition test — exactly the paper's derived
        update Rules 52–54.
        """
        roles = self.roles
        first = TableChange()
        second = TableChange()
        uprime = TableChange()
        for key in change.deletes:
            first.deletes.add(key)
            second.deletes.add(key)
            uprime.deletes.add(key)
        for key, row in change.upserts.items():
            if self._cr(row):
                first.upserts[key] = row
            else:
                first.deletes.add(key)
            if roles.second is not None:
                if self._cs(row):
                    second.upserts[key] = row
                else:
                    second.deletes.add(key)
            if not self._cr(row) and not self._cs(row):
                uprime.upserts[key] = row
            else:
                uprime.deletes.add(key)
        result = {roles.first: first, roles.uprime: uprime}
        if roles.second is not None:
            result[roles.second] = second
        return result

    def propagate_to_unified(
        self, changes: dict[str, TableChange], ctx: MapContext
    ) -> dict[str, TableChange]:
        """Writes on the partitioned side with the unified side stored.

        Per affected key, compute the post-write partition rows ``R'``/``S'``
        and re-derive the unified row plus all aux memberships (Rules 18–25
        restricted to that key)."""
        roles = self.roles
        first_change = changes.get(roles.first, TableChange())
        second_change = changes.get(roles.second, TableChange()) if roles.second else TableChange()
        keys = first_change.keys() | second_change.keys()
        if not keys:
            return {}

        current_first = ctx.read_keys(roles.first, keys)
        current_second = (
            ctx.read_keys(roles.second, keys) if roles.second is not None else {}
        )
        unified_stored = ctx.read_keys(roles.unified, keys)

        unified = TableChange()
        rminus = TableChange()
        rstar = TableChange()
        splus = TableChange()
        sminus = TableChange()
        sstar = TableChange()

        for key in keys:
            new_first = current_first.get(key)
            new_second = current_second.get(key)
            if key in first_change.deletes:
                new_first = None
            elif key in first_change.upserts:
                new_first = first_change.upserts[key]
            if key in second_change.deletes:
                new_second = None
            elif key in second_change.upserts:
                new_second = second_change.upserts[key]

            # Unified row: R wins, then S, then an invisible Uprime row
            # (a stored unified row matching neither condition stays put).
            if new_first is not None:
                unified.upserts[key] = new_first
            elif new_second is not None:
                unified.upserts[key] = new_second
            else:
                stored = unified_stored.get(key)
                if stored is not None and not self._cr(stored) and not self._cs(stored):
                    pass  # key only ever lived in Uprime; leave it alone
                else:
                    unified.deletes.add(key)

            # Aux memberships (Rules 21–25) for this key.
            def member(change: TableChange, present: bool, payload: Row | None = None) -> None:
                if present:
                    change.upserts[key] = payload if payload is not None else ()
                else:
                    change.deletes.add(key)

            member(rstar, new_first is not None and not self._cr(new_first))
            if roles.second is not None:
                member(
                    rminus,
                    new_second is not None and new_first is None and self._cr(new_second),
                )
                member(
                    splus,
                    new_first is not None
                    and new_second is not None
                    and new_first != new_second,
                    new_second,
                )
                member(
                    sminus,
                    new_first is not None and new_second is None and self._cs(new_first),
                )
                member(sstar, new_second is not None and not self._cs(new_second))

        result = {roles.unified: unified, roles.rstar: rstar}
        if roles.second is not None:
            result[roles.rminus] = rminus
            result[roles.splus] = splus
            result[roles.sminus] = sminus
            result[roles.sstar] = sstar
        return result

    # -- Datalog rules (Rules 12–25, instantiated) ---------------------------

    def partition_rules(self, name: str) -> RuleSet:
        roles = self.roles
        key = Var("p")
        payload = tuple(Var(f"x{i}") for i in range(self.schema.arity))
        columns = self.schema.column_names

        def cond(expr: Expression, positive: bool) -> CondLit:
            return CondLit(
                "c", expr, tuple(zip(columns, payload)), positive
            )

        first_body: list = [Atom(roles.unified, (key, *payload)), cond(self.c_first, True)]
        if roles.second is not None:
            # Lost twins can only exist when there is a second partition.
            first_body.append(Atom(roles.rminus, (key,), False))
        rules = [
            Rule(Atom(roles.first, (key, *payload)), tuple(first_body)),
            Rule(
                Atom(roles.first, (key, *payload)),
                (Atom(roles.unified, (key, *payload)), Atom(roles.rstar, (key,))),
            ),
        ]
        if roles.second is not None and self.c_second is not None:
            rules.extend(
                [
                    Rule(
                        Atom(roles.second, (key, *payload)),
                        (
                            Atom(roles.unified, (key, *payload)),
                            cond(self.c_second, True),
                            Atom(roles.sminus, (key,), False),
                            Atom(roles.splus, (key, *(wildcard() for _ in payload)), False),
                        ),
                    ),
                    Rule(
                        Atom(roles.second, (key, *payload)),
                        (Atom(roles.splus, (key, *payload)),),
                    ),
                    Rule(
                        Atom(roles.second, (key, *payload)),
                        (
                            Atom(roles.unified, (key, *payload)),
                            Atom(roles.sstar, (key,)),
                            Atom(roles.splus, (key, *(wildcard() for _ in payload)), False),
                        ),
                    ),
                ]
            )
        uprime_body = [
            Atom(roles.unified, (key, *payload)),
            cond(self.c_first, False),
        ]
        if roles.second is not None and self.c_second is not None:
            uprime_body.append(cond(self.c_second, False))
        uprime_body.append(Atom(roles.rstar, (key,), False))
        if roles.second is not None:
            uprime_body.append(Atom(roles.sstar, (key,), False))
        rules.append(Rule(Atom(roles.uprime, (key, *payload)), tuple(uprime_body)))
        return RuleSet(tuple(rules), name=name)

    def unify_rules(self, name: str) -> RuleSet:
        roles = self.roles
        key = Var("p")
        payload = tuple(Var(f"x{i}") for i in range(self.schema.arity))
        payload2 = tuple(Var(f"y{i}") for i in range(self.schema.arity))
        columns = self.schema.column_names

        def cond(expr: Expression, positive: bool, terms) -> CondLit:
            return CondLit("c", expr, tuple(zip(columns, terms)), positive)

        rules = [
            Rule(Atom(roles.unified, (key, *payload)), (Atom(roles.first, (key, *payload)),)),
        ]
        if roles.second is not None and self.c_second is not None:
            rules.append(
                Rule(
                    Atom(roles.unified, (key, *payload)),
                    (
                        Atom(roles.second, (key, *payload)),
                        Atom(roles.first, (key, *(wildcard() for _ in payload)), False),
                    ),
                )
            )
        # An invisible unified row surfaces only when no partition holds the
        # key (R, then S, is the primus inter pares — matching unify()).
        uprime_body: list = [
            Atom(roles.uprime, (key, *payload)),
            Atom(roles.first, (key, *(wildcard() for _ in payload)), False),
        ]
        if roles.second is not None:
            uprime_body.append(
                Atom(roles.second, (key, *(wildcard() for _ in payload)), False)
            )
        rules.append(Rule(Atom(roles.unified, (key, *payload)), tuple(uprime_body)))
        rules.append(
            Rule(
                Atom(roles.rstar, (key,)),
                (Atom(roles.first, (key, *payload)), cond(self.c_first, False, payload)),
            )
        )
        if roles.second is not None and self.c_second is not None:
            rules.extend(
                [
                    Rule(
                        Atom(roles.rminus, (key,)),
                        (
                            Atom(roles.second, (key, *payload)),
                            Atom(roles.first, (key, *(wildcard() for _ in payload)), False),
                            cond(self.c_first, True, payload),
                        ),
                    ),
                    Rule(
                        Atom(roles.splus, (key, *payload)),
                        (
                            Atom(roles.second, (key, *payload)),
                            Atom(roles.first, (key, *payload2)),
                            Compare("!=", payload, payload2),
                        ),
                    ),
                    Rule(
                        Atom(roles.sminus, (key,)),
                        (
                            Atom(roles.first, (key, *payload)),
                            Atom(roles.second, (key, *(wildcard() for _ in payload)), False),
                            cond(self.c_second, True, payload),
                        ),
                    ),
                    Rule(
                        Atom(roles.sstar, (key,)),
                        (Atom(roles.second, (key, *payload)), cond(self.c_second, False, payload)),
                    ),
                ]
            )
        return RuleSet(tuple(rules), name=name)


def _aux_schemas(roles: _Roles, schema: TableSchema, *, unified_side: bool) -> dict[str, TableSchema]:
    """Aux tables for one side of the lens."""
    key_only = TableSchema("aux", EMPTY_SCHEMA_COLUMNS)
    if unified_side:
        aux = {roles.rstar: key_only.with_name(roles.rstar)}
        if roles.second is not None:
            aux[roles.rminus] = key_only.with_name(roles.rminus)
            aux[roles.splus] = schema.with_name(roles.splus)
            aux[roles.sminus] = key_only.with_name(roles.sminus)
            aux[roles.sstar] = key_only.with_name(roles.sstar)
        return aux
    return {roles.uprime: schema.with_name(roles.uprime)}


class SplitSemantics(SmoSemantics):
    """``SPLIT TABLE T INTO R WITH cR [, S WITH cS]``."""

    node: Split

    source_roles = ("U",)

    def __init__(self, node: Split, source_schemas):
        self.target_roles = ("R",) if node.second_table is None else ("R", "S")
        super().__init__(node, source_schemas)
        roles = _Roles(
            unified="U",
            first="R",
            second=None if node.second_table is None else "S",
        )
        self._lens = _PartitionLens(
            roles, source_schemas[0], node.first_condition, node.second_condition
        )

    def validate(self) -> None:
        for condition in (self.node.first_condition, self.node.second_condition):
            if condition is None:
                continue
            unknown = condition.columns() - set(self.source_schemas[0].column_names)
            require(not unknown, f"SPLIT condition references unknown columns: {sorted(unknown)}")

    def target_schemas(self) -> tuple[TableSchema, ...]:
        base = self.source_schemas[0]
        schemas = [base.with_name(self.node.first_table)]
        if self.node.second_table is not None:
            schemas.append(base.with_name(self.node.second_table))
        return tuple(schemas)

    def aux_src(self) -> dict[str, TableSchema]:
        return _aux_schemas(self._lens.roles, self.source_schemas[0], unified_side=True)

    def aux_tgt(self) -> dict[str, TableSchema]:
        return _aux_schemas(self._lens.roles, self.source_schemas[0], unified_side=False)

    def map_forward(self, ctx: MapContext) -> SideState:
        return self._lens.partition(ctx)

    def map_backward(self, ctx: MapContext) -> SideState:
        return self._lens.unify(ctx)

    def propagate_forward(self, changes, ctx):
        change = changes.get("U")
        if change is None:
            return {}
        return self._lens.propagate_to_partitions(change, ctx)

    def propagate_backward(self, changes, ctx):
        return self._lens.propagate_to_unified(changes, ctx)

    def gamma_tgt_rules(self) -> RuleSet:
        return self._lens.partition_rules("split.gamma_tgt")

    def gamma_src_rules(self) -> RuleSet:
        return self._lens.unify_rules("split.gamma_src")


class MergeSemantics(SmoSemantics):
    """``MERGE TABLE R (cR), S (cS) INTO T`` — the mirrored lens."""

    node: Merge

    source_roles = ("R", "S")
    target_roles = ("U",)

    def __init__(self, node: Merge, source_schemas):
        super().__init__(node, source_schemas)
        roles = _Roles(unified="U", first="R", second="S")
        self._lens = _PartitionLens(
            roles, source_schemas[0], node.first_condition, node.second_condition
        )

    def validate(self) -> None:
        first, second = self.source_schemas
        require(
            first.column_names == second.column_names,
            "MERGE requires union-compatible tables "
            f"({first.column_names} vs {second.column_names})",
        )
        for schema, condition in (
            (first, self.node.first_condition),
            (second, self.node.second_condition),
        ):
            unknown = condition.columns() - set(schema.column_names)
            require(not unknown, f"MERGE condition references unknown columns: {sorted(unknown)}")

    def target_schemas(self) -> tuple[TableSchema, ...]:
        return (self.source_schemas[0].with_name(self.node.target),)

    def aux_src(self) -> dict[str, TableSchema]:
        # For MERGE the partitioned side is the source.
        return _aux_schemas(self._lens.roles, self.source_schemas[0], unified_side=False)

    def aux_tgt(self) -> dict[str, TableSchema]:
        return _aux_schemas(self._lens.roles, self.source_schemas[0], unified_side=True)

    def map_forward(self, ctx: MapContext) -> SideState:
        return self._lens.unify(ctx)

    def map_backward(self, ctx: MapContext) -> SideState:
        return self._lens.partition(ctx)

    def propagate_forward(self, changes, ctx):
        return self._lens.propagate_to_unified(changes, ctx)

    def propagate_backward(self, changes, ctx):
        change = changes.get("U")
        if change is None:
            return {}
        return self._lens.propagate_to_partitions(change, ctx)

    def gamma_tgt_rules(self) -> RuleSet:
        return self._lens.unify_rules("merge.gamma_tgt")

    def gamma_src_rules(self) -> RuleSet:
        return self._lens.partition_rules("merge.gamma_src")
