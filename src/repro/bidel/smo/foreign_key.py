"""DECOMPOSE / OUTER JOIN ON FOREIGN KEY (Appendix B.3).

``DECOMPOSE TABLE R INTO S(A), T(B) ON FK fk`` eliminates duplicates of the
``B`` part into a new table ``T`` with generated identifiers and adds a
foreign-key column ``fk`` to ``S``. The identity-generating function
``id_T(B)`` is a sequence; the auxiliary table ``ID_R`` (key of ``R`` →
generated identifier) guarantees that the same identifier is reused for the
same data across reads (repeatable reads).

Design note (documented in DESIGN.md): the paper stores ``ID_R`` on the
source side only; we keep it maintained under both materializations — the
same choice the paper itself makes for the condition variants ("the
auxiliary table ID stores the generated identifiers independently of the
chosen materialization", B.4) — because it makes identifier stability
independent of read order.

Conventions: the target table ``T`` exposes its generated identifier as a
visible first column named ``id`` (Figure 1 shows these identifiers as
data); its row key equals that identifier.
"""

from __future__ import annotations

from repro.bidel.ast import Decompose, Join
from repro.bidel.smo.base import (
    KeyedRows,
    MapContext,
    SideState,
    SmoSemantics,
    TableChange,
    is_all_null,
    require,
)
from repro.relational.schema import Column, TableSchema
from repro.relational.table import Key, Row
from repro.relational.types import DataType

ID_COLUMN = "id"
SEQUENCE_ROLE = "id_T"


class _FkLens:
    """Shared machinery for the FK decompose lens and its inverse."""

    def __init__(
        self,
        wide_schema: TableSchema,
        s_columns: tuple[str, ...],
        t_columns: tuple[str, ...],
        fk_column: str,
    ):
        self.wide_schema = wide_schema
        self.s_indices = [wide_schema.index_of(c) for c in s_columns]
        self.t_indices = [wide_schema.index_of(c) for c in t_columns]
        self.fk_column = fk_column
        self.s_columns = s_columns
        self.t_columns = t_columns

    def split_row(self, row: Row) -> tuple[Row, Row]:
        return (
            tuple(row[i] for i in self.s_indices),
            tuple(row[i] for i in self.t_indices),
        )

    def combine(self, a_part: Row | None, b_part: Row | None) -> Row:
        values: list = [None] * self.wide_schema.arity
        if a_part is not None:
            for value, index in zip(a_part, self.s_indices):
                values[index] = value
        if b_part is not None:
            for value, index in zip(b_part, self.t_indices):
                values[index] = value
        return tuple(values)

    # -- γ_tgt: R (+ID_R, +previous T) → S, T (Rules 141–146) ----------------

    def forward(self, ctx: MapContext) -> SideState:
        wide = ctx.read("R")
        id_map = {key: row[0] for key, row in ctx.read("ID").items()}
        old_t = ctx.read("T")

        payload_to_id: dict[Row, Key] = {}
        for t_key, t_row in old_t.items():
            payload_to_id.setdefault(t_row[1:], t_key)  # strip the id column

        t_rows: KeyedRows = {}
        s_rows: KeyedRows = {}
        new_ids: KeyedRows = {}

        # First pass (Rule 141/143): rows with a recorded identifier keep
        # it; their payloads seed the reuse index for the ¬T_o(_, B) check.
        pending: list[tuple[Key, Row, Row]] = []
        for key, row in wide.items():
            a_part, b_part = self.split_row(row)
            fk = id_map.get(key, _MISSING)
            if fk is _MISSING:
                pending.append((key, a_part, b_part))
                continue
            if fk is not None and not is_all_null(b_part):
                t_rows[fk] = (fk, *b_part)
                payload_to_id.setdefault(b_part, fk)
            s_rows[key] = (*a_part, fk)

        # Second pass (Rule 142/146): assign or reuse identifiers for rows
        # not seen before.
        for key, a_part, b_part in pending:
            if is_all_null(b_part):
                fk = None
            else:
                fk = payload_to_id.get(b_part)
                if fk is None:
                    fk = ctx.allocate_id(SEQUENCE_ROLE)
                    payload_to_id[b_part] = fk
            new_ids[key] = (fk,)
            if fk is not None:
                t_rows[fk] = (fk, *b_part)
            s_rows[key] = (*a_part, fk)
        result: SideState = {"S": s_rows, "T": t_rows}
        if new_ids:
            merged = dict(ctx.read("ID"))
            merged.update(new_ids)
            result["ID"] = merged
        else:
            result["ID"] = dict(ctx.read("ID"))
        return result

    # -- γ_src: S, T → R (+ID_R) (Rules 147–152) ------------------------------

    def backward(self, ctx: MapContext) -> SideState:
        s_rows = ctx.read("S")
        t_rows = ctx.read("T")
        wide: KeyedRows = {}
        id_map: KeyedRows = {}
        referenced: set[Key] = set()
        for key, s_row in s_rows.items():
            a_part, fk = s_row[:-1], s_row[-1]
            t_row = t_rows.get(fk) if fk is not None else None
            if t_row is not None:
                referenced.add(fk)
                wide[key] = self.combine(a_part, t_row[1:])
                id_map[key] = (fk,)
            else:
                # Rule 148: dangling or null foreign keys keep the A part.
                wide[key] = self.combine(a_part, None)
                id_map[key] = (None,)
        for t_key, t_row in t_rows.items():
            if t_key not in referenced:
                # Rule 149/152: unreferenced T rows surface keyed by their id.
                wide.setdefault(t_key, self.combine(None, t_row[1:]))
                id_map.setdefault(t_key, (t_key,))
        return {"R": wide, "ID": id_map}


_MISSING = object()


class _FkCache:
    """Bidirectional payload↔identifier index for one FK decomposition.

    Mirrors the content of the target table ``T``; kept incrementally by
    the write paths so single-row writes stay key-local instead of
    re-deriving whole extents."""

    def __init__(self) -> None:
        self.by_payload: dict[Row, Key] = {}
        self.by_fk: dict[Key, Row] = {}

    def put(self, fk: Key, payload: Row) -> None:
        old = self.by_fk.get(fk)
        if old is not None and self.by_payload.get(old) == fk:
            del self.by_payload[old]
        self.by_fk[fk] = payload
        self.by_payload.setdefault(payload, fk)

    def drop(self, fk: Key) -> None:
        payload = self.by_fk.pop(fk, None)
        if payload is not None and self.by_payload.get(payload) == fk:
            del self.by_payload[payload]


class DecomposeFkSemantics(SmoSemantics):
    """``DECOMPOSE TABLE R INTO S(A), T(B) ON FK fk``."""

    node: Decompose

    source_roles = ("R",)
    target_roles = ("S", "T")

    def __init__(self, node: Decompose, source_schemas):
        super().__init__(node, source_schemas)
        self._lens = _FkLens(
            source_schemas[0],
            node.first_columns,
            node.second_columns,
            node.kind.fk_column or "fk",
        )
        self._cache: _FkCache | None = None

    def invalidate_caches(self) -> None:
        self._cache = None

    def _ensure_cache(self, ctx: MapContext) -> _FkCache:
        if self._cache is not None:
            return self._cache
        cache = _FkCache()
        stored_t = ctx.read("T")
        if stored_t:
            for fk, t_row in stored_t.items():
                cache.put(fk, t_row[1:])
        else:
            id_rows = ctx.read("ID")
            for r_key, wide_row in ctx.read("R").items():
                entry = id_rows.get(r_key)
                fk = entry[0] if entry else None
                if fk is None:
                    continue
                _, b_part = self._lens.split_row(wide_row)
                cache.put(fk, b_part)
        self._cache = cache
        return cache

    def maintain_shared_aux(self, side, changes, ctx):
        """Key-local ID upkeep after direct writes to physical tables."""
        cache = self._ensure_cache(ctx)
        id_out = TableChange()
        if side == "source":
            change = changes.get("R")
            if change is None or change.empty:
                return {}
            id_rows = ctx.read_keys("ID", change.keys())
            for key in change.deletes:
                id_out.deletes.add(key)
            for key, row in change.upserts.items():
                _, b_part = self._lens.split_row(row)
                entry = id_rows.get(key)
                fk = entry[0] if entry else None
                if fk is not None and cache.by_fk.get(fk) == b_part:
                    continue  # unchanged assignment
                if is_all_null(b_part):
                    fk = None
                else:
                    existing = cache.by_payload.get(b_part)
                    if existing is not None:
                        fk = existing
                    elif fk is not None and self._fk_exclusively_owned(key, fk, ctx):
                        # The row's payload changed and nobody shares the
                        # target row: update it in place (Rule 141).
                        cache.put(fk, b_part)
                    else:
                        fk = ctx.allocate_id(SEQUENCE_ROLE)
                        cache.put(fk, b_part)
                id_out.upserts[key] = (fk,)
            return {"ID": id_out} if not id_out.empty else {}
        # side == 'target': S carries the authoritative p→fk mapping.
        s_change = changes.get("S", TableChange())
        t_change = changes.get("T", TableChange())
        for key in s_change.deletes:
            id_out.deletes.add(key)
        for key, row in s_change.upserts.items():
            id_out.upserts[key] = (row[-1],)
        for fk, t_row in t_change.upserts.items():
            cache.put(fk, t_row[1:])
        for fk in t_change.deletes:
            cache.drop(fk)
        return {"ID": id_out} if not id_out.empty else {}

    def _fk_exclusively_owned(self, key: Key, fk: Key, ctx: MapContext) -> bool:
        id_rows = ctx.read("ID")
        owners = [p for p, entry in id_rows.items() if entry and entry[0] == fk]
        return owners == [key]

    def validate(self) -> None:
        source = self.source_schemas[0]
        listed = list(self.node.first_columns) + list(self.node.second_columns)
        for column in listed:
            require(
                source.has_column(column),
                f"table {self.node.table!r} has no column {column!r}",
            )
        require(
            set(listed) == set(source.column_names) and len(set(listed)) == len(listed),
            "DECOMPOSE ON FK column lists must partition the source columns",
        )

    def target_schemas(self) -> tuple[TableSchema, ...]:
        source = self.source_schemas[0]
        fk_name = self.node.kind.fk_column or "fk"
        s_schema = TableSchema(
            self.node.first_table,
            tuple(source.column(c) for c in self.node.first_columns)
            + (Column(fk_name, DataType.INTEGER),),
        )
        t_schema = TableSchema(
            self.node.second_table or "T",
            (Column(ID_COLUMN, DataType.INTEGER),)
            + tuple(source.column(c) for c in self.node.second_columns),
        )
        return (s_schema, t_schema)

    def aux_shared(self) -> dict[str, TableSchema]:
        return {"ID": TableSchema("ID", (Column("fk", DataType.INTEGER),))}

    def sequences(self) -> tuple[str, ...]:
        return (SEQUENCE_ROLE,)

    def map_forward(self, ctx: MapContext) -> SideState:
        return self._lens.forward(ctx)

    def map_backward(self, ctx: MapContext) -> SideState:
        return self._lens.backward(ctx)

    def propagate_forward(self, changes, ctx):
        change = changes.get("R")
        if change is None or change.empty:
            return {}
        cache = self._ensure_cache(ctx)
        s_out = TableChange()
        t_out = TableChange()
        id_out = TableChange()
        keys = change.keys()
        id_rows = ctx.read_keys("ID", keys)
        # References contributed by this batch's surviving rows.
        batch_refs: set[Key] = set()
        for key, row in change.upserts.items():
            _, b_part = self._lens.split_row(row)
            entry = id_rows.get(key)
            fk = entry[0] if entry else None
            if fk is not None and cache.by_fk.get(fk) == b_part:
                batch_refs.add(fk)
        for key in change.deletes:
            s_out.deletes.add(key)
            id_out.deletes.add(key)
            # T rows are deleted only when no other S row references them —
            # "other" meaning rows outside this batch plus the batch's own
            # surviving upserts.
            entry = id_rows.get(key)
            fk = entry[0] if entry else None
            if (
                fk is not None
                and fk not in batch_refs
                and not self._fk_still_referenced(fk, ctx, exclude=keys)
            ):
                t_out.deletes.add(fk)
                cache.drop(fk)
        for key, row in change.upserts.items():
            a_part, b_part = self._lens.split_row(row)
            entry = id_rows.get(key)
            fk = entry[0] if entry else None
            if is_all_null(b_part):
                fk = None
            elif fk is None or cache.by_fk.get(fk) != b_part:
                existing = cache.by_payload.get(b_part)
                if existing is not None:
                    fk = existing
                else:
                    fk = ctx.allocate_id(SEQUENCE_ROLE)
                    cache.put(fk, b_part)
            s_out.upserts[key] = (*a_part, fk)
            id_out.upserts[key] = (fk,)
            if fk is not None:
                t_out.upserts[fk] = (fk, *b_part)
        return {"S": s_out, "T": t_out, "ID": id_out}

    def _payload_index(self, ctx: MapContext) -> dict[Row, Key]:
        """Payload → generated id, for the ``¬T_o(_, B)`` reuse check of
        Rule 142. Prefer the stored target extent; when the SMO is
        virtualized derive the index from the source table plus the ID
        auxiliary."""
        index: dict[Row, Key] = {}
        stored = ctx.read("T")
        if stored:
            for t_key, t_row in stored.items():
                index.setdefault(t_row[1:], t_key)
            return index
        id_rows = ctx.read("ID")
        for r_key, wide_row in ctx.read("R").items():
            entry = id_rows.get(r_key)
            fk = entry[0] if entry else None
            if fk is None:
                continue
            _, b_part = self._lens.split_row(wide_row)
            index.setdefault(b_part, fk)
        return index

    def _fk_still_referenced(self, fk: Key, ctx: MapContext, exclude: set[Key]) -> bool:
        # The stored ID table maps every source row to its target id, so a
        # scan of ID (narrow, always stored) suffices instead of reading S.
        for r_key, entry in ctx.read("ID").items():
            if r_key in exclude:
                continue
            if entry and entry[0] == fk:
                return True
        return False

    def propagate_backward(self, changes, ctx):
        s_change = changes.get("S", TableChange())
        t_change = changes.get("T", TableChange())
        if s_change.empty and t_change.empty:
            return {}
        wide_out = TableChange()
        id_out = TableChange()
        affected_fks = set(t_change.keys())
        cache = self._ensure_cache(ctx)

        # S-side changes: re-derive the wide row for each changed S key.
        # The payload cache answers fk → payload without reading T.
        t_lookup_keys = {
            row[-1] for row in s_change.upserts.values() if row[-1] is not None
        } | affected_fks
        t_current: dict[Key, Row] = {}
        missing: set[Key] = set()
        for fk in t_lookup_keys:
            payload = cache.by_fk.get(fk)
            if payload is not None:
                t_current[fk] = (fk, *payload)
            else:
                missing.add(fk)
        if missing:
            t_current.update(ctx.read_keys("T", missing))
        for key, row in t_change.upserts.items():
            t_current[key] = row
            cache.put(key, row[1:])
        for key in t_change.deletes:
            t_current.pop(key, None)
            cache.drop(key)

        for key in s_change.deletes:
            wide_out.deletes.add(key)
            id_out.deletes.add(key)
        for key, s_row in s_change.upserts.items():
            a_part, fk = s_row[:-1], s_row[-1]
            t_row = t_current.get(fk) if fk is not None else None
            if t_row is not None:
                wide_out.upserts[key] = self._lens.combine(a_part, t_row[1:])
                id_out.upserts[key] = (fk,)
            else:
                wide_out.upserts[key] = self._lens.combine(a_part, None)
                id_out.upserts[key] = (None,)

        # T-side changes: every S row referencing a changed T row needs its
        # wide row refreshed; unreferenced T rows surface keyed by their id.
        if affected_fks:
            s_extent = ctx.read("S")
            referencing: dict[Key, list[tuple[Key, Row]]] = {}
            for s_key, s_row in s_extent.items():
                fk = s_row[-1]
                if fk in affected_fks:
                    referencing.setdefault(fk, []).append((s_key, s_row))
            for fk in t_change.deletes:
                wide_out.deletes.add(fk)  # was possibly surfaced as unreferenced
                for s_key, s_row in referencing.get(fk, []):
                    if s_key in s_change.deletes:
                        continue
                    wide_out.upserts[s_key] = self._lens.combine(s_row[:-1], None)
                    id_out.upserts[s_key] = (None,)
            for fk, t_row in t_change.upserts.items():
                refs = [
                    (s_key, s_row)
                    for s_key, s_row in referencing.get(fk, [])
                    if s_key not in s_change.deletes and s_key not in s_change.upserts
                ]
                for s_key, s_row in refs:
                    wide_out.upserts[s_key] = self._lens.combine(s_row[:-1], t_row[1:])
                    id_out.upserts[s_key] = (fk,)
                if not refs and not any(
                    row[-1] == fk for row in s_change.upserts.values()
                ):
                    wide_out.upserts[fk] = self._lens.combine(None, t_row[1:])
                    id_out.upserts[fk] = (fk,)
        return {"R": wide_out, "ID": id_out}


class OuterJoinFkSemantics(SmoSemantics):
    """``OUTER JOIN TABLE S, T INTO R ON FK fk`` — the inverse of B.3.

    Sources: ``S`` (with the fk column, which disappears) and ``T`` (whose
    leading ``id`` column disappears); the target is the re-combined wide
    table."""

    node: Join

    source_roles = ("S", "T")
    target_roles = ("R",)

    def __init__(self, node: Join, source_schemas):
        super().__init__(node, source_schemas)
        s_schema, t_schema = source_schemas
        fk = node.kind.fk_column or "fk"
        a_columns = tuple(c for c in s_schema.column_names if c != fk)
        b_columns = tuple(t_schema.column_names[1:])
        wide = TableSchema(
            node.target,
            tuple(s_schema.column(c) for c in a_columns)
            + tuple(t_schema.column(c) for c in b_columns),
        )
        self._lens = _FkLens(wide, a_columns, b_columns, fk)
        self._fk_index = s_schema.index_of(fk)

    def validate(self) -> None:
        s_schema, t_schema = self.source_schemas
        fk = self.node.kind.fk_column or "fk"
        require(s_schema.has_column(fk), f"table {s_schema.name!r} has no column {fk!r}")
        require(
            t_schema.column_names and t_schema.column_names[0] == ID_COLUMN,
            f"OUTER JOIN ON FK expects {t_schema.name!r} to expose its identifier "
            f"as a leading {ID_COLUMN!r} column",
        )

    def target_schemas(self) -> tuple[TableSchema, ...]:
        return (self._lens.wide_schema,)

    def aux_shared(self) -> dict[str, TableSchema]:
        return {"ID": TableSchema("ID", (Column("fk", DataType.INTEGER),))}

    def sequences(self) -> tuple[str, ...]:
        return (SEQUENCE_ROLE,)

    def _reorder_s(self, row: Row) -> Row:
        """Move the fk column to the end (the lens convention)."""
        return tuple(v for i, v in enumerate(row) if i != self._fk_index) + (row[self._fk_index],)

    def _restore_s(self, row: Row) -> Row:
        """Inverse of :meth:`_reorder_s`."""
        a_part, fk = row[:-1], row[-1]
        values = list(a_part)
        values.insert(self._fk_index, fk)
        return tuple(values)

    def _ctx_with_lens_order(self, ctx: MapContext) -> MapContext:
        outer = self

        class _Adapter(MapContext):
            def read(self, role: str) -> KeyedRows:
                rows = ctx.read(role)
                if role == "S":
                    return {k: outer._reorder_s(r) for k, r in rows.items()}
                return rows

            def allocate_id(self, sequence_role: str) -> Key:
                return ctx.allocate_id(sequence_role)

        return _Adapter()

    def map_forward(self, ctx: MapContext) -> SideState:
        state = self._lens.backward(self._ctx_with_lens_order(ctx))
        return {"R": state["R"], "ID": state["ID"]}

    def map_backward(self, ctx: MapContext) -> SideState:
        state = self._lens.forward(self._ctx_with_lens_order(ctx))
        return {
            "S": {k: self._restore_s(r) for k, r in state["S"].items()},
            "T": state["T"],
            "ID": state["ID"],
        }
