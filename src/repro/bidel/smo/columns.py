"""ADD COLUMN / DROP COLUMN semantics (Appendix B.1).

``ADD COLUMN b AS f(r1,...,rn) INTO R`` computes the new column via ``f``;
the auxiliary table ``B`` on the *source* side records values written
through the new version so they survive round trips (repeatable reads).
``DROP COLUMN b FROM R DEFAULT f(...)`` is the exact inverse: the aux
table ``B`` lives on the *target* side, storing the dropped values, and
``f`` fills the column for tuples inserted in the new version.
"""

from __future__ import annotations

from repro.bidel.ast import AddColumn, DropColumn
from repro.bidel.smo.base import (
    MapContext,
    SideState,
    SmoSemantics,
    TableChange,
    require,
)
from repro.datalog.ast import Assign, Atom, Rule, RuleSet, Var, wildcard
from repro.expr.ast import Expression
from repro.relational.schema import Column, TableSchema
from repro.relational.table import Key, Row


def _compile_function(function: Expression, schema: TableSchema):
    names = schema.column_names

    def compute(row: Row):
        return function.evaluate(dict(zip(names, row)))

    return compute


def _column_rules(
    *,
    narrow_pred: str,
    wide_pred: str,
    narrow_arity: int,
    column_index: int,
    function: Expression,
    narrow_columns: tuple[str, ...],
    name_prefix: str,
) -> tuple[RuleSet, RuleSet]:
    """Rules mapping between R (narrow) + B (aux) and R' (wide).

    ``widening``: R'(p, A with b at column_index) ← R(p,A), B(p,b)
                  R'(p, ...) ← R(p,A), b = f(A), ¬B(p, _)
    ``narrowing``: R(p,A) ← R'(p, A minus b); B(p,b) ← R'(p, ..., b, ...)
    """
    key = Var("p")
    narrow_vars = tuple(Var(f"x{i}") for i in range(narrow_arity))
    b = Var("b")
    wide_terms = list(narrow_vars)
    wide_terms.insert(column_index, b)

    compute = None

    def fn(*args):
        return function.evaluate(dict(zip(narrow_columns, args)))

    widening = RuleSet(
        (
            Rule(
                Atom(wide_pred, (key, *wide_terms)),
                (Atom(narrow_pred, (key, *narrow_vars)), Atom("B", (key, b))),
            ),
            Rule(
                Atom(wide_pred, (key, *wide_terms)),
                (
                    Atom(narrow_pred, (key, *narrow_vars)),
                    Assign(b, fn, narrow_vars, label="f", expression=function),
                    Atom("B", (key, wildcard()), False),
                ),
            ),
        ),
        name=f"{name_prefix}.widening",
    )
    narrowing = RuleSet(
        (
            Rule(Atom(narrow_pred, (key, *narrow_vars)), (Atom(wide_pred, (key, *wide_terms)),)),
            Rule(Atom("B", (key, b)), (Atom(wide_pred, (key, *wide_terms)),)),
        ),
        name=f"{name_prefix}.narrowing",
    )
    del compute
    return widening, narrowing


class AddColumnSemantics(SmoSemantics):
    source_roles = ("R",)
    target_roles = ("R2",)

    node: AddColumn

    def validate(self) -> None:
        require(
            not self.source_schemas[0].has_column(self.node.column),
            f"table {self.node.table!r} already has a column {self.node.column!r}",
        )
        unknown = self.node.function.columns() - set(self.source_schemas[0].column_names)
        require(not unknown, f"ADD COLUMN function references unknown columns: {sorted(unknown)}")

    def target_schemas(self) -> tuple[TableSchema, ...]:
        return (self.source_schemas[0].add_column(Column(self.node.column, self.node.dtype)),)

    @property
    def _column_index(self) -> int:
        return self.source_schemas[0].arity  # appended at the end

    def aux_src(self) -> dict[str, TableSchema]:
        return {"B": TableSchema("B", (Column(self.node.column, self.node.dtype),))}

    def map_forward(self, ctx: MapContext) -> SideState:
        source = ctx.read("R")
        overrides = ctx.read("B")
        compute = _compile_function(self.node.function, self.source_schemas[0])
        wide: dict[Key, Row] = {}
        for key, row in source.items():
            override = overrides.get(key)
            value = override[0] if override is not None else compute(row)
            wide[key] = row + (value,)
        return {"R2": wide}

    def map_backward(self, ctx: MapContext) -> SideState:
        target = ctx.read("R2")
        narrow = {key: row[:-1] for key, row in target.items()}
        aux = {key: (row[-1],) for key, row in target.items()}
        return {"R": narrow, "B": aux}

    def propagate_forward(self, changes, ctx):
        change = changes.get("R")
        if change is None:
            return {}
        overrides = ctx.read("B")
        compute = _compile_function(self.node.function, self.source_schemas[0])
        out = TableChange(deletes=set(change.deletes))
        for key, row in change.upserts.items():
            override = overrides.get(key)
            value = override[0] if override is not None else compute(row)
            out.upserts[key] = row + (value,)
        return {"R2": out}

    def propagate_backward(self, changes, ctx):
        change = changes.get("R2")
        if change is None:
            return {}
        narrow = TableChange(deletes=set(change.deletes))
        aux = TableChange(deletes=set(change.deletes))
        for key, row in change.upserts.items():
            narrow.upserts[key] = row[:-1]
            aux.upserts[key] = (row[-1],)
        return {"R": narrow, "B": aux}

    def gamma_tgt_rules(self) -> RuleSet:
        widening, _ = self._rules()
        return widening

    def gamma_src_rules(self) -> RuleSet:
        _, narrowing = self._rules()
        return narrowing

    def _rules(self) -> tuple[RuleSet, RuleSet]:
        return _column_rules(
            narrow_pred="R",
            wide_pred="R2",
            narrow_arity=self.source_schemas[0].arity,
            column_index=self._column_index,
            function=self.node.function,
            narrow_columns=self.source_schemas[0].column_names,
            name_prefix="add_column",
        )


class DropColumnSemantics(SmoSemantics):
    source_roles = ("R",)
    target_roles = ("R2",)

    node: DropColumn

    def validate(self) -> None:
        require(
            self.source_schemas[0].has_column(self.node.column),
            f"table {self.node.table!r} has no column {self.node.column!r}",
        )
        remaining = set(self.source_schemas[0].column_names) - {self.node.column}
        unknown = self.node.default.columns() - remaining
        require(
            not unknown,
            f"DROP COLUMN default references unknown columns: {sorted(unknown)}",
        )

    def target_schemas(self) -> tuple[TableSchema, ...]:
        return (self.source_schemas[0].drop_column(self.node.column),)

    @property
    def _column_index(self) -> int:
        return self.source_schemas[0].index_of(self.node.column)

    @property
    def _narrow_schema(self) -> TableSchema:
        return self.source_schemas[0].drop_column(self.node.column)

    def aux_tgt(self) -> dict[str, TableSchema]:
        dropped = self.source_schemas[0].column(self.node.column)
        return {"B": TableSchema("B", (dropped,))}

    def _split_row(self, row: Row) -> tuple[Row, Row]:
        index = self._column_index
        return row[:index] + row[index + 1 :], (row[index],)

    def _widen_row(self, row: Row, value) -> Row:
        index = self._column_index
        return row[:index] + (value,) + row[index:]

    def map_forward(self, ctx: MapContext) -> SideState:
        source = ctx.read("R")
        narrow: dict[Key, Row] = {}
        aux: dict[Key, Row] = {}
        for key, row in source.items():
            narrow_row, dropped = self._split_row(row)
            narrow[key] = narrow_row
            aux[key] = dropped
        return {"R2": narrow, "B": aux}

    def map_backward(self, ctx: MapContext) -> SideState:
        target = ctx.read("R2")
        overrides = ctx.read("B")
        compute = _compile_function(self.node.default, self._narrow_schema)
        wide: dict[Key, Row] = {}
        for key, row in target.items():
            override = overrides.get(key)
            value = override[0] if override is not None else compute(row)
            wide[key] = self._widen_row(row, value)
        return {"R": wide}

    def propagate_forward(self, changes, ctx):
        change = changes.get("R")
        if change is None:
            return {}
        narrow = TableChange(deletes=set(change.deletes))
        aux = TableChange(deletes=set(change.deletes))
        for key, row in change.upserts.items():
            narrow_row, dropped = self._split_row(row)
            narrow.upserts[key] = narrow_row
            aux.upserts[key] = dropped
        return {"R2": narrow, "B": aux}

    def propagate_backward(self, changes, ctx):
        change = changes.get("R2")
        if change is None:
            return {}
        overrides = ctx.read("B")
        compute = _compile_function(self.node.default, self._narrow_schema)
        out = TableChange(deletes=set(change.deletes))
        aux = TableChange()
        for key, row in change.upserts.items():
            override = overrides.get(key)
            value = override[0] if override is not None else compute(row)
            out.upserts[key] = self._widen_row(row, value)
            if override is None:
                # Record the filled-in value so future reads are repeatable
                # even if the default function is later considered changed.
                aux.upserts[key] = (value,)
        result = {"R": out}
        if not aux.empty:
            result["B"] = aux
        return result

    def gamma_tgt_rules(self) -> RuleSet:
        _, narrowing = self._rules()
        return RuleSet(narrowing.rules, name="drop_column.gamma_tgt")

    def gamma_src_rules(self) -> RuleSet:
        widening, _ = self._rules()
        return RuleSet(widening.rules, name="drop_column.gamma_src")

    def _rules(self) -> tuple[RuleSet, RuleSet]:
        return _column_rules(
            narrow_pred="R2",
            wide_pred="R",
            narrow_arity=self._narrow_schema.arity,
            column_index=self._column_index,
            function=self.node.default,
            narrow_columns=self._narrow_schema.column_names,
            name_prefix="drop_column",
        )
