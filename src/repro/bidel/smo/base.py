"""Base abstractions for SMO semantics.

Every SMO is a *symmetric lens* between its source side and its target side
(Figure 5 of the paper). A side consists of the data tables of the table
versions on that side plus the SMO's auxiliary tables living on that side:

- ``γ_tgt`` (:meth:`SmoSemantics.map_forward`) maps the full source side to
  the full target side;
- ``γ_src`` (:meth:`SmoSemantics.map_backward`) maps the full target side
  back to the full source side.

The side that is *materialized* is physically stored (data + aux); the
other side is derived on demand. Shared auxiliary tables (the ``ID`` tables
of the identifier-generating SMOs, Appendix B.3/B.4/B.6) are stored on both
sides — the paper stores generated identifiers "independently of the chosen
materialization" for repeatable reads.

Incremental write propagation (:meth:`propagate_forward` /
:meth:`propagate_backward`) transports a :class:`TableChange` across the
SMO; the default implementation signals "no fast path" and the engine falls
back to a full-state lens put, which is always correct.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field

from repro.datalog.ast import RuleSet
from repro.errors import EvolutionError
from repro.expr.ast import Expression, is_true
from repro.relational.schema import TableSchema
from repro.relational.table import Key, Row

KeyedRows = dict[Key, Row]
SideState = dict[str, KeyedRows]


@dataclass
class TableChange:
    """An incremental change to one table: upserts plus deletions."""

    upserts: KeyedRows = field(default_factory=dict)
    deletes: set[Key] = field(default_factory=set)

    @property
    def empty(self) -> bool:
        return not self.upserts and not self.deletes

    def keys(self) -> set[Key]:
        return set(self.upserts) | self.deletes

    def merge(self, other: "TableChange") -> None:
        for key in other.deletes:
            self.upserts.pop(key, None)
            self.deletes.add(key)
        for key, row in other.upserts.items():
            self.deletes.discard(key)
            self.upserts[key] = row

    def apply_to(self, rows: KeyedRows) -> None:
        for key in self.deletes:
            rows.pop(key, None)
        rows.update(self.upserts)


class MapContext(ABC):
    """What a mapping function may ask of its environment: current table
    extents by role and fresh identifiers from the SMO's sequences."""

    @abstractmethod
    def read(self, role: str) -> KeyedRows:
        """Current extent of the table playing ``role`` for this SMO."""

    def read_keys(self, role: str, keys: set[Key]) -> KeyedRows:
        """Extent restricted to ``keys``; engines override this to avoid
        materializing whole tables during key-local write propagation."""
        extent = self.read(role)
        return {key: extent[key] for key in keys if key in extent}

    @abstractmethod
    def allocate_id(self, sequence_role: str) -> Key:
        """Next value of the SMO-owned sequence (the ``id_T`` functions)."""


class FixedContext(MapContext):
    """A MapContext over a plain dictionary of extents; used by tests, the
    verifier's runtime lens checks, and migration dry runs."""

    def __init__(self, extents: Mapping[str, KeyedRows], allocator: Callable[[str], Key] | None = None):
        self._extents = dict(extents)
        self._counters: dict[str, int] = {}
        self._allocator = allocator

    def read(self, role: str) -> KeyedRows:
        return self._extents.get(role, {})

    def allocate_id(self, sequence_role: str) -> Key:
        if self._allocator is not None:
            return self._allocator(sequence_role)
        value = self._counters.get(sequence_role, 1_000_000) + 1
        self._counters[sequence_role] = value
        return value


def evaluate_condition(condition: Expression, schema: TableSchema, row: Row) -> bool:
    """SQL semantics: only a genuine TRUE satisfies the condition."""
    return is_true(condition.evaluate(schema.row_to_mapping(row)))


class SmoSemantics(ABC):
    """Semantics of one SMO instance, bound to concrete source schemas."""

    #: logical role names for the source/target table versions, in order
    source_roles: tuple[str, ...] = ()
    target_roles: tuple[str, ...] = ()

    def __init__(self, node, source_schemas: tuple[TableSchema, ...]):
        self.node = node
        self.source_schemas = source_schemas
        self.validate()

    # -- schema level -----------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`EvolutionError` when the SMO does not apply to the
        given source schemas."""

    @abstractmethod
    def target_schemas(self) -> tuple[TableSchema, ...]:
        """User-visible schemas of the target table versions."""

    # -- auxiliary tables ----------------------------------------------------

    def aux_src(self) -> dict[str, TableSchema]:
        """Aux tables on the source side (stored while the SMO is virtualized)."""
        return {}

    def aux_tgt(self) -> dict[str, TableSchema]:
        """Aux tables on the target side (stored while the SMO is materialized)."""
        return {}

    def aux_shared(self) -> dict[str, TableSchema]:
        """Aux tables stored regardless of materialization (ID tables)."""
        return {}

    def sequences(self) -> tuple[str, ...]:
        """Names of identifier sequences this SMO owns."""
        return ()

    # -- state-level mappings -------------------------------------------------

    @abstractmethod
    def map_forward(self, ctx: MapContext) -> SideState:
        """``γ_tgt``: derive the full target side (data roles + aux_tgt +
        aux_shared) from the source side read through ``ctx``."""

    @abstractmethod
    def map_backward(self, ctx: MapContext) -> SideState:
        """``γ_src``: derive the full source side (data roles + aux_src +
        aux_shared) from the target side read through ``ctx``."""

    # -- incremental write propagation ---------------------------------------

    def propagate_forward(
        self, changes: dict[str, TableChange], ctx: MapContext
    ) -> dict[str, TableChange] | None:
        """Transport source-side data changes to the target side.

        Returns changes for target data roles and for aux roles, or ``None``
        when the SMO has no incremental fast path (the engine then performs
        a full lens put, which is always correct)."""
        return None

    def propagate_backward(
        self, changes: dict[str, TableChange], ctx: MapContext
    ) -> dict[str, TableChange] | None:
        """Transport target-side data changes to the source side."""
        return None

    # -- shared-aux maintenance ------------------------------------------------

    def maintain_shared_aux(
        self, side: str, changes: dict[str, TableChange], ctx: MapContext
    ) -> dict[str, TableChange] | None:
        """Incremental update of always-stored aux tables (ID tables) after
        a direct write to a physical ``side`` ('source' or 'target') table.
        ``None`` means "no fast path": the engine re-derives the aux tables
        by running the full map of the stored side."""
        return None

    def invalidate_caches(self) -> None:
        """Drop any internal memoization (called on migration/rollback)."""

    # -- Datalog artifacts ------------------------------------------------------

    def gamma_tgt_rules(self) -> RuleSet | None:
        """Instantiated Datalog rules for ``γ_tgt`` (SQL generation, tests)."""
        return None

    def gamma_src_rules(self) -> RuleSet | None:
        return None

    # -- misc -------------------------------------------------------------

    def describe(self) -> str:
        return self.node.unparse()


def require(condition: bool, message: str) -> None:
    if not condition:
        raise EvolutionError(message)


def project_row(row: Row, indices: list[int]) -> Row:
    return tuple(row[i] for i in indices)


def is_all_null(row: Row) -> bool:
    return all(value is None for value in row)
