"""DECOMPOSE / JOIN ON an arbitrary condition (Appendix B.4 and B.6).

Both variants generate fresh identifiers for the rows they create and track
them in an ``ID(r, s, t)`` auxiliary table that is stored under either
materialization ("for repeatable reads, the auxiliary table ID stores the
generated identifiers independently of the chosen materialization"). A
second auxiliary table (the paper's ``R⁻``) records join results that were
deleted through the joined side so they are not resurrected.

These SMOs are not on the hot benchmark paths (the Wikimedia history uses
FK decomposition; TasKy uses SPLIT/DROP COLUMN/FK decomposition), so they
implement the full-state lens maps only; the engine transparently falls
back to whole-state puts for writes across them.
"""

from __future__ import annotations

from repro.bidel.ast import Decompose, Join
from repro.bidel.smo.base import (
    KeyedRows,
    MapContext,
    SideState,
    SmoSemantics,
    evaluate_condition,
    require,
)
from repro.expr.ast import Expression
from repro.relational.schema import Column, TableSchema
from repro.relational.table import Key, Row
from repro.relational.types import DataType

ID_COLUMN = "id"
SEQ_R = "id_R"
SEQ_S = "id_S"
SEQ_T = "id_T"


def _dedup_with_ids(
    rows: list[Row],
    existing: dict[Row, Key],
    allocate,
) -> dict[Key, Row]:
    out: dict[Key, Row] = {}
    for row in rows:
        key = existing.get(row)
        if key is None:
            key = allocate()
            existing[row] = key
        out[key] = row
    return out


class _CondJoinLens:
    """The lens between two narrow tables S(A), T(B) and the joined wide
    table R(A, B) under condition c(A, B), with generated identifiers on
    the wide side (inner join, B.6) or on the narrow side (decompose,
    B.4)."""

    def __init__(
        self,
        s_schema: TableSchema,
        t_schema: TableSchema,
        condition: Expression,
    ):
        self.s_schema = s_schema
        self.t_schema = t_schema
        self.condition = condition
        # The condition ranges over the payload columns; the leading ``id``
        # columns are engine-assigned and invisible to it.
        self.joint_columns = s_schema.column_names[1:] + t_schema.column_names[1:]

    def matches(self, a_part: Row, b_part: Row) -> bool:
        row = dict(zip(self.joint_columns, a_part + b_part))
        from repro.expr.ast import is_true

        return is_true(self.condition.evaluate(row))

    def join(self, ctx: MapContext) -> SideState:
        """Narrow → wide (B.6 γ_tgt; also B.4 γ_src modulo roles)."""
        s_rows = ctx.read("S")
        t_rows = ctx.read("T")
        id_rows = ctx.read("ID")  # r -> (s, t)
        removed = {row for row in ctx.read("Rminus").values()}  # {(s, t)}

        pair_to_r: dict[tuple[Key, Key], Key] = {
            (row[0], row[1]): r for r, row in id_rows.items()
        }
        wide: KeyedRows = {}
        new_ids: KeyedRows = dict(id_rows)
        matched_s: set[Key] = set()
        matched_t: set[Key] = set()
        for s_key, a_part in s_rows.items():
            a_payload = a_part[1:]  # strip visible id column
            for t_key, b_part in t_rows.items():
                b_payload = b_part[1:]
                if not self.matches(a_payload, b_payload):
                    continue
                if (s_key, t_key) in removed:
                    matched_s.add(s_key)
                    matched_t.add(t_key)
                    continue
                r_key = pair_to_r.get((s_key, t_key))
                if r_key is None:
                    r_key = ctx.allocate_id(SEQ_R)
                    pair_to_r[(s_key, t_key)] = r_key
                new_ids[r_key] = (s_key, t_key)
                wide[r_key] = a_payload + b_payload
                matched_s.add(s_key)
                matched_t.add(t_key)
        splus = {k: v for k, v in s_rows.items() if k not in matched_s}
        tplus = {k: v for k, v in t_rows.items() if k not in matched_t}
        return {
            "R": wide,
            "ID": new_ids,
            "Splus": splus,
            "Tplus": tplus,
        }

    def unjoin(self, ctx: MapContext) -> SideState:
        """Wide → narrow (B.6 γ_src; also B.4 γ_tgt modulo roles)."""
        wide = ctx.read("R")
        id_rows = ctx.read("ID")
        s_payload_to_key: dict[Row, Key] = {}
        t_payload_to_key: dict[Row, Key] = {}
        s_rows: KeyedRows = {}
        t_rows: KeyedRows = {}
        new_ids: KeyedRows = {}
        removed: KeyedRows = {}
        s_arity = self.s_schema.arity - 1  # minus the visible id column
        for r_key, row in wide.items():
            a_payload, b_payload = row[:s_arity], row[s_arity:]
            recorded = id_rows.get(r_key)
            if recorded is not None:
                s_key, t_key = recorded
            else:
                s_key = s_payload_to_key.get(a_payload)
                t_key = t_payload_to_key.get(b_payload)
                if s_key is None:
                    s_key = ctx.allocate_id(SEQ_S)
                if t_key is None:
                    t_key = ctx.allocate_id(SEQ_T)
            s_payload_to_key.setdefault(a_payload, s_key)
            t_payload_to_key.setdefault(b_payload, t_key)
            s_rows[s_key] = (s_key, *a_payload)
            t_rows[t_key] = (t_key, *b_payload)
            new_ids[r_key] = (s_key, t_key)
        for s_key, s_row in ctx.read("Splus").items():
            s_rows.setdefault(s_key, s_row)
        for t_key, t_row in ctx.read("Tplus").items():
            t_rows.setdefault(t_key, t_row)
        # Rule 200: surviving narrow rows whose combination satisfies the
        # condition but is absent from the wide side were deleted there.
        counter = 0
        for s_key, s_row in s_rows.items():
            for t_key, t_row in t_rows.items():
                if not self.matches(s_row[1:], t_row[1:]):
                    continue
                r_key = next(
                    (r for r, pair in new_ids.items() if pair == (s_key, t_key)), None
                )
                if r_key is None or r_key not in wide:
                    counter += 1
                    removed[counter] = (s_key, t_key)
        return {
            "S": s_rows,
            "T": t_rows,
            "ID": new_ids,
            "Rminus": removed,
        }


def _with_id_column(name: str, columns) -> TableSchema:
    return TableSchema(
        name, (Column(ID_COLUMN, DataType.INTEGER),) + tuple(columns)
    )


class DecomposeCondSemantics(SmoSemantics):
    """``DECOMPOSE TABLE R INTO S(A), T(B) ON c(A, B)``.

    The wide table is the source; both narrow target tables receive
    generated identifiers (exposed as a leading ``id`` column)."""

    node: Decompose

    source_roles = ("R",)
    target_roles = ("S", "T")

    def __init__(self, node: Decompose, source_schemas):
        super().__init__(node, source_schemas)
        source = source_schemas[0]
        self._s_schema = _with_id_column(
            node.first_table, (source.column(c) for c in node.first_columns)
        )
        self._t_schema = _with_id_column(
            node.second_table or "T", (source.column(c) for c in node.second_columns)
        )
        assert node.kind.condition is not None
        self._lens = _CondJoinLens(self._s_schema, self._t_schema, node.kind.condition)
        self._s_indices = [source.index_of(c) for c in node.first_columns]
        self._t_indices = [source.index_of(c) for c in node.second_columns]

    def validate(self) -> None:
        source = self.source_schemas[0]
        listed = list(self.node.first_columns) + list(self.node.second_columns)
        for column in listed:
            require(source.has_column(column), f"unknown column {column!r}")
        require(
            set(listed) == set(source.column_names) and len(set(listed)) == len(listed),
            "DECOMPOSE ON condition requires a disjoint, covering column split",
        )

    def target_schemas(self) -> tuple[TableSchema, ...]:
        return (self._s_schema, self._t_schema)

    def aux_shared(self) -> dict[str, TableSchema]:
        return {
            "ID": TableSchema(
                "ID",
                (Column("s", DataType.INTEGER), Column("t", DataType.INTEGER)),
            )
        }

    def aux_tgt(self) -> dict[str, TableSchema]:
        return {
            "Rminus": TableSchema(
                "Rminus", (Column("s", DataType.INTEGER), Column("t", DataType.INTEGER))
            )
        }

    def aux_src(self) -> dict[str, TableSchema]:
        return {
            "Splus": self._s_schema.with_name("Splus"),
            "Tplus": self._t_schema.with_name("Tplus"),
        }

    def sequences(self) -> tuple[str, ...]:
        return (SEQ_R, SEQ_S, SEQ_T)

    def _wide_as_lens(self, ctx: MapContext) -> KeyedRows:
        """Reorder the source's columns into (A..., B...) lens order."""
        out: KeyedRows = {}
        for key, row in ctx.read("R").items():
            out[key] = tuple(row[i] for i in self._s_indices) + tuple(
                row[i] for i in self._t_indices
            )
        return out

    def _lens_to_wide(self, row: Row) -> Row:
        values: list = [None] * self.source_schemas[0].arity
        s_arity = len(self._s_indices)
        for value, index in zip(row[:s_arity], self._s_indices):
            values[index] = value
        for value, index in zip(row[s_arity:], self._t_indices):
            values[index] = value
        return tuple(values)

    def map_forward(self, ctx: MapContext) -> SideState:
        adapter = _RoleAdapter(ctx, {"R": self._wide_as_lens(ctx)})
        state = self._lens.unjoin(adapter)
        return {
            "S": state["S"],
            "T": state["T"],
            "ID": state["ID"],
            "Rminus": state["Rminus"],
        }

    def map_backward(self, ctx: MapContext) -> SideState:
        state = self._lens.join(ctx)
        return {
            "R": {k: self._lens_to_wide(v) for k, v in state["R"].items()},
            "ID": state["ID"],
            "Splus": state["Splus"],
            "Tplus": state["Tplus"],
        }


class InnerJoinCondSemantics(SmoSemantics):
    """``JOIN TABLE S, T INTO R ON c(A, B)`` (Appendix B.6).

    The narrow tables are the sources; joined rows get generated
    identifiers. Unmatched rows live in the target-side aux tables
    ``Splus``/``Tplus`` (the paper's ``S⁺``/``T⁺``)."""

    node: Join

    source_roles = ("S", "T")
    target_roles = ("R",)

    def __init__(self, node: Join, source_schemas):
        super().__init__(node, source_schemas)
        s_schema, t_schema = source_schemas
        require(
            s_schema.column_names and s_schema.column_names[0] == ID_COLUMN,
            f"JOIN ON condition expects {s_schema.name!r} to carry a leading "
            f"{ID_COLUMN!r} column",
        )
        require(
            t_schema.column_names and t_schema.column_names[0] == ID_COLUMN,
            f"JOIN ON condition expects {t_schema.name!r} to carry a leading "
            f"{ID_COLUMN!r} column",
        )
        assert node.kind.condition is not None
        self._lens = _CondJoinLens(s_schema, t_schema, node.kind.condition)

    def validate(self) -> None:
        s_schema, t_schema = self.source_schemas
        overlap = (set(s_schema.column_names) & set(t_schema.column_names)) - {ID_COLUMN}
        require(not overlap, f"JOIN ON condition requires disjoint payload columns: {sorted(overlap)}")

    def target_schemas(self) -> tuple[TableSchema, ...]:
        s_schema, t_schema = self.source_schemas
        return (
            TableSchema(
                self.node.target,
                tuple(s_schema.columns[1:]) + tuple(t_schema.columns[1:]),
            ),
        )

    def aux_shared(self) -> dict[str, TableSchema]:
        return {
            "ID": TableSchema(
                "ID", (Column("s", DataType.INTEGER), Column("t", DataType.INTEGER))
            )
        }

    def aux_tgt(self) -> dict[str, TableSchema]:
        s_schema, t_schema = self.source_schemas
        return {
            "Splus": s_schema.with_name("Splus"),
            "Tplus": t_schema.with_name("Tplus"),
        }

    def aux_src(self) -> dict[str, TableSchema]:
        return {
            "Rminus": TableSchema(
                "Rminus", (Column("s", DataType.INTEGER), Column("t", DataType.INTEGER))
            )
        }

    def sequences(self) -> tuple[str, ...]:
        return (SEQ_R, SEQ_S, SEQ_T)

    def map_forward(self, ctx: MapContext) -> SideState:
        state = self._lens.join(ctx)
        return {
            "R": state["R"],
            "ID": state["ID"],
            "Splus": state["Splus"],
            "Tplus": state["Tplus"],
        }

    def map_backward(self, ctx: MapContext) -> SideState:
        state = self._lens.unjoin(ctx)
        return {
            "S": state["S"],
            "T": state["T"],
            "ID": state["ID"],
            "Rminus": state["Rminus"],
        }


class _RoleAdapter(MapContext):
    """Overlay specific role extents on top of another context."""

    def __init__(self, inner: MapContext, overrides: dict[str, KeyedRows]):
        self._inner = inner
        self._overrides = overrides

    def read(self, role: str) -> KeyedRows:
        if role in self._overrides:
            return self._overrides[role]
        return self._inner.read(role)

    def allocate_id(self, sequence_role: str) -> Key:
        return self._inner.allocate_id(sequence_role)
