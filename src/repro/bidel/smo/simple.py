"""Semantics of the structurally trivial SMOs.

CREATE TABLE, DROP TABLE, RENAME TABLE, and RENAME COLUMN "exclusively
affect the schema version catalog" (Appendix B) — their data mappings are
identities (or empty). DROP TABLE nevertheless participates in the lens
framework: when materialized, the dropped table's rows move into a
target-side auxiliary table so that older versions can still read them.
"""

from __future__ import annotations

from repro.bidel.ast import CreateTable, DropTable, RenameColumn, RenameTable
from repro.bidel.smo.base import MapContext, SideState, SmoSemantics, TableChange, require
from repro.datalog.ast import Atom, Rule, RuleSet, Var
from repro.relational.schema import Column, TableSchema
from repro.relational.types import DataType


def _identity_rules(src_pred: str, tgt_pred: str, arity: int, name: str) -> RuleSet:
    key = Var("p")
    payload = tuple(Var(f"x{i}") for i in range(arity))
    return RuleSet(
        (Rule(Atom(tgt_pred, (key, *payload)), (Atom(src_pred, (key, *payload)),)),),
        name=name,
    )


class CreateTableSemantics(SmoSemantics):
    """``CREATE TABLE R(c1, ..., cn)`` — no source side; always materialized."""

    source_roles = ()
    target_roles = ("R",)

    node: CreateTable

    def target_schemas(self) -> tuple[TableSchema, ...]:
        columns = tuple(Column(c.name, c.dtype) for c in self.node.columns)
        return (TableSchema(self.node.table, columns),)

    def map_forward(self, ctx: MapContext) -> SideState:
        return {"R": dict(ctx.read("R"))}

    def map_backward(self, ctx: MapContext) -> SideState:
        return {}

    def propagate_forward(self, changes, ctx):  # pragma: no cover - unused
        return dict(changes)

    def propagate_backward(self, changes, ctx):  # pragma: no cover - unused
        return {}


class DropTableSemantics(SmoSemantics):
    """``DROP TABLE R`` — the target side holds the retired rows in an
    auxiliary table so other versions keep seeing them after migration."""

    source_roles = ("R",)
    target_roles = ()

    node: DropTable

    def target_schemas(self) -> tuple[TableSchema, ...]:
        return ()

    def aux_tgt(self) -> dict[str, TableSchema]:
        return {"R_retired": self.source_schemas[0].with_name("R_retired")}

    def map_forward(self, ctx: MapContext) -> SideState:
        return {"R_retired": dict(ctx.read("R"))}

    def map_backward(self, ctx: MapContext) -> SideState:
        return {"R": dict(ctx.read("R_retired"))}

    def propagate_forward(self, changes, ctx):
        change = changes.get("R")
        if change is None:
            return {}
        return {"R_retired": change}

    def propagate_backward(self, changes, ctx):
        change = changes.get("R_retired")
        if change is None:
            return {}
        return {"R": change}

    def gamma_tgt_rules(self) -> RuleSet:
        return _identity_rules("R", "R_retired", self.source_schemas[0].arity, "drop_table.gamma_tgt")

    def gamma_src_rules(self) -> RuleSet:
        return _identity_rules("R_retired", "R", self.source_schemas[0].arity, "drop_table.gamma_src")


class _IdentitySemantics(SmoSemantics):
    """Shared behaviour of RENAME TABLE / RENAME COLUMN: pure identity on
    rows; only the catalog entry (table or column name) changes."""

    source_roles = ("R",)
    target_roles = ("R2",)

    def map_forward(self, ctx: MapContext) -> SideState:
        return {"R2": dict(ctx.read("R"))}

    def map_backward(self, ctx: MapContext) -> SideState:
        return {"R": dict(ctx.read("R2"))}

    def propagate_forward(self, changes, ctx):
        change = changes.get("R")
        return {} if change is None else {"R2": change}

    def propagate_backward(self, changes, ctx):
        change = changes.get("R2")
        return {} if change is None else {"R": change}

    def gamma_tgt_rules(self) -> RuleSet:
        return _identity_rules("R", "R2", self.source_schemas[0].arity, "rename.gamma_tgt")

    def gamma_src_rules(self) -> RuleSet:
        return _identity_rules("R2", "R", self.source_schemas[0].arity, "rename.gamma_src")


class RenameTableSemantics(_IdentitySemantics):
    node: RenameTable

    def target_schemas(self) -> tuple[TableSchema, ...]:
        return (self.source_schemas[0].with_name(self.node.new_name),)


class RenameColumnSemantics(_IdentitySemantics):
    node: RenameColumn

    def validate(self) -> None:
        require(
            self.source_schemas[0].has_column(self.node.column),
            f"table {self.node.table!r} has no column {self.node.column!r}",
        )

    def target_schemas(self) -> tuple[TableSchema, ...]:
        return (self.source_schemas[0].rename_column(self.node.column, self.node.new_name),)
