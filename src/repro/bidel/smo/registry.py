"""Dispatch from parsed SMO nodes to their semantics classes."""

from __future__ import annotations

from repro.bidel.ast import (
    AddColumn,
    CreateTable,
    Decompose,
    DropColumn,
    DropTable,
    Join,
    Merge,
    RenameColumn,
    RenameTable,
    SmoNode,
    Split,
)
from repro.bidel.smo.base import SmoSemantics
from repro.bidel.smo.columns import AddColumnSemantics, DropColumnSemantics
from repro.bidel.smo.conditional import DecomposeCondSemantics, InnerJoinCondSemantics
from repro.bidel.smo.foreign_key import DecomposeFkSemantics, OuterJoinFkSemantics
from repro.bidel.smo.partition import MergeSemantics, SplitSemantics
from repro.bidel.smo.simple import (
    CreateTableSemantics,
    DropTableSemantics,
    RenameColumnSemantics,
    RenameTableSemantics,
)
from repro.bidel.smo.vertical import (
    DecomposePkSemantics,
    InnerJoinPkSemantics,
    OuterJoinPkSemantics,
)
from repro.errors import EvolutionError
from repro.relational.schema import TableSchema


def source_table_names(node: SmoNode) -> tuple[str, ...]:
    """The tables an SMO consumes, in role order."""
    if isinstance(node, CreateTable):
        return ()
    if isinstance(node, (DropTable, RenameTable)):
        return (node.table,)
    if isinstance(node, (RenameColumn, AddColumn, DropColumn)):
        return (node.table,)
    if isinstance(node, Decompose):
        return (node.table,)
    if isinstance(node, Join):
        return (node.first_table, node.second_table)
    if isinstance(node, Split):
        return (node.table,)
    if isinstance(node, Merge):
        return (node.first_table, node.second_table)
    raise EvolutionError(f"unknown SMO node {node!r}")


def build_semantics(node: SmoNode, source_schemas: tuple[TableSchema, ...]) -> SmoSemantics:
    """Instantiate the right semantics class for a parsed SMO."""
    if isinstance(node, CreateTable):
        return CreateTableSemantics(node, source_schemas)
    if isinstance(node, DropTable):
        return DropTableSemantics(node, source_schemas)
    if isinstance(node, RenameTable):
        return RenameTableSemantics(node, source_schemas)
    if isinstance(node, RenameColumn):
        return RenameColumnSemantics(node, source_schemas)
    if isinstance(node, AddColumn):
        return AddColumnSemantics(node, source_schemas)
    if isinstance(node, DropColumn):
        return DropColumnSemantics(node, source_schemas)
    if isinstance(node, Split):
        return SplitSemantics(node, source_schemas)
    if isinstance(node, Merge):
        return MergeSemantics(node, source_schemas)
    if isinstance(node, Decompose):
        if node.second_table is None or node.kind.method == "PK":
            if node.second_table is None:
                raise EvolutionError(
                    "DECOMPOSE requires two target tables (single-table "
                    "projections can be expressed with DROP COLUMN)"
                )
            return DecomposePkSemantics(node, source_schemas)
        if node.kind.method == "FK":
            return DecomposeFkSemantics(node, source_schemas)
        return DecomposeCondSemantics(node, source_schemas)
    if isinstance(node, Join):
        if node.kind.method == "PK":
            if node.outer:
                return OuterJoinPkSemantics(node, source_schemas)
            return InnerJoinPkSemantics(node, source_schemas)
        if node.kind.method == "FK":
            if node.outer:
                return OuterJoinFkSemantics(node, source_schemas)
            raise EvolutionError(
                "inner JOIN ON FK is not supported; use OUTER JOIN ON FK "
                "(the paper treats FK joins as a variant of condition joins)"
            )
        if node.outer:
            raise EvolutionError(
                "OUTER JOIN ON condition is not implemented; the paper "
                "derives it as the inverse of DECOMPOSE ON condition"
            )
        return InnerJoinCondSemantics(node, source_schemas)
    raise EvolutionError(f"unknown SMO node {node!r}")
