"""Per-SMO semantics: schema transforms, γ mappings, delta propagation."""

from repro.bidel.smo.base import MapContext, SmoSemantics, TableChange
from repro.bidel.smo.registry import build_semantics

__all__ = ["SmoSemantics", "MapContext", "TableChange", "build_semantics"]
