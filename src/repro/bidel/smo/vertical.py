"""Key-preserving vertical SMOs (Appendix B.2 and B.5).

- ``DECOMPOSE TABLE R INTO S(A), T(B) ON PK`` splits columns; both target
  tables keep the source key. The inverse ``OUTER JOIN ... ON PK`` fills
  gaps with nulls (the paper's ``ω``).
- ``JOIN TABLE R, S INTO T ON PK`` is the inner variant: rows without a
  join partner are preserved in the target-side auxiliary tables ``Rplus``
  and ``Splus`` so nothing is lost when the SMO is materialized.
"""

from __future__ import annotations

from repro.bidel.ast import Decompose, Join
from repro.bidel.smo.base import (
    KeyedRows,
    MapContext,
    SideState,
    SmoSemantics,
    TableChange,
    is_all_null,
    require,
)
from repro.datalog.ast import Atom, Rule, RuleSet, Var, wildcard
from repro.relational.schema import TableSchema
from repro.relational.table import Key, Row


class _VerticalLens:
    """The lens between one wide table and two column-projections of it."""

    def __init__(self, wide_schema: TableSchema, first_columns, second_columns):
        self.wide_schema = wide_schema
        self.first_indices = [wide_schema.index_of(c) for c in first_columns]
        self.second_indices = [wide_schema.index_of(c) for c in second_columns]

    def split_row(self, row: Row) -> tuple[Row, Row]:
        return (
            tuple(row[i] for i in self.first_indices),
            tuple(row[i] for i in self.second_indices),
        )

    def combine(self, first: Row | None, second: Row | None) -> Row:
        values: list = [None] * self.wide_schema.arity
        if first is not None:
            for value, index in zip(first, self.first_indices):
                values[index] = value
        if second is not None:
            for value, index in zip(second, self.second_indices):
                values[index] = value
        return tuple(values)

    # -- full-state maps ----------------------------------------------------

    def decompose(self, wide: KeyedRows) -> tuple[KeyedRows, KeyedRows]:
        """Rules 133/134: project, skipping all-null parts (ω rows)."""
        first: KeyedRows = {}
        second: KeyedRows = {}
        for key, row in wide.items():
            left, right = self.split_row(row)
            if not is_all_null(left):
                first[key] = left
            if not is_all_null(right):
                second[key] = right
        return first, second

    def outer_join(self, first: KeyedRows, second: KeyedRows) -> KeyedRows:
        """Rules 135–137: full outer join on the key, ω-filling gaps."""
        wide: KeyedRows = {}
        for key, left in first.items():
            wide[key] = self.combine(left, second.get(key))
        for key, right in second.items():
            if key not in wide:
                wide[key] = self.combine(None, right)
        return wide


class DecomposePkSemantics(SmoSemantics):
    """``DECOMPOSE TABLE R INTO S(A), T(B) ON PK``."""

    node: Decompose

    source_roles = ("R",)
    target_roles = ("S", "T")

    def __init__(self, node: Decompose, source_schemas):
        super().__init__(node, source_schemas)
        self._lens = _VerticalLens(source_schemas[0], node.first_columns, node.second_columns)

    def validate(self) -> None:
        source = self.source_schemas[0]
        listed = list(self.node.first_columns) + list(self.node.second_columns)
        require(
            len(set(listed)) == len(listed),
            "DECOMPOSE ON PK column lists must be disjoint",
        )
        for column in listed:
            require(
                source.has_column(column),
                f"table {self.node.table!r} has no column {column!r}",
            )
        require(
            set(listed) == set(source.column_names),
            "DECOMPOSE ON PK column lists must cover all columns",
        )

    def target_schemas(self) -> tuple[TableSchema, ...]:
        source = self.source_schemas[0]
        return (
            source.project(self.node.first_columns, table_name=self.node.first_table),
            source.project(self.node.second_columns, table_name=self.node.second_table),
        )

    def map_forward(self, ctx: MapContext) -> SideState:
        first, second = self._lens.decompose(ctx.read("R"))
        return {"S": first, "T": second}

    def map_backward(self, ctx: MapContext) -> SideState:
        return {"R": self._lens.outer_join(ctx.read("S"), ctx.read("T"))}

    def propagate_forward(self, changes, ctx):
        change = changes.get("R")
        if change is None:
            return {}
        first = TableChange(deletes=set(change.deletes))
        second = TableChange(deletes=set(change.deletes))
        for key, row in change.upserts.items():
            left, right = self._lens.split_row(row)
            if is_all_null(left):
                first.deletes.add(key)
            else:
                first.upserts[key] = left
            if is_all_null(right):
                second.deletes.add(key)
            else:
                second.upserts[key] = right
        return {"S": first, "T": second}

    def propagate_backward(self, changes, ctx):
        first_change = changes.get("S", TableChange())
        second_change = changes.get("T", TableChange())
        keys = first_change.keys() | second_change.keys()
        if not keys:
            return {}
        current_first = ctx.read_keys("S", keys)
        current_second = ctx.read_keys("T", keys)
        out = TableChange()
        for key in keys:
            left = current_first.get(key)
            right = current_second.get(key)
            if key in first_change.deletes:
                left = None
            elif key in first_change.upserts:
                left = first_change.upserts[key]
            if key in second_change.deletes:
                right = None
            elif key in second_change.upserts:
                right = second_change.upserts[key]
            if left is None and right is None:
                out.deletes.add(key)
            else:
                out.upserts[key] = self._lens.combine(left, right)
        return {"R": out}

    def gamma_tgt_rules(self) -> RuleSet:
        return _decompose_rules(self._lens, wide="R", first="S", second="T", name="decompose_pk.gamma_tgt")

    def gamma_src_rules(self) -> RuleSet:
        return _outer_join_rules(self._lens, wide="R", first="S", second="T", name="decompose_pk.gamma_src")


class OuterJoinPkSemantics(SmoSemantics):
    """``OUTER JOIN TABLE S, T INTO R ON PK`` — the inverse lens."""

    node: Join

    source_roles = ("S", "T")
    target_roles = ("R",)

    def __init__(self, node: Join, source_schemas):
        super().__init__(node, source_schemas)
        first, second = source_schemas
        wide = TableSchema(node.target, first.columns + second.columns)
        self._lens = _VerticalLens(wide, first.column_names, second.column_names)

    def validate(self) -> None:
        first, second = self.source_schemas
        overlap = set(first.column_names) & set(second.column_names)
        require(not overlap, f"OUTER JOIN ON PK requires disjoint columns (shared: {sorted(overlap)})")

    def target_schemas(self) -> tuple[TableSchema, ...]:
        first, second = self.source_schemas
        return (TableSchema(self.node.target, first.columns + second.columns),)

    def map_forward(self, ctx: MapContext) -> SideState:
        return {"R": self._lens.outer_join(ctx.read("S"), ctx.read("T"))}

    def map_backward(self, ctx: MapContext) -> SideState:
        first, second = self._lens.decompose(ctx.read("R"))
        return {"S": first, "T": second}

    def propagate_forward(self, changes, ctx):
        first_change = changes.get("S", TableChange())
        second_change = changes.get("T", TableChange())
        keys = first_change.keys() | second_change.keys()
        if not keys:
            return {}
        current_first = ctx.read_keys("S", keys)
        current_second = ctx.read_keys("T", keys)
        out = TableChange()
        for key in keys:
            left = current_first.get(key)
            right = current_second.get(key)
            if key in first_change.deletes:
                left = None
            elif key in first_change.upserts:
                left = first_change.upserts[key]
            if key in second_change.deletes:
                right = None
            elif key in second_change.upserts:
                right = second_change.upserts[key]
            if left is None and right is None:
                out.deletes.add(key)
            else:
                out.upserts[key] = self._lens.combine(left, right)
        return {"R": out}

    def propagate_backward(self, changes, ctx):
        change = changes.get("R")
        if change is None:
            return {}
        first = TableChange(deletes=set(change.deletes))
        second = TableChange(deletes=set(change.deletes))
        for key, row in change.upserts.items():
            left, right = self._lens.split_row(row)
            if is_all_null(left):
                first.deletes.add(key)
            else:
                first.upserts[key] = left
            if is_all_null(right):
                second.deletes.add(key)
            else:
                second.upserts[key] = right
        return {"S": first, "T": second}

    def gamma_tgt_rules(self) -> RuleSet:
        return _outer_join_rules(self._lens, wide="R", first="S", second="T", name="outer_join_pk.gamma_tgt")

    def gamma_src_rules(self) -> RuleSet:
        return _decompose_rules(self._lens, wide="R", first="S", second="T", name="outer_join_pk.gamma_src")


class InnerJoinPkSemantics(SmoSemantics):
    """``JOIN TABLE R, S INTO T ON PK`` (Appendix B.5).

    Unmatched rows are preserved in target-side aux tables ``Rplus`` and
    ``Splus`` so that materializing the SMO loses nothing."""

    node: Join

    source_roles = ("R", "S")
    target_roles = ("T",)

    def __init__(self, node: Join, source_schemas):
        super().__init__(node, source_schemas)
        first, second = source_schemas
        wide = TableSchema(node.target, first.columns + second.columns)
        self._lens = _VerticalLens(wide, first.column_names, second.column_names)

    def validate(self) -> None:
        first, second = self.source_schemas
        overlap = set(first.column_names) & set(second.column_names)
        require(not overlap, f"JOIN ON PK requires disjoint columns (shared: {sorted(overlap)})")

    def target_schemas(self) -> tuple[TableSchema, ...]:
        first, second = self.source_schemas
        return (TableSchema(self.node.target, first.columns + second.columns),)

    def aux_tgt(self) -> dict[str, TableSchema]:
        first, second = self.source_schemas
        return {
            "Rplus": first.with_name("Rplus"),
            "Splus": second.with_name("Splus"),
        }

    def map_forward(self, ctx: MapContext) -> SideState:
        first = ctx.read("R")
        second = ctx.read("S")
        joined: KeyedRows = {}
        rplus: KeyedRows = {}
        splus: KeyedRows = {}
        for key, left in first.items():
            right = second.get(key)
            if right is None:
                rplus[key] = left
            else:
                joined[key] = left + right
        for key, right in second.items():
            if key not in first:
                splus[key] = right
        return {"T": joined, "Rplus": rplus, "Splus": splus}

    def map_backward(self, ctx: MapContext) -> SideState:
        joined = ctx.read("T")
        first: KeyedRows = {}
        second: KeyedRows = {}
        for key, row in joined.items():
            left, right = self._lens.split_row(row)
            first[key] = left
            second[key] = right
        for key, row in ctx.read("Rplus").items():
            first.setdefault(key, row)
        for key, row in ctx.read("Splus").items():
            second.setdefault(key, row)
        return {"R": first, "S": second}

    def propagate_forward(self, changes, ctx):
        first_change = changes.get("R", TableChange())
        second_change = changes.get("S", TableChange())
        keys = first_change.keys() | second_change.keys()
        if not keys:
            return {}
        current_first = ctx.read_keys("R", keys)
        current_second = ctx.read_keys("S", keys)
        joined = TableChange()
        rplus = TableChange()
        splus = TableChange()
        for key in keys:
            left = current_first.get(key)
            right = current_second.get(key)
            if key in first_change.deletes:
                left = None
            elif key in first_change.upserts:
                left = first_change.upserts[key]
            if key in second_change.deletes:
                right = None
            elif key in second_change.upserts:
                right = second_change.upserts[key]
            if left is not None and right is not None:
                joined.upserts[key] = left + right
                rplus.deletes.add(key)
                splus.deletes.add(key)
            else:
                joined.deletes.add(key)
                if left is not None:
                    rplus.upserts[key] = left
                else:
                    rplus.deletes.add(key)
                if right is not None:
                    splus.upserts[key] = right
                else:
                    splus.deletes.add(key)
        return {"T": joined, "Rplus": rplus, "Splus": splus}

    def propagate_backward(self, changes, ctx):
        change = changes.get("T")
        if change is None:
            return {}
        first = TableChange(deletes=set(change.deletes))
        second = TableChange(deletes=set(change.deletes))
        for key, row in change.upserts.items():
            left, right = self._lens.split_row(row)
            first.upserts[key] = left
            second.upserts[key] = right
        return {"R": first, "S": second}

    def gamma_tgt_rules(self) -> RuleSet:
        key = Var("p")
        left = tuple(Var(f"a{i}") for i in range(len(self._lens.first_indices)))
        right = tuple(Var(f"b{i}") for i in range(len(self._lens.second_indices)))
        return RuleSet(
            (
                Rule(Atom("T", (key, *left, *right)), (Atom("R", (key, *left)), Atom("S", (key, *right)))),
                Rule(
                    Atom("Rplus", (key, *left)),
                    (Atom("R", (key, *left)), Atom("S", (key, *(wildcard() for _ in right)), False)),
                ),
                Rule(
                    Atom("Splus", (key, *right)),
                    (Atom("R", (key, *(wildcard() for _ in left)), False), Atom("S", (key, *right))),
                ),
            ),
            name="inner_join_pk.gamma_tgt",
        )

    def gamma_src_rules(self) -> RuleSet:
        key = Var("p")
        left = tuple(Var(f"a{i}") for i in range(len(self._lens.first_indices)))
        right = tuple(Var(f"b{i}") for i in range(len(self._lens.second_indices)))
        return RuleSet(
            (
                Rule(Atom("R", (key, *left)), (Atom("T", (key, *left, *(wildcard() for _ in right))),)),
                Rule(Atom("R", (key, *left)), (Atom("Rplus", (key, *left)),)),
                Rule(Atom("S", (key, *right)), (Atom("T", (key, *(wildcard() for _ in left), *right)),)),
                Rule(Atom("S", (key, *right)), (Atom("Splus", (key, *right)),)),
            ),
            name="inner_join_pk.gamma_src",
        )


def _decompose_rules(lens: _VerticalLens, *, wide: str, first: str, second: str, name: str) -> RuleSet:
    key = Var("p")
    left = tuple(Var(f"a{i}") for i in range(len(lens.first_indices)))
    right = tuple(Var(f"b{i}") for i in range(len(lens.second_indices)))
    wide_terms: list = [None] * lens.wide_schema.arity
    for term, index in zip(left, lens.first_indices):
        wide_terms[index] = term
    for term, index in zip(right, lens.second_indices):
        wide_terms[index] = term
    # All-null (ω) parts are skipped; expressed via != comparisons against
    # the all-null tuple.
    from repro.datalog.ast import Compare, Const

    omega_left = tuple(Const(None) for _ in left)
    omega_right = tuple(Const(None) for _ in right)
    return RuleSet(
        (
            Rule(
                Atom(first, (key, *left)),
                (Atom(wide, (key, *wide_terms)), Compare("!=", left, omega_left)),
            ),
            Rule(
                Atom(second, (key, *right)),
                (Atom(wide, (key, *wide_terms)), Compare("!=", right, omega_right)),
            ),
        ),
        name=name,
    )


def _outer_join_rules(lens: _VerticalLens, *, wide: str, first: str, second: str, name: str) -> RuleSet:
    from repro.datalog.ast import Const

    key = Var("p")
    left = tuple(Var(f"a{i}") for i in range(len(lens.first_indices)))
    right = tuple(Var(f"b{i}") for i in range(len(lens.second_indices)))

    def wide_head(l_terms, r_terms):
        terms: list = [None] * lens.wide_schema.arity
        for term, index in zip(l_terms, lens.first_indices):
            terms[index] = term
        for term, index in zip(r_terms, lens.second_indices):
            terms[index] = term
        return Atom(wide, (key, *terms))

    omega_left = tuple(Const(None) for _ in left)
    omega_right = tuple(Const(None) for _ in right)
    return RuleSet(
        (
            Rule(wide_head(left, right), (Atom(first, (key, *left)), Atom(second, (key, *right)))),
            Rule(
                wide_head(left, omega_right),
                (Atom(first, (key, *left)), Atom(second, (key, *(wildcard() for _ in right)), False)),
            ),
            Rule(
                wide_head(omega_left, right),
                (Atom(first, (key, *(wildcard() for _ in left)), False), Atom(second, (key, *right))),
            ),
        ),
        name=name,
    )
