"""BiDEL — the bidirectional database evolution language (Section 4).

The package contains the parser for the Figure-2 grammar and one semantics
module per SMO family. Each SMO's semantics object knows:

- how to evolve source table schemas into target table schemas;
- its two mapping functions ``γ_tgt``/``γ_src`` as executable state maps
  (including all auxiliary tables);
- the same mappings as instantiated Datalog rule sets (used for SQL/view
  generation and as the cross-checked reference semantics);
- the symbolic rule sets used by the formal bidirectionality verifier.
"""

from repro.bidel.ast import (
    AddColumn,
    CreateSchemaVersion,
    CreateTable,
    Decompose,
    DropColumn,
    DropSchemaVersion,
    DropTable,
    Join,
    Materialize,
    Merge,
    RenameColumn,
    RenameTable,
    SmoNode,
    Split,
    Statement,
)
from repro.bidel.parser import parse_script, parse_smo

__all__ = [
    "parse_script",
    "parse_smo",
    "Statement",
    "SmoNode",
    "CreateSchemaVersion",
    "DropSchemaVersion",
    "Materialize",
    "CreateTable",
    "DropTable",
    "RenameTable",
    "RenameColumn",
    "AddColumn",
    "DropColumn",
    "Decompose",
    "Join",
    "Split",
    "Merge",
]
