"""AST nodes for BiDEL statements and SMOs (grammar of Figure 2).

Every node can render itself back to BiDEL text (``unparse``), which the
test suite uses for parse→unparse→parse round trips and the Table-3 code
metrics use for counting BiDEL script sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.expr.ast import Expression
from repro.relational.types import DataType

# ---------------------------------------------------------------------------
# SMOs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ColumnDef:
    name: str
    dtype: DataType = DataType.ANY

    def unparse(self) -> str:
        if self.dtype is DataType.ANY:
            return self.name
        return f"{self.name} {self.dtype.value}"


@dataclass(frozen=True)
class CreateTable:
    table: str
    columns: tuple[ColumnDef, ...]

    def unparse(self) -> str:
        cols = ", ".join(column.unparse() for column in self.columns)
        return f"CREATE TABLE {self.table}({cols})"


@dataclass(frozen=True)
class DropTable:
    table: str

    def unparse(self) -> str:
        return f"DROP TABLE {self.table}"


@dataclass(frozen=True)
class RenameTable:
    table: str
    new_name: str

    def unparse(self) -> str:
        return f"RENAME TABLE {self.table} INTO {self.new_name}"


@dataclass(frozen=True)
class RenameColumn:
    table: str
    column: str
    new_name: str

    def unparse(self) -> str:
        return f"RENAME COLUMN {self.column} IN {self.table} TO {self.new_name}"


@dataclass(frozen=True)
class AddColumn:
    table: str
    column: str
    function: Expression
    dtype: DataType = DataType.ANY

    def unparse(self) -> str:
        return f"ADD COLUMN {self.column} AS {self.function.to_sql()} INTO {self.table}"


@dataclass(frozen=True)
class DropColumn:
    table: str
    column: str
    default: Expression

    def unparse(self) -> str:
        return f"DROP COLUMN {self.column} FROM {self.table} DEFAULT {self.default.to_sql()}"


@dataclass(frozen=True)
class JoinKind:
    """The ON clause of DECOMPOSE/JOIN: PK, FK <column>, or a condition."""

    method: str  # 'PK' | 'FK' | 'COND'
    fk_column: str | None = None
    condition: Expression | None = None

    def unparse(self) -> str:
        if self.method == "PK":
            return "PK"
        if self.method == "FK":
            return f"FK {self.fk_column}"
        assert self.condition is not None
        return self.condition.to_sql()


@dataclass(frozen=True)
class Decompose:
    table: str
    first_table: str
    first_columns: tuple[str, ...]
    second_table: str | None = None
    second_columns: tuple[str, ...] = ()
    kind: JoinKind = field(default_factory=lambda: JoinKind("PK"))

    def unparse(self) -> str:
        text = (
            f"DECOMPOSE TABLE {self.table} INTO "
            f"{self.first_table}({', '.join(self.first_columns)})"
        )
        if self.second_table is not None:
            text += f", {self.second_table}({', '.join(self.second_columns)})"
            text += f" ON {self.kind.unparse()}"
        return text


@dataclass(frozen=True)
class Join:
    first_table: str
    second_table: str
    target: str
    kind: JoinKind
    outer: bool = False

    def unparse(self) -> str:
        prefix = "OUTER JOIN" if self.outer else "JOIN"
        return (
            f"{prefix} TABLE {self.first_table}, {self.second_table} "
            f"INTO {self.target} ON {self.kind.unparse()}"
        )


@dataclass(frozen=True)
class Split:
    table: str
    first_table: str
    first_condition: Expression
    second_table: str | None = None
    second_condition: Expression | None = None

    def unparse(self) -> str:
        text = (
            f"SPLIT TABLE {self.table} INTO {self.first_table} "
            f"WITH {self.first_condition.to_sql()}"
        )
        if self.second_table is not None:
            assert self.second_condition is not None
            text += f", {self.second_table} WITH {self.second_condition.to_sql()}"
        return text


@dataclass(frozen=True)
class Merge:
    first_table: str
    first_condition: Expression
    second_table: str
    second_condition: Expression
    target: str

    def unparse(self) -> str:
        return (
            f"MERGE TABLE {self.first_table} ({self.first_condition.to_sql()}), "
            f"{self.second_table} ({self.second_condition.to_sql()}) INTO {self.target}"
        )


SmoNode = Union[
    CreateTable,
    DropTable,
    RenameTable,
    RenameColumn,
    AddColumn,
    DropColumn,
    Decompose,
    Join,
    Split,
    Merge,
]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CreateSchemaVersion:
    name: str
    source: str | None
    smos: tuple[SmoNode, ...]

    def unparse(self) -> str:
        header = f"CREATE SCHEMA VERSION {self.name}"
        if self.source is not None:
            header += f" FROM {self.source}"
        body = ";\n".join(smo.unparse() for smo in self.smos)
        return f"{header} WITH\n{body};"


@dataclass(frozen=True)
class DropSchemaVersion:
    name: str

    def unparse(self) -> str:
        return f"DROP SCHEMA VERSION {self.name};"


@dataclass(frozen=True)
class Materialize:
    """``MATERIALIZE 'TasKy2';`` or ``MATERIALIZE 'TasKy2.task', ...;``.

    Each target is either a schema version name (materialize all its table
    versions) or a ``version.table`` pair.  ``MATERIALIZE ONLINE ...`` runs
    the move as a journaled, crash-resumable background backfill instead of
    a single stop-the-world copy.
    """

    targets: tuple[str, ...]
    online: bool = False

    def unparse(self) -> str:
        rendered = ", ".join(f"'{target}'" for target in self.targets)
        keyword = "MATERIALIZE ONLINE" if self.online else "MATERIALIZE"
        return f"{keyword} {rendered};"


Statement = Union[CreateSchemaVersion, DropSchemaVersion, Materialize]
