"""Recursive-descent parser for BiDEL scripts (grammar of Figure 2).

The parser shares the tokenizer with the expression language; embedded
conditions and value functions are parsed by handing the token stream to
:class:`~repro.expr.parser.ExpressionParser` at the right positions.

Accepted statements::

    CREATE SCHEMA VERSION v2 [FROM v1] WITH smo; smo; ... ;
    DROP SCHEMA VERSION v1;
    MATERIALIZE 'v2' | 'v2.table' [, ...];

plus the ten SMO forms of Figure 2. ``ON FK`` may also be written
``ON FOREIGN KEY`` as in the paper's TasKy example.
"""

from __future__ import annotations

from repro.bidel.ast import (
    AddColumn,
    ColumnDef,
    CreateSchemaVersion,
    CreateTable,
    Decompose,
    DropColumn,
    DropSchemaVersion,
    DropTable,
    Join,
    JoinKind,
    Materialize,
    Merge,
    RenameColumn,
    RenameTable,
    SmoNode,
    Split,
    Statement,
)
from repro.errors import ParseError
from repro.expr import lexer
from repro.expr.ast import Expression
from repro.expr.lexer import Token, tokenize
from repro.expr.parser import ExpressionParser
from repro.relational.types import DataType

_STATEMENT_STARTERS = ("CREATE", "DROP", "MATERIALIZE")
_SMO_STARTERS = (
    "CREATE",
    "DROP",
    "RENAME",
    "ADD",
    "DECOMPOSE",
    "JOIN",
    "OUTER",
    "SPLIT",
    "MERGE",
)


class BidelParser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._position = 0

    # -- token helpers -----------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._position + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _next(self) -> Token:
        token = self._tokens[self._position]
        if token.kind != lexer.EOF:
            self._position += 1
        return token

    def _error(self, message: str) -> ParseError:
        token = self._peek()
        return ParseError(message, token.line, token.column)

    def _expect_keyword(self, word: str) -> None:
        token = self._next()
        if not token.matches_keyword(word):
            raise ParseError(
                f"expected {word}, found {token.value!r}", token.line, token.column
            )

    def _accept_keyword(self, word: str) -> bool:
        if self._peek().matches_keyword(word):
            self._next()
            return True
        return False

    def _expect_kind(self, kind: str, what: str) -> Token:
        token = self._next()
        if token.kind != kind:
            raise ParseError(
                f"expected {what}, found {token.value!r}", token.line, token.column
            )
        return token

    def _identifier(self, what: str = "identifier") -> str:
        return self._expect_kind(lexer.IDENT, what).value

    def _expression(self) -> Expression:
        inner = ExpressionParser(self._tokens, self._position)
        expression = inner.parse()
        self._position = inner.position
        return expression

    # -- statements ----------------------------------------------------------

    def parse_script(self) -> list[Statement]:
        statements: list[Statement] = []
        while self._peek().kind != lexer.EOF:
            statements.append(self._statement())
        return statements

    def _statement(self) -> Statement:
        token = self._peek()
        if token.matches_keyword("CREATE") and self._peek(1).matches_keyword("SCHEMA"):
            return self._create_schema_version()
        if token.matches_keyword("DROP") and self._peek(1).matches_keyword("SCHEMA"):
            return self._drop_schema_version()
        if token.matches_keyword("MATERIALIZE"):
            return self._materialize()
        raise self._error(
            "expected CREATE SCHEMA VERSION, DROP SCHEMA VERSION, or MATERIALIZE"
        )

    def _create_schema_version(self) -> CreateSchemaVersion:
        self._expect_keyword("CREATE")
        self._expect_keyword("SCHEMA")
        self._expect_keyword("VERSION")
        name = self._identifier("schema version name")
        source: str | None = None
        if self._accept_keyword("FROM"):
            source = self._identifier("source schema version name")
        self._expect_keyword("WITH")
        smos: list[SmoNode] = [self.parse_smo()]
        while True:
            if self._peek().kind == lexer.SEMICOLON:
                self._next()
            if self._peek().kind == lexer.EOF:
                break
            if self._starts_new_statement():
                break
            smos.append(self.parse_smo())
        return CreateSchemaVersion(name, source, tuple(smos))

    def _starts_new_statement(self) -> bool:
        token = self._peek()
        if token.matches_keyword("MATERIALIZE"):
            return True
        if token.matches_keyword("CREATE") and self._peek(1).matches_keyword("SCHEMA"):
            return True
        if token.matches_keyword("DROP") and self._peek(1).matches_keyword("SCHEMA"):
            return True
        return False

    def _drop_schema_version(self) -> DropSchemaVersion:
        self._expect_keyword("DROP")
        self._expect_keyword("SCHEMA")
        self._expect_keyword("VERSION")
        name = self._identifier("schema version name")
        if self._peek().kind == lexer.SEMICOLON:
            self._next()
        return DropSchemaVersion(name)

    def _materialize(self) -> Materialize:
        self._expect_keyword("MATERIALIZE")
        online = False
        # ONLINE is only the modifier when a target still follows; a bare
        # version actually named ONLINE keeps parsing as a target.
        if self._peek().matches_keyword("ONLINE") and self._peek(1).kind in (
            lexer.STRING,
            lexer.IDENT,
        ):
            self._next()
            online = True
        targets = [self._materialize_target()]
        while self._peek().kind == lexer.COMMA:
            self._next()
            targets.append(self._materialize_target())
        if self._peek().kind == lexer.SEMICOLON:
            self._next()
        return Materialize(tuple(targets), online=online)

    def _materialize_target(self) -> str:
        token = self._next()
        if token.kind == lexer.STRING:
            return token.value
        if token.kind == lexer.IDENT:
            # Unquoted form: version or version.table
            name = token.value
            if self._peek().kind == lexer.DOT:
                self._next()
                name += "." + self._identifier("table name")
            return name
        raise ParseError(
            f"expected materialization target, found {token.value!r}",
            token.line,
            token.column,
        )

    # -- SMOs ------------------------------------------------------------

    def parse_smo(self) -> SmoNode:
        token = self._peek()
        if token.matches_keyword("CREATE"):
            return self._create_table()
        if token.matches_keyword("DROP") and self._peek(1).matches_keyword("TABLE"):
            return self._drop_table()
        if token.matches_keyword("DROP") and self._peek(1).matches_keyword("COLUMN"):
            return self._drop_column()
        if token.matches_keyword("RENAME") and self._peek(1).matches_keyword("TABLE"):
            return self._rename_table()
        if token.matches_keyword("RENAME") and self._peek(1).matches_keyword("COLUMN"):
            return self._rename_column()
        if token.matches_keyword("ADD"):
            return self._add_column()
        if token.matches_keyword("DECOMPOSE"):
            return self._decompose()
        if token.matches_keyword("JOIN") or token.matches_keyword("OUTER"):
            return self._join()
        if token.matches_keyword("SPLIT"):
            return self._split()
        if token.matches_keyword("MERGE"):
            return self._merge()
        raise self._error(f"expected an SMO, found {token.value!r}")

    def _create_table(self) -> CreateTable:
        self._expect_keyword("CREATE")
        self._expect_keyword("TABLE")
        table = self._identifier("table name")
        self._expect_kind(lexer.LPAREN, "'('")
        columns = [self._column_def()]
        while self._peek().kind == lexer.COMMA:
            self._next()
            columns.append(self._column_def())
        self._expect_kind(lexer.RPAREN, "')'")
        return CreateTable(table, tuple(columns))

    def _column_def(self) -> ColumnDef:
        name = self._identifier("column name")
        if self._peek().kind == lexer.IDENT and not self._peek().matches_keyword("ON"):
            type_token = self._next()
            return ColumnDef(name, DataType.parse(type_token.value))
        return ColumnDef(name)

    def _drop_table(self) -> DropTable:
        self._expect_keyword("DROP")
        self._expect_keyword("TABLE")
        return DropTable(self._identifier("table name"))

    def _rename_table(self) -> RenameTable:
        self._expect_keyword("RENAME")
        self._expect_keyword("TABLE")
        table = self._identifier("table name")
        self._expect_keyword("INTO")
        return RenameTable(table, self._identifier("new table name"))

    def _rename_column(self) -> RenameColumn:
        self._expect_keyword("RENAME")
        self._expect_keyword("COLUMN")
        column = self._identifier("column name")
        self._expect_keyword("IN")
        table = self._identifier("table name")
        self._expect_keyword("TO")
        return RenameColumn(table, column, self._identifier("new column name"))

    def _add_column(self) -> AddColumn:
        self._expect_keyword("ADD")
        self._expect_keyword("COLUMN")
        column = self._identifier("column name")
        dtype = DataType.ANY
        if self._peek().kind == lexer.IDENT and not self._peek().matches_keyword("AS"):
            dtype = DataType.parse(self._next().value)
        self._expect_keyword("AS")
        function = self._expression()
        self._expect_keyword("INTO")
        table = self._identifier("table name")
        return AddColumn(table, column, function, dtype)

    def _drop_column(self) -> DropColumn:
        self._expect_keyword("DROP")
        self._expect_keyword("COLUMN")
        column = self._identifier("column name")
        self._expect_keyword("FROM")
        table = self._identifier("table name")
        self._expect_keyword("DEFAULT")
        default = self._expression()
        return DropColumn(table, column, default)

    def _column_list(self) -> tuple[str, ...]:
        self._expect_kind(lexer.LPAREN, "'('")
        names = [self._identifier("column name")]
        while self._peek().kind == lexer.COMMA:
            self._next()
            names.append(self._identifier("column name"))
        self._expect_kind(lexer.RPAREN, "')'")
        return tuple(names)

    def _join_kind(self) -> JoinKind:
        if self._accept_keyword("PK"):
            return JoinKind("PK")
        if self._accept_keyword("FK"):
            return JoinKind("FK", fk_column=self._identifier("foreign key column"))
        if self._accept_keyword("FOREIGN"):
            self._expect_keyword("KEY")
            return JoinKind("FK", fk_column=self._identifier("foreign key column"))
        return JoinKind("COND", condition=self._expression())

    def _decompose(self) -> Decompose:
        self._expect_keyword("DECOMPOSE")
        self._expect_keyword("TABLE")
        table = self._identifier("table name")
        self._expect_keyword("INTO")
        first_table = self._identifier("table name")
        first_columns = self._column_list()
        second_table: str | None = None
        second_columns: tuple[str, ...] = ()
        kind = JoinKind("PK")
        if self._peek().kind == lexer.COMMA:
            self._next()
            second_table = self._identifier("table name")
            second_columns = self._column_list()
            self._expect_keyword("ON")
            kind = self._join_kind()
        return Decompose(table, first_table, first_columns, second_table, second_columns, kind)

    def _join(self) -> Join:
        outer = self._accept_keyword("OUTER")
        self._expect_keyword("JOIN")
        self._expect_keyword("TABLE")
        first = self._identifier("table name")
        self._expect_kind(lexer.COMMA, "','")
        second = self._identifier("table name")
        self._expect_keyword("INTO")
        target = self._identifier("table name")
        self._expect_keyword("ON")
        return Join(first, second, target, self._join_kind(), outer)

    def _split(self) -> Split:
        self._expect_keyword("SPLIT")
        self._expect_keyword("TABLE")
        table = self._identifier("table name")
        self._expect_keyword("INTO")
        first = self._identifier("table name")
        self._expect_keyword("WITH")
        first_condition = self._expression()
        second: str | None = None
        second_condition: Expression | None = None
        if self._peek().kind == lexer.COMMA:
            self._next()
            second = self._identifier("table name")
            self._expect_keyword("WITH")
            second_condition = self._expression()
        return Split(table, first, first_condition, second, second_condition)

    def _merge(self) -> Merge:
        self._expect_keyword("MERGE")
        self._expect_keyword("TABLE")
        first = self._identifier("table name")
        self._expect_kind(lexer.LPAREN, "'('")
        first_condition = self._expression()
        self._expect_kind(lexer.RPAREN, "')'")
        self._expect_kind(lexer.COMMA, "','")
        second = self._identifier("table name")
        self._expect_kind(lexer.LPAREN, "'('")
        second_condition = self._expression()
        self._expect_kind(lexer.RPAREN, "')'")
        self._expect_keyword("INTO")
        target = self._identifier("table name")
        return Merge(first, first_condition, second, second_condition, target)


def parse_script(text: str) -> list[Statement]:
    """Parse a full BiDEL script into statements."""
    return BidelParser(tokenize(text)).parse_script()


def parse_smo(text: str) -> SmoNode:
    """Parse a single SMO (convenience for tests and examples)."""
    parser = BidelParser(tokenize(text))
    smo = parser.parse_smo()
    if parser._peek().kind == lexer.SEMICOLON:
        parser._next()
    trailing = parser._peek()
    if trailing.kind != lexer.EOF:
        raise ParseError(
            f"unexpected trailing input {trailing.value!r}", trailing.line, trailing.column
        )
    return smo
