"""A Wikimedia-style 171-version schema evolution (Sections 8.1 and 8.3).

The paper replays the 171 schema versions of the Wikimedia database whose
211 SMOs follow the histogram of Table 4. The real DDL history and the
Akan-wiki dump are not redistributable inputs, so this module generates a
*synthetic* evolution with exactly the same SMO histogram and version
count, plus a scaled page/link data generator (the paper loads 14,359
pages and 536,283 links; the scale factor makes laptop runs practical
while preserving the long-propagation-chain behaviour the experiments
measure).

Design of the synthetic history:

- two long-lived core tables, ``page`` and ``links``, survive from v001 to
  v171 and absorb the ADD/DROP/RENAME COLUMN traffic — mirroring how the
  real history evolves ``page``/``pagelinks`` continuously;
- CREATE/DROP TABLE churn happens on satellite tables;
- the four DECOMPOSE ON FK and two MERGE operations restructure satellite
  tables, matching Table 4's counts (JOIN and SPLIT occur zero times in
  the real history, as in Table 4).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.engine import InVerDa
from repro.sql.connection import connect

# Table 4 of the paper: SMO usage in the Wikimedia evolution.
TABLE4_HISTOGRAM = {
    "CREATE TABLE": 42,
    "DROP TABLE": 10,
    "RENAME TABLE": 1,
    "ADD COLUMN": 95,
    "DROP COLUMN": 21,
    "RENAME COLUMN": 36,
    "JOIN": 0,
    "DECOMPOSE": 4,
    "MERGE": 2,
    "SPLIT": 0,
}
TOTAL_SMOS = sum(TABLE4_HISTOGRAM.values())  # 211
NUM_VERSIONS = 171

# Paper version labels for the benchmark's anchor points.
PAPER_VERSION_LABELS = {
    1: "v01284",
    28: "v04619",
    109: "v16524",
    171: "v25635",
}

PAGE_SCALE_BASE = 14_359
LINK_SCALE_BASE = 536_283


def _version_name(index: int) -> str:
    return f"v{index:03d}"


@dataclass
class _PlanState:
    """Tracks the synthetic schema while generating a valid SMO plan."""

    rng: random.Random
    tables: dict[str, list[str]] = field(default_factory=dict)
    next_table_id: int = 0
    next_column_id: int = 0
    protected: set[str] = field(default_factory=set)

    def new_table_name(self) -> str:
        self.next_table_id += 1
        return f"sat{self.next_table_id:03d}"

    def new_column_name(self) -> str:
        self.next_column_id += 1
        return f"c{self.next_column_id:03d}"

    def satellite_tables(self) -> list[str]:
        return sorted(name for name in self.tables if name not in self.protected)


def _generate_plan(seed: int) -> list[list[str]]:
    """Produce 170 evolution steps (version v002..v171), each a list of
    BiDEL SMO statements, with exactly the Table-4 histogram overall."""
    rng = random.Random(seed)
    state = _PlanState(rng=rng)
    state.tables["page"] = ["title", "namespace", "text_len"]
    state.tables["links"] = ["src_title", "dst_title", "link_type"]
    state.protected = {"page", "links"}

    remaining = dict(TABLE4_HISTOGRAM)
    remaining["CREATE TABLE"] -= 2  # page and links are created in v001
    plan: list[list[str]] = []

    def emit_create() -> str:
        name = state.new_table_name()
        if rng.random() < 0.4:
            # A recurring standard shape so MERGE finds compatible pairs,
            # like the status/log tables of the real history.
            columns = ["entry_key", "entry_val"]
        else:
            columns = [state.new_column_name() for _ in range(rng.randint(2, 4))]
        state.tables[name] = list(columns)
        rendered = ", ".join(f"{column} INTEGER" for column in columns)
        return f"CREATE TABLE {name}({rendered})"

    def emit_drop_table() -> str | None:
        candidates = state.satellite_tables()
        if not candidates:
            return None
        name = rng.choice(candidates)
        del state.tables[name]
        return f"DROP TABLE {name}"

    def emit_rename_table() -> str | None:
        candidates = state.satellite_tables()
        if not candidates:
            return None
        name = rng.choice(candidates)
        new_name = state.new_table_name()
        state.tables[new_name] = state.tables.pop(name)
        return f"RENAME TABLE {name} INTO {new_name}"

    def emit_add_column() -> str:
        table = rng.choice(sorted(state.tables))
        column = state.new_column_name()
        state.tables[table].append(column)
        return f"ADD COLUMN {column} AS 0 INTO {table}"

    def emit_drop_column() -> str | None:
        candidates = [
            name
            for name, columns in sorted(state.tables.items())
            if len(columns) > 2 and name not in state.protected
        ]
        # Dropping a generated column of a core table is fine, too.
        candidates += [
            name
            for name in sorted(state.protected)
            if len(state.tables[name]) > 3
        ]
        if not candidates:
            return None
        table = rng.choice(candidates)
        column = state.tables[table][-1]
        state.tables[table].remove(column)
        return f"DROP COLUMN {column} FROM {table} DEFAULT 0"

    def emit_rename_column() -> str:
        table = rng.choice(sorted(state.tables))
        column = rng.choice(state.tables[table])
        new_column = state.new_column_name()
        columns = state.tables[table]
        columns[columns.index(column)] = new_column
        return f"RENAME COLUMN {column} IN {table} TO {new_column}"

    def emit_decompose() -> str | None:
        candidates = [
            name
            for name, columns in sorted(state.tables.items())
            if len(columns) >= 3 and name not in state.protected
        ]
        if not candidates:
            return None
        table = rng.choice(candidates)
        columns = state.tables.pop(table)
        keep, moved = columns[:-1], columns[-1:]
        first = state.new_table_name()
        second = state.new_table_name()
        fk = state.new_column_name()
        state.tables[first] = keep + [fk]
        state.tables[second] = ["id"] + moved
        kept = ", ".join(keep)
        out = ", ".join(moved)
        return (
            f"DECOMPOSE TABLE {table} INTO {first}({kept}), "
            f"{second}({out}) ON FK {fk}"
        )

    def emit_merge() -> str | None:
        # Merge needs two union-compatible tables: create them on the spot
        # is not allowed (counts are fixed), so find or skip.
        by_shape: dict[tuple[str, ...], list[str]] = {}
        for name in state.satellite_tables():
            by_shape.setdefault(tuple(state.tables[name]), []).append(name)
        for shape, names in sorted(by_shape.items()):
            if len(names) >= 2:
                first, second = names[0], names[1]
                target = state.new_table_name()
                state.tables[target] = list(shape)
                del state.tables[first]
                del state.tables[second]
                pivot = shape[0]
                return (
                    f"MERGE TABLE {first} ({pivot} >= 0), "
                    f"{second} ({pivot} < 0) INTO {target}"
                )
        return None

    emitters = {
        "CREATE TABLE": emit_create,
        "DROP TABLE": emit_drop_table,
        "RENAME TABLE": emit_rename_table,
        "ADD COLUMN": emit_add_column,
        "DROP COLUMN": emit_drop_column,
        "RENAME COLUMN": emit_rename_column,
        "DECOMPOSE": emit_decompose,
        "MERGE": emit_merge,
    }

    # Generate the flat sequence of the 209 remaining SMOs, drawing kinds
    # weighted by their remaining budget and skipping infeasible draws.
    sequence: list[str] = []
    stalled = 0
    while sum(remaining.values()) > 0 and stalled < 1000:
        weighted = [kind for kind, count in remaining.items() for _ in range(count)]
        rng.shuffle(weighted)
        produced = None
        for kind in weighted:
            produced = emitters[kind]()
            if produced is not None:
                remaining[kind] -= 1
                sequence.append(produced)
                stalled = 0
                break
        if produced is None:
            stalled += 1
    leftovers = {kind: count for kind, count in remaining.items() if count}
    if leftovers:  # pragma: no cover - generator invariant
        raise RuntimeError(f"could not place all SMOs: {leftovers}")

    # Chunk the sequence into 170 steps, each with at least one SMO.
    steps = NUM_VERSIONS - 1
    extras = len(sequence) - steps
    extra_steps = set(rng.sample(range(steps), extras)) if extras > 0 else set()
    cursor = 0
    for step in range(steps):
        take = 1 + (1 if step in extra_steps else 0)
        take = min(take, len(sequence) - cursor - (steps - step - 1))
        take = max(take, 1) if cursor < len(sequence) else 0
        statements = sequence[cursor : cursor + take]
        cursor += take
        if not statements:  # pragma: no cover - arithmetic guarantees content
            statements = [emit_add_column()]
        plan.append(statements)
    return plan


@dataclass
class WikimediaScenario:
    engine: InVerDa
    version_names: list[str]
    plan: list[list[str]]
    pages: int
    links: int

    def version_at(self, index: int) -> str:
        """1-based version index → version name (1 = the initial version)."""
        return self.version_names[index - 1]

    def smo_histogram(self) -> dict[str, int]:
        counts = {kind: 0 for kind in TABLE4_HISTOGRAM}
        counts["CREATE TABLE"] = 2
        for statements in self.plan:
            for statement in statements:
                head = statement.split()[0]
                if head == "CREATE":
                    counts["CREATE TABLE"] += 1
                elif head == "DROP" and statement.split()[1] == "TABLE":
                    counts["DROP TABLE"] += 1
                elif head == "DROP":
                    counts["DROP COLUMN"] += 1
                elif head == "RENAME" and statement.split()[1] == "TABLE":
                    counts["RENAME TABLE"] += 1
                elif head == "RENAME":
                    counts["RENAME COLUMN"] += 1
                elif head == "ADD":
                    counts["ADD COLUMN"] += 1
                elif head == "DECOMPOSE":
                    counts["DECOMPOSE"] += 1
                elif head == "MERGE":
                    counts["MERGE"] += 1
                elif head == "JOIN":
                    counts["JOIN"] += 1
                elif head == "SPLIT":
                    counts["SPLIT"] += 1
        return counts

    def template_queries(self, version: str) -> list[tuple[str, str]]:
        """(table, description) pairs standing in for the template queries
        of the Wikipedia benchmark at ``version``."""
        tables = self.engine.genealogy.schema_version(version).table_names()
        interesting = [name for name in ("page", "links") if name in tables]
        return [(name, f"scan {name} at {version}") for name in interesting]


def build_wikimedia(
    *,
    scale: float = 0.01,
    versions: int = NUM_VERSIONS,
    seed: int = 2017,
) -> WikimediaScenario:
    """Build the synthetic Wikimedia evolution with data loaded at v001.

    ``scale`` multiplies the Akan-wiki sizes (14,359 pages / 536,283
    links); ``versions`` can be reduced for quick tests.
    """
    rng = random.Random(seed)
    plan = _generate_plan(seed)[: max(versions - 1, 0)]
    engine = InVerDa()
    engine.execute(
        """
        CREATE SCHEMA VERSION v001 WITH
        CREATE TABLE page(title TEXT, namespace INTEGER, text_len INTEGER);
        CREATE TABLE links(src_title TEXT, dst_title TEXT, link_type INTEGER);
        """
    )
    pages = max(int(PAGE_SCALE_BASE * scale), 10)
    links = max(int(LINK_SCALE_BASE * scale), 20)
    v001 = connect(engine, "v001", autocommit=True)
    v001.executemany(
        "INSERT INTO page(title, namespace, text_len) VALUES (?, ?, ?)",
        [
            (f"Page_{index}", rng.randint(0, 15), rng.randint(50, 50_000))
            for index in range(pages)
        ],
    )
    v001.executemany(
        "INSERT INTO links(src_title, dst_title, link_type) VALUES (?, ?, ?)",
        [
            (
                f"Page_{rng.randrange(pages)}",
                f"Page_{rng.randrange(pages)}",
                rng.randint(0, 3),
            )
            for _ in range(links)
        ],
    )
    v001.close()
    version_names = ["v001"]
    for step, statements in enumerate(plan, start=2):
        name = _version_name(step)
        body = ";\n".join(statements)
        engine.execute(
            f"CREATE SCHEMA VERSION {name} FROM {version_names[-1]} WITH\n{body};"
        )
        version_names.append(name)
    return WikimediaScenario(
        engine=engine,
        version_names=version_names,
        plan=plan,
        pages=pages,
        links=links,
    )
