"""Two-SMO micro-benchmark scenarios (Section 8.3, Figure 13).

Every scenario is a chain ``v1 —SMO1→ v2 —SMO2→ v3`` where the middle
version always contains a table ``R(a, b, c)`` (exactly the paper's setup).
The first SMO is chosen so that its target is that table; the second SMO
consumes it. Reading ``v3`` under the three materializations (v1, v2, v3)
then measures zero, one, and two propagation hops.
"""

from __future__ import annotations

import random

from repro.core.engine import InVerDa
from repro.errors import ReproError
from repro.sql.connection import connect

# SMO1 variants: each creates R(a, b, c) in version v2.
TWO_SMO_FIRST = {
    "add_column": (
        "CREATE TABLE R(a INTEGER, b INTEGER)",
        "ADD COLUMN c AS a + b INTO R",
    ),
    "drop_column": (
        "CREATE TABLE R(a INTEGER, b INTEGER, c INTEGER, d INTEGER)",
        "DROP COLUMN d FROM R DEFAULT 0",
    ),
    "split": (
        "CREATE TABLE T0(a INTEGER, b INTEGER, c INTEGER)",
        "SPLIT TABLE T0 INTO R WITH a % 2 = 0",
    ),
    "merge": (
        "CREATE TABLE M1(a INTEGER, b INTEGER, c INTEGER); "
        "CREATE TABLE M2(a INTEGER, b INTEGER, c INTEGER)",
        "MERGE TABLE M1 (a % 2 = 0), M2 (a % 2 = 1) INTO R",
    ),
    "join_pk": (
        "CREATE TABLE L1(a INTEGER); CREATE TABLE L2(b INTEGER, c INTEGER)",
        "JOIN TABLE L1, L2 INTO R ON PK",
    ),
    "decompose_pk": (
        "CREATE TABLE W0(a INTEGER, b INTEGER, c INTEGER, x INTEGER)",
        "DECOMPOSE TABLE W0 INTO R(a, b, c), X0(x) ON PK",
    ),
}

# SMO2 variants: each consumes R(a, b, c) from version v2.
TWO_SMO_SECOND = {
    "add_column": "ADD COLUMN d AS a * 2 INTO R",
    "drop_column": "DROP COLUMN c FROM R DEFAULT 0",
    "split": "SPLIT TABLE R INTO R1 WITH a % 2 = 0, R2 WITH a % 2 = 1",
    "decompose_pk": "DECOMPOSE TABLE R INTO Ra(a), Rbc(b, c) ON PK",
}

# The table to read in version v3, per SMO2 variant.
V3_READ_TABLE = {
    "add_column": "R",
    "drop_column": "R",
    "split": "R1",
    "decompose_pk": "Rbc",
}


def _load_rows(engine: InVerDa, first: str, rows: int, seed: int) -> None:
    rng = random.Random(seed)
    v1 = connect(engine, "v1", autocommit=True)

    def abc() -> tuple[int, int, int]:
        return (rng.randint(0, 1000), rng.randint(0, 1000), rng.randint(0, 1000))

    if first == "add_column":
        v1.executemany(
            "INSERT INTO R(a, b) VALUES (?, ?)",
            [(rng.randint(0, 1000), rng.randint(0, 1000)) for _ in range(rows)],
        )
    elif first == "drop_column":
        v1.executemany(
            "INSERT INTO R(a, b, c, d) VALUES (?, ?, ?, ?)",
            [(*abc(), rng.randint(0, 1000)) for _ in range(rows)],
        )
    elif first == "split":
        v1.executemany(
            "INSERT INTO T0(a, b, c) VALUES (?, ?, ?)", [abc() for _ in range(rows)]
        )
    elif first == "merge":
        half = rows // 2
        v1.executemany(
            "INSERT INTO M1(a, b, c) VALUES (?, ?, ?)",
            [(2 * i, *abc()[1:]) for i in range(half)],
        )
        v1.executemany(
            "INSERT INTO M2(a, b, c) VALUES (?, ?, ?)",
            [(2 * i + 1, *abc()[1:]) for i in range(rows - half)],
        )
    elif first == "join_pk":
        # Join on PK aligns rows by internal tuple identifier, which SQL
        # clients cannot choose on INSERT — load L1 through the engine to
        # learn the keys, then reuse them verbatim for the partner rows.
        from repro.bidel.smo.base import TableChange
        from repro.sql.planner import insert_rows

        l1 = engine.genealogy.schema_version("v1").table_version("L1")
        keys = insert_rows(
            engine, l1, [{"a": rng.randint(0, 1000)} for _ in range(rows)]
        )
        tv = engine.genealogy.schema_version("v1").table_version("L2")
        change = TableChange(
            upserts={
                key: tv.schema.row_from_mapping(
                    {"b": rng.randint(0, 1000), "c": rng.randint(0, 1000)}
                )
                for key in keys
            }
        )
        engine.apply_change(tv, change)
    elif first == "decompose_pk":
        v1.executemany(
            "INSERT INTO W0(a, b, c, x) VALUES (?, ?, ?, ?)",
            [(*abc(), rng.randint(0, 1000)) for _ in range(rows)],
        )
    else:  # pragma: no cover
        raise ReproError(f"unknown first SMO {first!r}")
    v1.close()


def build_two_smo_scenario(
    first: str,
    second: str,
    rows: int = 1000,
    *,
    seed: int = 7,
) -> InVerDa:
    """Build ``v1 —first→ v2 —second→ v3`` with ``rows`` rows loaded in v1."""
    if first not in TWO_SMO_FIRST:
        raise ReproError(f"unknown first SMO {first!r}; choose from {sorted(TWO_SMO_FIRST)}")
    if second not in TWO_SMO_SECOND:
        raise ReproError(f"unknown second SMO {second!r}; choose from {sorted(TWO_SMO_SECOND)}")
    create_sql, first_smo = TWO_SMO_FIRST[first]
    engine = InVerDa()
    engine.execute(f"CREATE SCHEMA VERSION v1 WITH {create_sql};")
    _load_rows(engine, first, rows, seed)
    engine.execute(f"CREATE SCHEMA VERSION v2 FROM v1 WITH {first_smo};")
    engine.execute(f"CREATE SCHEMA VERSION v3 FROM v2 WITH {TWO_SMO_SECOND[second]};")
    return engine
