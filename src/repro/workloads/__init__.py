"""Workload scenarios driving the evaluation (Section 8)."""

from repro.workloads.mixes import WorkloadMix, adoption_curve, run_mix
from repro.workloads.orders import OrdersScenario, assign_version_pins, build_orders
from repro.workloads.tasky import TaskyScenario, build_tasky
from repro.workloads.micro import TWO_SMO_FIRST, TWO_SMO_SECOND, build_two_smo_scenario
from repro.workloads.wikimedia import WikimediaScenario, build_wikimedia

__all__ = [
    "TaskyScenario",
    "build_tasky",
    "WorkloadMix",
    "run_mix",
    "adoption_curve",
    "build_two_smo_scenario",
    "TWO_SMO_FIRST",
    "TWO_SMO_SECOND",
    "OrdersScenario",
    "assign_version_pins",
    "build_orders",
    "WikimediaScenario",
    "build_wikimedia",
]
