"""Workload mixes and the adoption curve used by Figures 9–11.

The paper's flexible-materialization experiments mix 50 % reads, 20 %
inserts, 20 % updates, and 10 % deletes, and shift the share of accesses
from the old to the new schema version following the Technology Adoption
Life Cycle; we model the cumulative adoption with a logistic curve.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.core.access import VersionConnection


@dataclass(frozen=True)
class WorkloadMix:
    """Operation shares; they must sum to 1."""

    reads: float
    inserts: float
    updates: float
    deletes: float

    def __post_init__(self) -> None:
        total = self.reads + self.inserts + self.updates + self.deletes
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"workload mix must sum to 1, got {total}")


PAPER_MIX = WorkloadMix(reads=0.5, inserts=0.2, updates=0.2, deletes=0.1)
READ_ONLY = WorkloadMix(reads=1.0, inserts=0.0, updates=0.0, deletes=0.0)
WRITE_ONLY = WorkloadMix(reads=0.0, inserts=1.0, updates=0.0, deletes=0.0)


def adoption_curve(slices: int, *, steepness: float = 10.0) -> list[float]:
    """Fraction of accesses on the *new* version per time slice, following
    a logistic Technology-Adoption-Life-Cycle shape from ~0 to ~1."""
    values = []
    for index in range(slices):
        x = index / max(slices - 1, 1)
        values.append(1.0 / (1.0 + math.exp(-steepness * (x - 0.5))))
    return values


def run_mix(
    connection: VersionConnection,
    table: str,
    operations: int,
    mix: WorkloadMix,
    rng: random.Random,
    *,
    make_row,
    update_row,
) -> None:
    """Execute ``operations`` randomized operations against ``table``.

    ``make_row()`` produces values for inserts; ``update_row(row)`` returns
    the SET mapping for updates. Victims for updates/deletes are sampled
    from a periodically refreshed key snapshot, like a client application
    that lists tasks and then modifies one of them.
    """
    keys: list[int] = []

    def refresh_keys() -> None:
        keys.clear()
        keys.extend(connection.select_keyed(table).keys())

    refresh_keys()
    for _ in range(operations):
        choice = rng.random()
        if choice < mix.reads:
            connection.select(table)
        elif choice < mix.reads + mix.inserts:
            keys.append(connection.insert(table, make_row()))
        elif choice < mix.reads + mix.inserts + mix.updates:
            if not keys:
                refresh_keys()
            if keys:
                victim = rng.choice(keys)
                row = connection.select_keyed(table).get(victim)
                if row is None:
                    refresh_keys()
                    continue
                connection.update_by_key(table, victim, update_row(row))
        else:
            if not keys:
                refresh_keys()
            if keys:
                victim = keys.pop(rng.randrange(len(keys)))
                try:
                    connection.delete_by_key(table, victim)
                except Exception:
                    refresh_keys()
