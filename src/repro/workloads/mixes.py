"""Workload mixes and the adoption curve used by Figures 9–11.

The paper's flexible-materialization experiments mix 50 % reads, 20 %
inserts, 20 % updates, and 10 % deletes, and shift the share of accesses
from the old to the new schema version following the Technology Adoption
Life Cycle; we model the cumulative adoption with a logistic curve.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.sql.connection import Connection


@dataclass(frozen=True)
class WorkloadMix:
    """Operation shares; they must sum to 1."""

    reads: float
    inserts: float
    updates: float
    deletes: float

    def __post_init__(self) -> None:
        total = self.reads + self.inserts + self.updates + self.deletes
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"workload mix must sum to 1, got {total}")


PAPER_MIX = WorkloadMix(reads=0.5, inserts=0.2, updates=0.2, deletes=0.1)
READ_ONLY = WorkloadMix(reads=1.0, inserts=0.0, updates=0.0, deletes=0.0)
WRITE_ONLY = WorkloadMix(reads=0.0, inserts=1.0, updates=0.0, deletes=0.0)


def adoption_curve(slices: int, *, steepness: float = 10.0) -> list[float]:
    """Fraction of accesses on the *new* version per time slice, following
    a logistic Technology-Adoption-Life-Cycle shape from ~0 to ~1."""
    values = []
    for index in range(slices):
        x = index / max(slices - 1, 1)
        values.append(1.0 / (1.0 + math.exp(-steepness * (x - 0.5))))
    return values


def run_mix(
    connection: Connection,
    table: str,
    operations: int,
    mix: WorkloadMix,
    rng: random.Random,
    *,
    make_row,
    update_row,
) -> None:
    """Execute ``operations`` randomized SQL operations against ``table``.

    ``connection`` is a DB-API connection (:func:`repro.connect`);
    ``make_row()`` produces a column->value mapping for inserts;
    ``update_row(row)`` returns the SET mapping for updates. Victims for
    updates/deletes are sampled from a periodically refreshed ``rowid``
    snapshot, like a client application that lists tasks and then
    modifies one of them.
    """
    cursor = connection.cursor()
    keys: list[int] = []

    def refresh_keys() -> None:
        keys.clear()
        keys.extend(row[0] for row in cursor.execute(f"SELECT rowid FROM {table}"))

    def fetch_row(victim: int) -> dict | None:
        cursor.execute(f"SELECT * FROM {table} WHERE rowid = ?", (victim,))
        values = cursor.fetchone()
        if values is None:
            return None
        return {column[0]: value for column, value in zip(cursor.description, values)}

    refresh_keys()
    for _ in range(operations):
        choice = rng.random()
        if choice < mix.reads:
            cursor.execute(f"SELECT * FROM {table}").fetchall()
        elif choice < mix.reads + mix.inserts:
            row = make_row()
            columns = ", ".join(row)
            qmarks = ", ".join("?" for _ in row)
            cursor.execute(
                f"INSERT INTO {table}({columns}) VALUES ({qmarks})", tuple(row.values())
            )
            if cursor.lastrowid is not None:
                keys.append(cursor.lastrowid)
        elif choice < mix.reads + mix.inserts + mix.updates:
            if not keys:
                refresh_keys()
            if keys:
                victim = rng.choice(keys)
                row = fetch_row(victim)
                if row is None:
                    refresh_keys()
                    continue
                updates = update_row(row)
                assignments = ", ".join(f"{name} = ?" for name in updates)
                cursor.execute(
                    f"UPDATE {table} SET {assignments} WHERE rowid = ?",
                    (*updates.values(), victim),
                )
        else:
            if not keys:
                refresh_keys()
            if keys:
                victim = keys.pop(rng.randrange(len(keys)))
                cursor.execute(f"DELETE FROM {table} WHERE rowid = ?", (victim,))
                if cursor.rowcount == 0:
                    refresh_keys()
