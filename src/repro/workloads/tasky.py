"""The TasKy running example (Figure 1) as a reusable scenario.

Three co-existing schema versions over one task data set:

- ``TasKy`` — the initial desktop app: ``Task(author, task, prio)``;
- ``Do!`` — the phone app: ``Todo(author, task)`` holding only the most
  urgent tasks (``prio = 1``);
- ``TasKy2`` — the normalized second release: ``Task(task, prio, author→
  Author)`` and ``Author(id, name)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.engine import InVerDa
from repro.sql.connection import Connection, connect

TASKY_INITIAL_SCRIPT = """
CREATE SCHEMA VERSION TasKy WITH
CREATE TABLE Task(author TEXT, task TEXT, prio INTEGER);
"""

DO_SCRIPT = """
CREATE SCHEMA VERSION Do! FROM TasKy WITH
SPLIT TABLE Task INTO Todo WITH prio = 1;
DROP COLUMN prio FROM Todo DEFAULT 1;
"""

TASKY2_SCRIPT = """
CREATE SCHEMA VERSION TasKy2 FROM TasKy WITH
DECOMPOSE TABLE Task INTO Task(task, prio), Author(author) ON FOREIGN KEY author;
RENAME COLUMN author IN Author TO name;
"""

MIGRATION_SCRIPT = "MATERIALIZE 'TasKy2';\n"

AUTHOR_POOL = [
    "Ann", "Ben", "Cara", "Dan", "Eve", "Finn", "Gina", "Hank",
    "Iris", "Jon", "Kim", "Liam", "Mia", "Noah", "Olive", "Pete",
]

VERBS = ["Organize", "Write", "Clean", "Review", "Plan", "Fix", "Read", "Prepare"]
OBJECTS = ["party", "paper", "room", "code", "trip", "bug", "book", "talk", "report"]


def random_task(rng: random.Random, serial: int) -> dict:
    return {
        "author": rng.choice(AUTHOR_POOL),
        "task": f"{rng.choice(VERBS)} {rng.choice(OBJECTS)} #{serial}",
        "prio": rng.randint(1, 5),
    }


@dataclass
class TaskyScenario:
    engine: InVerDa
    num_tasks: int
    rng: random.Random

    def connect(self, version: str, *, autocommit: bool = True) -> Connection:
        """A DB-API connection to one of the co-existing versions."""
        return connect(self.engine, version, autocommit=autocommit)

    # Legacy Python-method connections (deprecated; prefer ``connect``).

    @property
    def tasky(self):
        return self.engine.connect("TasKy")

    @property
    def do(self):
        return self.engine.connect("Do!")

    @property
    def tasky2(self):
        return self.engine.connect("TasKy2")

    def materialize(self, version: str) -> None:
        self.engine.execute(f"MATERIALIZE '{version}';")

    def next_task(self) -> dict:
        self.num_tasks += 1
        return random_task(self.rng, self.num_tasks)


def build_tasky(
    num_tasks: int = 1000,
    *,
    seed: int = 42,
    with_do: bool = True,
    with_tasky2: bool = True,
) -> TaskyScenario:
    """Build the three-version TasKy database with ``num_tasks`` rows.

    The data is loaded through the SQL layer (one ``executemany`` batch),
    exactly the path a real client application would use.
    """
    engine = InVerDa()
    engine.execute(TASKY_INITIAL_SCRIPT)
    rng = random.Random(seed)
    rows = [random_task(rng, serial) for serial in range(num_tasks)]
    if rows:
        connection = connect(engine, "TasKy", autocommit=True)
        connection.executemany(
            "INSERT INTO Task(author, task, prio) VALUES (?, ?, ?)",
            [(row["author"], row["task"], row["prio"]) for row in rows],
        )
        connection.close()
    if with_do:
        engine.execute(DO_SCRIPT)
    if with_tasky2:
        engine.execute(TASKY2_SCRIPT)
    return TaskyScenario(engine=engine, num_tasks=num_tasks, rng=rng)
