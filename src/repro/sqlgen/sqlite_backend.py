"""Execute generated delta code on a real DBMS query engine (SQLite).

The paper's prototype generates views and triggers inside PostgreSQL so
that "database applications use the DBMS's standard query engine". This
backend reproduces the read half of that claim with the standard library's
SQLite: physical tables and auxiliary tables are loaded 1:1, the generated
``CREATE VIEW`` statements are installed, and reads of any table version go
through SQLite's query engine. The test suite checks that SQLite returns
exactly the rows the pure-Python engine derives.
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass

from repro.catalog.genealogy import TableVersion
from repro.core.engine import InVerDa
from repro.errors import BackendError
from repro.sqlgen.scripts import _object_name, _role_tables
from repro.sqlgen.views import view_sql_for_rules
from repro.util.naming import quote_identifier


@dataclass
class SqliteBackend:
    engine: InVerDa
    connection: sqlite3.Connection

    @classmethod
    def build(cls, engine: InVerDa) -> "SqliteBackend":
        """Snapshot the engine's physical storage into SQLite and install
        generated views for every derived table version."""
        connection = sqlite3.connect(":memory:")
        backend = cls(engine=engine, connection=connection)
        backend._load_physical()
        backend._install_views()
        return backend

    def _load_physical(self) -> None:
        cursor = self.connection.cursor()
        for name, table in self.engine.database.tables.items():
            columns = ["p"] + [quote_identifier(c) for c in table.schema.column_names]
            cursor.execute(f"CREATE TABLE {name} ({', '.join(columns)})")
            placeholders = ", ".join("?" for _ in columns)
            cursor.executemany(
                f"INSERT INTO {name} VALUES ({placeholders})",
                [(key, *row) for key, row in table],
            )
        self.connection.commit()

    def _install_views(self) -> None:
        cursor = self.connection.cursor()
        installed: set[int] = set()

        def install(tv: TableVersion) -> None:
            if tv.uid in installed:
                return
            installed.add(tv.uid)
            if self.engine._is_physical(tv):
                columns = ["p"] + [quote_identifier(c) for c in tv.schema.column_names]
                cursor.execute(
                    f"CREATE VIEW {_object_name(tv)} AS "
                    f"SELECT {', '.join(columns)} FROM {tv.data_table_name}"
                )
                return
            forward = self.engine._forward_smo(tv)
            if forward is not None:
                smo = forward
                rules = smo.semantics.gamma_src_rules()
                role = smo.semantics.source_roles[smo.sources.index(tv)]
                neighbors = smo.targets
            else:
                smo = tv.incoming
                if smo is None or smo.is_initial:
                    raise BackendError(f"no route for {tv!r}")
                rules = smo.semantics.gamma_tgt_rules()
                role = smo.semantics.target_roles[smo.targets.index(tv)]
                neighbors = smo.sources
            for neighbor in neighbors:
                install(neighbor)
            if rules is None:
                self._install_custom_view(cursor, tv)
                return
            names, columns = _role_tables(smo)
            cursor.execute(
                view_sql_for_rules(
                    _object_name(tv),
                    role,
                    rules,
                    table_names=names,
                    table_columns=columns,
                    head_columns=tv.schema.column_names,
                ).rstrip(";")
            )

        for version in self.engine.genealogy.active_versions():
            for tv in version.tables.values():
                install(tv)
        self.connection.commit()

    def _install_custom_view(self, cursor: sqlite3.Cursor, tv: TableVersion) -> None:
        """Custom SQL for the FK-decompose targets (their generic rules use
        identifier generation, but reads only need the stored ID table)."""
        from repro.bidel.smo.foreign_key import DecomposeFkSemantics

        smo = tv.incoming if (tv.incoming and not tv.incoming.is_initial) else None
        forward = self.engine._forward_smo(tv)
        if forward is not None and isinstance(forward.semantics, DecomposeFkSemantics):
            # Reading the wide source R of a materialized FK decompose.
            semantics = forward.semantics
            s_tv, t_tv = forward.targets
            s_name, t_name = _object_name(s_tv), _object_name(t_tv)
            a_cols = list(semantics.node.first_columns)
            b_cols = list(semantics.node.second_columns)
            select_cols = []
            for column in tv.schema.column_names:
                if column in a_cols:
                    select_cols.append(f"s.{quote_identifier(column)}")
                else:
                    select_cols.append(f"t.{quote_identifier(column)}")
            fk = semantics.node.kind.fk_column or "fk"
            cursor.execute(
                f"CREATE VIEW {_object_name(tv)} AS "
                f"SELECT s.p AS p, {', '.join(select_cols)} "
                f"FROM {s_name} s LEFT JOIN {t_name} t ON t.id = s.{fk} "
                f"UNION "
                f"SELECT t.id AS p, {', '.join('NULL' if c in a_cols else 't.' + quote_identifier(c) for c in tv.schema.column_names)} "
                f"FROM {t_name} t WHERE NOT EXISTS "
                f"(SELECT 1 FROM {s_name} s WHERE s.{fk} = t.id)"
            )
            return
        if smo is not None and isinstance(smo.semantics, DecomposeFkSemantics):
            # Reading S or T of a virtualized FK decompose: join R with ID.
            semantics = smo.semantics
            source = smo.sources[0]
            r_name = _object_name(source)
            id_table = smo.aux_table_name("ID")
            if tv is smo.targets[0]:  # S: A columns + fk
                a_cols = ", ".join(
                    f"r.{quote_identifier(c)}" for c in semantics.node.first_columns
                )
                cursor.execute(
                    f"CREATE VIEW {_object_name(tv)} AS "
                    f"SELECT r.p AS p, {a_cols}, i.fk AS "
                    f"{quote_identifier(semantics.node.kind.fk_column or 'fk')} "
                    f"FROM {r_name} r JOIN {id_table} i ON i.p = r.p"
                )
            else:  # T: id + B columns, deduplicated by id
                b_cols = ", ".join(
                    f"r.{quote_identifier(c)}" for c in semantics.node.second_columns
                )
                cursor.execute(
                    f"CREATE VIEW {_object_name(tv)} AS "
                    f"SELECT DISTINCT i.fk AS p, i.fk AS id, {b_cols} "
                    f"FROM {r_name} r JOIN {id_table} i ON i.p = r.p "
                    f"WHERE i.fk IS NOT NULL"
                )
            return
        raise BackendError(f"no SQL template for table version {tv!r}")

    # -- queries ---------------------------------------------------------------

    def select(self, version_name: str, table: str) -> list[tuple]:
        tv = self.engine.genealogy.schema_version(version_name).table_version(table)
        columns = ", ".join(quote_identifier(c) for c in tv.schema.column_names)
        cursor = self.connection.execute(
            f"SELECT {columns} FROM {_object_name(tv)}"
        )
        return cursor.fetchall()

    def select_keyed(self, version_name: str, table: str) -> dict[int, tuple]:
        tv = self.engine.genealogy.schema_version(version_name).table_version(table)
        columns = ", ".join(["p"] + [quote_identifier(c) for c in tv.schema.column_names])
        cursor = self.connection.execute(f"SELECT {columns} FROM {_object_name(tv)}")
        return {row[0]: row[1:] for row in cursor.fetchall()}

    def close(self) -> None:
        self.connection.close()
