"""Deprecated shim: the read-parity SQLite backend of early revisions.

:class:`SqliteBackend` predates the live execution backend; it snapshotted
the engine's storage and installed read-only views.  The real execution
path now lives in :mod:`repro.backend` — generated views *and* INSTEAD OF
trigger programs serving reads and writes on every co-existing version.
This shim keeps the old constructor and query helpers working on top of
:class:`repro.backend.sqlite.LiveSqliteBackend` without attaching to the
engine (the engine's in-memory tables remain the data plane).
"""

from __future__ import annotations

from repro.backend.pool import SessionPool, shared_memory_uri
from repro.backend.sqlite import LiveSqliteBackend
from repro.core.engine import InVerDa


class SqliteBackend(LiveSqliteBackend):
    """A standalone snapshot backend (not registered with the engine).

    .. deprecated:: prefer ``repro.connect(engine, version=...,
       backend="sqlite")``, which attaches a live backend.
    """

    @classmethod
    def build(cls, engine: InVerDa) -> "SqliteBackend":
        pool = SessionPool(shared_memory_uri(), uri=True, wal=False)
        backend = cls(engine, pool)
        backend._load_snapshot()
        backend.regenerate()
        backend._run_repairs()
        return backend

    def _run_repairs(self) -> None:
        from repro.backend import codegen

        self._run(codegen.repair_all_statements(self.engine))
        self.connection.commit()
