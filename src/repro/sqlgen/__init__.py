"""Delta-code generation: Datalog rules → SQL views and triggers (Section 6).

The paper's InVerDa compiles each table version's mapping rules into a view
(reads) and three triggers (writes). This package reproduces that pipeline:

- :mod:`repro.sqlgen.views` — the Figure-7 translation of rule sets into
  ``CREATE VIEW`` statements;
- :mod:`repro.sqlgen.triggers` — trigger bodies from the derived update
  propagation rules (Rules 52–54 style);
- :mod:`repro.sqlgen.scripts` — whole-scenario delta-code scripts (used by
  the Table-3 code-size comparison and the code-generation latency bench);
- :mod:`repro.sqlgen.handwritten` — the hand-optimized comparison baseline;
- :mod:`repro.sqlgen.sqlite_backend` — executes generated view SQL on
  stdlib SQLite, proving the generated delta code runs on a real DBMS
  query engine.
"""

from repro.sqlgen.views import view_sql_for_rules
from repro.sqlgen.scripts import generated_delta_code_for_version, tasky_generated_scripts

__all__ = [
    "view_sql_for_rules",
    "generated_delta_code_for_version",
    "tasky_generated_scripts",
]
