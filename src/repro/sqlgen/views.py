"""Figure 7: translating Datalog rules into view definitions.

A derived table version is defined by several rules; the generated view is
the UNION of one subquery per rule. Within a subquery:

- positive relational literals become FROM entries with join conditions on
  shared variables;
- condition literals become WHERE conjuncts;
- negative literals become ``NOT EXISTS`` subselects;
- function bindings become computed select expressions;
- tuple comparisons expand column-wise.

Every table and view carries the InVerDa tuple identifier as an explicit
leading column ``p``.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.datalog.ast import Assign, Atom, Compare, CondLit, Const, Rule, RuleSet, Term, Var
from repro.errors import BackendError
from repro.util.naming import quote_identifier


@dataclass(frozen=True)
class ViewBranch:
    """One UNION branch of a rule-rendered view, kept structured so the
    backend's view composer (:mod:`repro.backend.compose`) can inline and
    merge branches along the SMO chain instead of nesting views.

    ``head`` pairs each output column (including the leading tuple id
    ``p``) with its SQL expression; ``froms`` lists ``(alias, table
    reference)`` entries (table references may be physical tables, other
    view names, or inline subqueries); ``where`` is a conjunction.
    """

    head: tuple[tuple[str, str], ...]
    froms: tuple[tuple[str, str], ...]
    where: tuple[str, ...]

    def sql(self) -> str:
        select_items = ", ".join(
            f"{expr} AS {quote_identifier(column)}" for column, expr in self.head
        )
        sql = "SELECT " + select_items
        sql += " FROM " + ", ".join(f"{table} {alias}" for alias, table in self.froms)
        if self.where:
            sql += " WHERE " + " AND ".join(self.where)
        return sql


def _sql_literal(value) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return repr(value)


class _Subquery:
    """Assembles one rule's subquery."""

    def __init__(
        self,
        rule: Rule,
        table_names: Mapping[str, str],
        table_columns: Mapping[str, tuple[str, ...]],
        head_columns: tuple[str, ...],
    ):
        self.rule = rule
        self.table_names = table_names
        self.table_columns = table_columns
        self.head_columns = head_columns
        self.aliases: list[tuple[str, str]] = []  # (alias, table)
        self.var_sources: dict[str, str] = {}  # var -> "alias.column"
        self.where: list[str] = []
        self.computed: dict[str, str] = {}  # var -> SQL expression

    def _term_sql(self, term: Term) -> str:
        if isinstance(term, Const):
            return _sql_literal(term.value)
        if term.name in self.var_sources:
            return self.var_sources[term.name]
        if term.name in self.computed:
            return self.computed[term.name]
        raise BackendError(f"unbound variable {term.name!r} in rule {self.rule}")

    def _bind_atom(self, atom: Atom, alias: str) -> list[str]:
        columns = ("p", *self.table_columns[atom.pred])
        constraints: list[str] = []
        for term, column in zip(atom.terms, columns):
            reference = f"{alias}.{quote_identifier(column)}"
            if isinstance(term, Const):
                if term.value is None:
                    constraints.append(f"{reference} IS NULL")
                else:
                    constraints.append(f"{reference} = {_sql_literal(term.value)}")
            elif term.name in self.var_sources:
                constraints.append(f"{reference} = {self.var_sources[term.name]}")
            else:
                self.var_sources[term.name] = reference
        return constraints

    def build(self) -> str:
        return self.branch().sql()

    def branch(self) -> ViewBranch:
        positives = [lit for lit in self.rule.body if isinstance(lit, Atom) and lit.positive]
        negatives = [lit for lit in self.rule.body if isinstance(lit, Atom) and not lit.positive]
        conditions = [lit for lit in self.rule.body if isinstance(lit, CondLit)]
        compares = [lit for lit in self.rule.body if isinstance(lit, Compare)]
        assigns = [lit for lit in self.rule.body if isinstance(lit, Assign)]

        for index, atom in enumerate(positives):
            alias = f"t{index}"
            self.aliases.append((alias, self.table_names[atom.pred]))
            self.where.extend(self._bind_atom(atom, alias))

        for assign in assigns:
            if assign.expression is None:
                raise BackendError(
                    f"function binding {assign} has no SQL form; identifier "
                    "generation is handled by the engine, not by views"
                )
            rendered = assign.expression.to_sql()
            for column in assign.expression.columns():
                source = self.var_sources.get(self._column_var(column))
                if source is None:
                    raise BackendError(f"no source for column {column!r} in {assign}")
                rendered = _replace_column(rendered, column, source)
            self.computed[assign.target.name] = rendered

        for cond in conditions:
            rendered = cond.expression.to_sql()
            for column, term in cond.columns:
                rendered = _replace_column(rendered, column, self._term_sql(term))
            # The engine's is_true() treats NULL as not-satisfied, so the
            # negated literal must hold for NULL conditions: IS NOT TRUE.
            self.where.append(rendered if cond.positive else f"({rendered}) IS NOT TRUE")

        for compare in compares:
            pairs = [
                f"{self._term_sql(left)} IS NOT {self._term_sql(right)}"
                for left, right in zip(compare.left, compare.right)
            ]
            if compare.op == "!=":
                self.where.append("(" + " OR ".join(pairs) + ")")
            else:
                equal_pairs = [
                    f"{self._term_sql(left)} IS {self._term_sql(right)}"
                    for left, right in zip(compare.left, compare.right)
                ]
                self.where.append("(" + " AND ".join(equal_pairs) + ")")

        for negative in negatives:
            alias = "n"
            columns = ("p", *self.table_columns[negative.pred])
            constraints = []
            for term, column in zip(negative.terms, columns):
                reference = f"{alias}.{quote_identifier(column)}"
                if isinstance(term, Const):
                    if term.value is None:
                        constraints.append(f"{reference} IS NULL")
                    else:
                        constraints.append(f"{reference} = {_sql_literal(term.value)}")
                elif term.name in self.var_sources or term.name in self.computed:
                    constraints.append(f"{reference} = {self._term_sql(term)}")
                # otherwise: don't-care position
            body = f"SELECT 1 FROM {self.table_names[negative.pred]} {alias}"
            if constraints:
                body += " WHERE " + " AND ".join(constraints)
            self.where.append(f"NOT EXISTS ({body})")

        head = tuple(
            (column, self._term_sql(term))
            for term, column in zip(self.rule.head.terms, ("p", *self.head_columns))
        )
        return ViewBranch(
            head=head, froms=tuple(self.aliases), where=tuple(self.where)
        )

    def _column_var(self, column: str) -> str:
        # Assign expressions refer to source columns by name; the SMO rule
        # builders name variables x0..xn in column order, so map through
        # the first positive atom's binding.
        for atom in self.rule.body_atoms(positive=True):
            columns = ("p", *self.table_columns[atom.pred])
            for term, col in zip(atom.terms, columns):
                if col == column and isinstance(term, Var):
                    return term.name
        raise BackendError(f"column {column!r} not bound by any positive literal")


def _replace_column(sql: str, column: str, replacement: str) -> str:
    import re

    return re.sub(rf"\b{re.escape(column)}\b", replacement, sql)


def select_sql_for_rules(
    head_pred: str,
    rules: RuleSet,
    *,
    table_names: Mapping[str, str],
    table_columns: Mapping[str, tuple[str, ...]],
    head_columns: tuple[str, ...],
) -> str:
    """A bare ``SELECT`` (UNION of one subquery per rule) deriving
    ``head_pred``; shared by view creation and generated put programs."""
    return "\nUNION\n".join(
        branch.sql()
        for branch in branches_for_rules(
            head_pred,
            rules,
            table_names=table_names,
            table_columns=table_columns,
            head_columns=head_columns,
        )
    )


def branches_for_rules(
    head_pred: str,
    rules: RuleSet,
    *,
    table_names: Mapping[str, str],
    table_columns: Mapping[str, tuple[str, ...]],
    head_columns: tuple[str, ...],
) -> list[ViewBranch]:
    """The structured UNION branches deriving ``head_pred`` (one per rule);
    the backend's view composer flattens these along the SMO chain."""
    branches = []
    for rule in rules.rules_for(head_pred):
        branches.append(
            _Subquery(rule, table_names, table_columns, head_columns).branch()
        )
    if not branches:
        raise BackendError(f"no rules derive {head_pred!r}")
    return branches


def view_sql_for_rules(
    view_name: str,
    head_pred: str,
    rules: RuleSet,
    *,
    table_names: Mapping[str, str],
    table_columns: Mapping[str, tuple[str, ...]],
    head_columns: tuple[str, ...],
) -> str:
    """``CREATE VIEW`` implementing every rule with head ``head_pred``."""
    body = select_sql_for_rules(
        head_pred,
        rules,
        table_names=table_names,
        table_columns=table_columns,
        head_columns=head_columns,
    )
    return f"CREATE VIEW {view_name} AS\n{body};"
