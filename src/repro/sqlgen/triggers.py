"""Trigger generation from update-propagation rules (Section 6).

InVerDa compiles the derived delta rules (Rules 52–54 style) into INSTEAD
OF triggers on each version's views. We render PostgreSQL-flavoured trigger
functions as textual artifacts — they document exactly the propagation the
engine executes natively and feed the Table-3 code-size comparison. (The
SQLite backend serves reads through generated views; writes go through the
engine, whose propagation is cross-checked against the same delta rules in
the test suite.)
"""

from __future__ import annotations

import re

from repro.datalog.ast import Assign, Atom, Compare, CondLit, RuleSet
from repro.datalog.delta import derive_delta_rules


def _render_condition(literal: CondLit, row_var: str) -> str:
    """Qualify the condition's column references with the trigger row
    variable (``NEW``/``OLD``).

    One single-pass, whole-word rewrite.  A sequential ``str.replace``
    would corrupt the SQL twice over: a column name occurring inside a
    longer identifier matches as a substring (``id`` inside ``uid`` →
    ``uNEW.id``), and a later column's replacement can re-match text an
    earlier one produced.  Matching identifier tokens (longest name
    first) outside string literals rules both out.
    """
    rendered = literal.expression.to_sql()
    columns = sorted({column for column, _term in literal.columns},
                     key=len, reverse=True)
    if not columns:
        return rendered if literal.positive else f"NOT ({rendered})"
    pattern = re.compile(
        r"\b(?:" + "|".join(re.escape(c) for c in columns) + r")\b"
    )
    # Split on ' so odd-indexed segments are string-literal bodies; only
    # rewrite outside them.
    segments = rendered.split("'")
    for i in range(0, len(segments), 2):
        segments[i] = pattern.sub(
            lambda m: f"{row_var}.{m.group(0)}", segments[i]
        )
    rendered = "'".join(segments)
    return rendered if literal.positive else f"NOT ({rendered})"


def trigger_sql_for_table_version(
    view_name: str,
    rules: RuleSet,
    changed_pred: str,
    *,
    table_names: dict[str, str],
    table_columns: dict[str, tuple[str, ...]],
) -> str:
    """Generate the insert/update/delete trigger bundle for one view.

    The body enumerates, per derived predicate, the propagation statements
    implied by the delta rules for a change of ``changed_pred``.
    """
    deltas = derive_delta_rules(rules, changed_pred)
    lines: list[str] = [
        f"CREATE FUNCTION {view_name}_write() RETURNS trigger AS $$",
        "BEGIN",
    ]
    for delta in deltas:
        target_table = table_names.get(delta.derived, delta.derived)
        columns = ("p", *table_columns.get(delta.derived, ()))
        column_list = ", ".join(columns)
        for rule in delta.insert_rules:
            guards: list[str] = []
            for literal in rule.body[1:]:
                if isinstance(literal, CondLit):
                    guards.append(_render_condition(literal, "NEW"))
                elif isinstance(literal, Atom) and not literal.positive:
                    name = table_names.get(
                        literal.pred.replace("__old", "").replace("__new", ""),
                        literal.pred,
                    )
                    guards.append(
                        f"NOT EXISTS (SELECT 1 FROM {name} WHERE p = NEW.p)"
                    )
            condition = " AND ".join(guards) if guards else "TRUE"
            lines.append(f"  IF {condition} THEN")
            lines.append(
                f"    INSERT INTO {target_table} ({column_list}) "
                f"SELECT NEW.p, {', '.join('NEW.' + c for c in columns[1:]) or 'NULL'};"
            )
            lines.append("  END IF;")
        if delta.delete_rules:
            lines.append(f"  DELETE FROM {target_table} WHERE p = OLD.p;")
    lines.append("  RETURN NEW;")
    lines.append("END;")
    lines.append("$$ LANGUAGE plpgsql;")
    lines.append("")
    for operation in ("INSERT", "UPDATE", "DELETE"):
        lines.append(
            f"CREATE TRIGGER {view_name}_{operation.lower()} "
            f"INSTEAD OF {operation} ON {view_name} "
            f"FOR EACH ROW EXECUTE FUNCTION {view_name}_write();"
        )
    return "\n".join(lines) + "\n"


def trigger_statement_count(sql: str) -> int:
    """Number of top-level statements in generated trigger SQL."""
    return sql.count("CREATE TRIGGER") + sql.count("CREATE FUNCTION")
