"""Hand-optimized baselines (the paper's "handwritten SQL", Section 8).

Two artifacts live here:

- *Handwritten SQL text* for the TasKy scenario — what a developer would
  write and maintain manually to keep the three versions alive. It feeds
  the Table-3 code-size comparison together with the generated scripts.
- :class:`HandwrittenTasky` — a hand-optimized Python implementation of
  exactly the TasKy propagation paths (no generic routing, no rule
  machinery), the Figure-8 performance baseline. It is intentionally
  specialised: it supports precisely the two materializations the paper's
  handwritten experiment covers (initial and evolved) and nothing else —
  that inflexibility is the paper's point.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.engine import InVerDa
from repro.relational.table import Key, Row

HANDWRITTEN_TASKY_INITIAL_SQL = """\
CREATE TABLE task (
    p serial PRIMARY KEY,
    author varchar(255),
    task varchar(255),
    prio int
);
"""


def handwritten_migration_sql(engine: InVerDa) -> str:
    """The migration script a developer would write to move TasKy's data
    into the TasKy2 physical schema and rewire all delta code: create the
    new tables, move the data, drop the old storage, and recreate the
    views/triggers of the remaining versions against the new tables."""
    from repro.sqlgen.scripts import generated_delta_code_for_version

    ddl = """\
CREATE TABLE task2 (
    p serial PRIMARY KEY,
    task varchar(255),
    prio int,
    author int
);
CREATE TABLE author (
    id serial PRIMARY KEY,
    name varchar(255)
);
INSERT INTO author (name)
SELECT DISTINCT author FROM task;
INSERT INTO task2 (p, task, prio, author)
SELECT t.p, t.task, t.prio, a.id
FROM task t JOIN author a ON a.name = t.author;
DROP TABLE task;
"""
    # After moving the data, every remaining version's delta code must be
    # rewritten against the new physical tables (this is the part InVerDa
    # regenerates automatically).
    tasky_views = generated_delta_code_for_version(engine, "TasKy")
    do_views = generated_delta_code_for_version(engine, "Do!")
    return ddl + "\n" + tasky_views.sql + "\n\n" + do_views.sql


@dataclass
class HandwrittenTasky:
    """Hand-optimized TasKy with co-existing TasKy/Do!/TasKy2 versions.

    Storage under the *initial* materialization: one ``task`` dict.
    Storage under the *evolved* materialization: ``task2`` + ``author``
    dicts. All propagation logic is written out by hand per access path —
    the shape (and fragility) of the paper's 359-line SQL solution.
    """

    materialization: str = "initial"  # 'initial' | 'evolved'
    task: dict[Key, Row] = field(default_factory=dict)  # (author, task, prio)
    task2: dict[Key, Row] = field(default_factory=dict)  # (task, prio, author_fk)
    author: dict[Key, str] = field(default_factory=dict)  # id -> name
    _next_key: int = 0

    def allocate(self) -> Key:
        self._next_key += 1
        return self._next_key

    # -- loading ----------------------------------------------------------

    def load(self, rows: list[tuple[str, str, int]]) -> None:
        for author, task, prio in rows:
            self.insert_tasky(author, task, prio)

    # -- reads -------------------------------------------------------------

    def read_tasky(self) -> list[tuple[str, str, int]]:
        if self.materialization == "initial":
            return [(a, t, p) for a, t, p in self.task.values()]
        names = self.author
        return [
            (names.get(fk, ""), task, prio) for task, prio, fk in self.task2.values()
        ]

    def read_do(self) -> list[tuple[str, str]]:
        if self.materialization == "initial":
            return [(a, t) for a, t, p in self.task.values() if p == 1]
        names = self.author
        return [
            (names.get(fk, ""), task)
            for task, prio, fk in self.task2.values()
            if prio == 1
        ]

    def read_tasky2(self) -> tuple[list[tuple[str, int, int]], list[tuple[int, str]]]:
        if self.materialization == "evolved":
            tasks = [(t, p, fk) for t, p, fk in self.task2.values()]
            authors = sorted(self.author.items())
            return tasks, authors
        # Derive the normalized form: dedup authors by name.
        by_name: dict[str, int] = {}
        tasks: list[tuple[str, int, int]] = []
        for a, t, p in self.task.values():
            fk = by_name.get(a)
            if fk is None:
                fk = len(by_name) + 1
                by_name[a] = fk
            tasks.append((t, p, fk))
        authors = sorted((fk, name) for name, fk in by_name.items())
        return tasks, authors

    # -- writes -------------------------------------------------------------

    def _author_fk(self, name: str) -> Key:
        for fk, existing in self.author.items():
            if existing == name:
                return fk
        fk = self.allocate()
        self.author[fk] = name
        return fk

    def insert_tasky(self, author: str, task: str, prio: int) -> Key:
        key = self.allocate()
        if self.materialization == "initial":
            self.task[key] = (author, task, prio)
        else:
            self.task2[key] = (task, prio, self._author_fk(author))
        return key

    def insert_do(self, author: str, task: str) -> Key:
        return self.insert_tasky(author, task, 1)

    def insert_tasky2(self, task: str, prio: int, author_fk: int) -> Key:
        key = self.allocate()
        if self.materialization == "evolved":
            self.task2[key] = (task, prio, author_fk)
        else:
            name = self.author.get(author_fk, "")
            self.task[key] = (name, task, prio)
        return key

    def delete_tasky(self, key: Key) -> None:
        if self.materialization == "initial":
            self.task.pop(key, None)
        else:
            self.task2.pop(key, None)

    # -- migration -----------------------------------------------------------

    def migrate_to_evolved(self) -> None:
        if self.materialization == "evolved":
            return
        for key, (author, task, prio) in list(self.task.items()):
            self.task2[key] = (task, prio, self._author_fk(author))
        self.task.clear()
        self.materialization = "evolved"

    def migrate_to_initial(self) -> None:
        if self.materialization == "initial":
            return
        for key, (task, prio, fk) in list(self.task2.items()):
            self.task[key] = (self.author.get(fk, ""), task, prio)
        self.task2.clear()
        self.author.clear()
        self.materialization = "initial"


def handwritten_tasky(num_tasks: int, *, materialization: str, seed: int = 42) -> HandwrittenTasky:
    """A loaded handwritten baseline mirroring ``build_tasky``."""
    from repro.workloads.tasky import random_task

    rng = random.Random(seed)
    baseline = HandwrittenTasky()
    baseline.load(
        [
            (row["author"], row["task"], row["prio"])
            for row in (random_task(rng, serial) for serial in range(num_tasks))
        ]
    )
    if materialization == "evolved":
        baseline.migrate_to_evolved()
    return baseline
