"""Whole-scenario delta-code scripts (the Table-3 comparison inputs).

``generated_delta_code_for_version`` emits, for every derived table version
of a schema version, the view implementing its reads and the trigger bundle
implementing its writes — the SQL a developer would otherwise write and
maintain by hand. ``tasky_generated_scripts`` packages the three TasKy
artifacts (initial schema, evolution, migration) the paper sizes in
Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.genealogy import SmoInstance, TableVersion
from repro.core.engine import InVerDa
from repro.errors import BackendError
from repro.sqlgen.triggers import trigger_sql_for_table_version
from repro.sqlgen.views import view_sql_for_rules


def _role_tables(smo: SmoInstance) -> tuple[dict[str, str], dict[str, tuple[str, ...]]]:
    """Role → SQL object name and role → payload columns for one SMO."""
    semantics = smo.semantics
    assert semantics is not None
    names: dict[str, str] = {}
    columns: dict[str, tuple[str, ...]] = {}
    for role, tv in zip(semantics.source_roles, smo.sources):
        names[role] = _object_name(tv)
        columns[role] = tv.schema.column_names
    for role, tv in zip(semantics.target_roles, smo.targets):
        names[role] = _object_name(tv)
        columns[role] = tv.schema.column_names
    for aux_group in (semantics.aux_src(), semantics.aux_tgt(), semantics.aux_shared()):
        for role, schema in aux_group.items():
            names[role] = smo.aux_table_name(role)
            columns[role] = schema.column_names
    return names, columns


def _object_name(tv: TableVersion) -> str:
    return tv.view_name


@dataclass
class GeneratedDeltaCode:
    views: list[str]
    triggers: list[str]

    @property
    def sql(self) -> str:
        return "\n\n".join(self.views + self.triggers)


def generated_delta_code_for_version(engine: InVerDa, version_name: str) -> GeneratedDeltaCode:
    """Views + trigger bundles for every derived table version reachable
    from ``version_name`` down to the physical tables (step-local, exactly
    like InVerDa's O(N+M) generation)."""
    version = engine.genealogy.schema_version(version_name)
    views: list[str] = []
    triggers: list[str] = []
    visited: set[int] = set()

    def emit_for(tv: TableVersion) -> None:
        if tv.uid in visited:
            return
        visited.add(tv.uid)
        if engine._is_physical(tv):
            return
        forward = engine._forward_smo(tv)
        if forward is not None:
            smo = forward
            rules = smo.semantics.gamma_src_rules()
            role = smo.semantics.source_roles[smo.sources.index(tv)]
            neighbors = smo.targets
        else:
            smo = tv.incoming
            if smo is None or smo.is_initial:
                return
            rules = smo.semantics.gamma_tgt_rules()
            role = smo.semantics.target_roles[smo.targets.index(tv)]
            neighbors = smo.sources
        if rules is None:
            views.append(
                f"-- {_object_name(tv)}: engine-native mapping "
                f"({smo.smo_type}); no rule-generated view"
            )
        else:
            names, columns = _role_tables(smo)
            try:
                views.append(
                    view_sql_for_rules(
                        _object_name(tv),
                        role,
                        rules,
                        table_names=names,
                        table_columns=columns,
                        head_columns=tv.schema.column_names,
                    )
                )
                triggers.append(
                    trigger_sql_for_table_version(
                        _object_name(tv),
                        rules,
                        role,
                        table_names=names,
                        table_columns=columns,
                    )
                )
            except BackendError as exc:
                views.append(f"-- {_object_name(tv)}: {exc}")
        for neighbor in neighbors:
            emit_for(neighbor)

    for tv in version.tables.values():
        emit_for(tv)
    return GeneratedDeltaCode(views=views, triggers=triggers)


@dataclass
class TaskyScripts:
    """The three artifacts Table 3 measures, in both languages."""

    bidel_initial: str
    bidel_evolution: str
    bidel_migration: str
    sql_initial: str
    sql_evolution: str
    sql_migration: str


def tasky_generated_scripts() -> TaskyScripts:
    from repro.sqlgen.handwritten import (
        HANDWRITTEN_TASKY_INITIAL_SQL,
        handwritten_migration_sql,
    )
    from repro.workloads.tasky import (
        DO_SCRIPT,
        MIGRATION_SCRIPT,
        TASKY2_SCRIPT,
        TASKY_INITIAL_SCRIPT,
    )

    engine = InVerDa()
    engine.execute(TASKY_INITIAL_SCRIPT)
    engine.execute(DO_SCRIPT)
    engine.execute(TASKY2_SCRIPT)

    do_code = generated_delta_code_for_version(engine, "Do!")
    tasky2_code = generated_delta_code_for_version(engine, "TasKy2")
    evolution_sql = do_code.sql + "\n\n" + tasky2_code.sql

    migration_sql = handwritten_migration_sql(engine)

    return TaskyScripts(
        bidel_initial=TASKY_INITIAL_SCRIPT.strip() + "\n",
        bidel_evolution=(DO_SCRIPT.strip() + "\n" + TASKY2_SCRIPT.strip() + "\n"),
        bidel_migration=MIGRATION_SCRIPT,
        sql_initial=HANDWRITTEN_TASKY_INITIAL_SQL,
        sql_evolution=evolution_sql,
        sql_migration=migration_sql,
    )
