"""A workload-driven materialization advisor.

Section 8.2 of the paper: "A DBA can optimize the overall performance for a
given workload by adapting the materialization ... An advisor tool
supporting the optimization task is very well imaginable, but out of scope
for this paper." This module implements that imaginable tool as a small
extension: given observed (or predicted) access counts per schema version,
it scores every valid materialization schema with a propagation-distance
cost model and recommends the cheapest one.

The cost model charges each access the number of SMO hops between the
accessed version's table versions and their physical homes — exactly the
quantity Figures 11–13 show to dominate performance ("the more SMOs are
between schema versions, the more delta code is involved and the higher is
the overhead").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.genealogy import Genealogy, SmoInstance, TableVersion
from repro.catalog.materialization import (
    MaterializationSchema,
    enumerate_valid_materializations,
    physical_table_versions,
)

# Writes fan out to every stored artifact, so they are costlier per hop.
READ_HOP_COST = 1.0
WRITE_HOP_COST = 1.5


@dataclass(frozen=True)
class WorkloadProfile:
    """Observed access counts per schema version."""

    reads: dict[str, float] = field(default_factory=dict)
    writes: dict[str, float] = field(default_factory=dict)

    def versions(self) -> set[str]:
        return set(self.reads) | set(self.writes)


class WorkloadRecorder:
    """Live per-version access counters fed by the DB-API cursors.

    Every SELECT executed through a connection counts as one read on that
    connection's schema version, every INSERT/UPDATE/DELETE as one write
    (``executemany`` counts each parameter row).  The recorder turns live
    traffic into the :class:`WorkloadProfile` the materialization advisor
    consumes, so the advisor runs off observed workloads instead of
    hand-built profiles.

    The recorder is a *view* over the engine's metrics registry: every
    statement lands in the ``repro_statements_total{version, kind}``
    counter family, and :attr:`reads`/:attr:`writes` aggregate that
    family per version (``select`` counts as a read; ``insert``,
    ``update``, ``delete``, and the legacy ``write`` kind as writes;
    ``ddl``/``explain`` are counted but excluded from the profile).
    The advisor therefore reads the same numbers a scrape does.
    """

    READ_KINDS = frozenset({"select"})
    EXCLUDED_KINDS = frozenset({"ddl", "explain", "check"})

    def __init__(self, metrics=None):
        if metrics is None:
            from repro.obs.metrics import MetricsRegistry

            metrics = MetricsRegistry()
        self._counter = metrics.counter(
            "repro_statements_total",
            "Statements executed, by schema version and statement kind.",
            ("version", "kind"),
        )

    def record(self, version_name: str, kind: str, count: int = 1) -> None:
        self._counter.inc(count, version=version_name, kind=kind)

    def record_read(self, version_name: str, count: int = 1) -> None:
        self.record(version_name, "select", count)

    def record_write(self, version_name: str, count: int = 1) -> None:
        self.record(version_name, "write", count)

    def _aggregate(self, want_reads: bool) -> dict[str, int]:
        totals: dict[str, int] = {}
        for (version, kind), value in self._counter.values().items():
            if kind in self.EXCLUDED_KINDS:
                continue
            if (kind in self.READ_KINDS) == want_reads:
                totals[version] = totals.get(version, 0) + value
        return totals

    @property
    def reads(self) -> dict[str, int]:
        return self._aggregate(True)

    @property
    def writes(self) -> dict[str, int]:
        return self._aggregate(False)

    def reset(self) -> None:
        self._counter.reset()

    @property
    def empty(self) -> bool:
        return not self.reads and not self.writes

    def profile(self) -> WorkloadProfile:
        return WorkloadProfile(
            reads={k: float(v) for k, v in self.reads.items()},
            writes={k: float(v) for k, v in self.writes.items()},
        )


def recommend_from_live(engine) -> Recommendation:
    """Recommend a materialization from the engine's recorded live traffic."""
    return recommend_materialization(engine.genealogy, engine.workload.profile())


@dataclass(frozen=True)
class Recommendation:
    schema: MaterializationSchema
    cost: float
    physical_tables: tuple[str, ...]
    ranking: tuple[tuple[float, str], ...]  # (cost, physical tables) per schema

    def describe(self) -> str:
        smos = sorted(smo.smo_type for smo in self.schema)
        return f"materialize {{{', '.join(smos)}}} -> {list(self.physical_tables)}"


def _hop_distance(
    tv: TableVersion, materialized: MaterializationSchema
) -> int:
    """SMO hops from ``tv`` to its physical home under ``materialized``."""
    distance = 0
    current = tv
    seen: set[int] = set()
    while True:
        if current.uid in seen:  # pragma: no cover - DAG guarantees no loop
            return distance
        seen.add(current.uid)
        incoming_stored = current.incoming is not None and (
            current.incoming.is_initial or current.incoming in materialized
        )
        outgoing_stored = [
            smo for smo in current.outgoing if not smo.is_initial and smo in materialized
        ]
        if incoming_stored and not outgoing_stored:
            return distance  # physical here
        distance += 1
        if outgoing_stored:
            current = outgoing_stored[0].targets[0] if outgoing_stored[0].targets else current
            if not outgoing_stored[0].targets:
                return distance
        elif current.incoming is not None and not current.incoming.is_initial:
            if not current.incoming.sources:
                return distance
            current = current.incoming.sources[0]
        else:  # pragma: no cover - dangling table version
            return distance


def score_schema(
    genealogy: Genealogy,
    schema: MaterializationSchema,
    profile: WorkloadProfile,
) -> float:
    """Total propagation cost of ``profile`` under ``schema``."""
    total = 0.0
    for version_name in profile.versions():
        version = genealogy.schema_version(version_name)
        reads = profile.reads.get(version_name, 0.0)
        writes = profile.writes.get(version_name, 0.0)
        for tv in version.tables.values():
            hops = _hop_distance(tv, schema)
            total += hops * (reads * READ_HOP_COST + writes * WRITE_HOP_COST)
    return total


def recommend_materialization(
    genealogy: Genealogy, profile: WorkloadProfile
) -> Recommendation:
    """The cheapest valid materialization schema for ``profile``."""
    scored: list[tuple[float, MaterializationSchema]] = []
    for schema in enumerate_valid_materializations(genealogy):
        scored.append((score_schema(genealogy, schema, profile), schema))
    scored.sort(key=lambda pair: (pair[0], len(pair[1])))
    best_cost, best_schema = scored[0]
    ranking = tuple(
        (
            cost,
            ", ".join(
                tv.name for tv in physical_table_versions(genealogy, schema)
            ),
        )
        for cost, schema in scored
    )
    physical = tuple(
        tv.name for tv in physical_table_versions(genealogy, best_schema)
    )
    return Recommendation(
        schema=best_schema, cost=best_cost, physical_tables=physical, ranking=ranking
    )
