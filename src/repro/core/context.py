"""Map contexts binding SMO semantics to the engine's storage and routing.

A context answers ``read(role)`` for one SMO instance:

- data roles resolve to the *visible extent* of the corresponding table
  version, computed recursively through the delta-code routing (with a
  per-operation cache);
- auxiliary roles resolve to their physical tables when stored, and to the
  empty extent otherwise — exactly the paper's Lemma-2 situation;
- roles on the *output side* of the running map are read non-recursively
  (stored extent or empty) because they represent the "old" state that
  identifier-reusing SMOs consult (the ``T_o`` of Appendix B.3).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.bidel.smo.base import KeyedRows, MapContext
from repro.relational.table import Key

if TYPE_CHECKING:  # pragma: no cover
    from repro.catalog.genealogy import SmoInstance
    from repro.core.engine import InVerDa

ReadCache = dict[int, KeyedRows]


class EngineMapContext(MapContext):
    def __init__(
        self,
        engine: "InVerDa",
        smo: "SmoInstance",
        *,
        output_side: str,  # 'source' | 'target' — the side the map produces
        cache: ReadCache | None = None,
        overrides: dict[str, KeyedRows] | None = None,
    ):
        self._engine = engine
        self._smo = smo
        self._output_side = output_side
        self._cache = cache if cache is not None else {}
        self._overrides = overrides or {}
        semantics = smo.semantics
        assert semantics is not None
        self._source_by_role = dict(zip(semantics.source_roles, smo.sources))
        self._target_by_role = dict(zip(semantics.target_roles, smo.targets))
        self._aux_roles = (
            set(semantics.aux_src()) | set(semantics.aux_tgt()) | set(semantics.aux_shared())
        )

    def read(self, role: str) -> KeyedRows:
        if role in self._overrides:
            return self._overrides[role]
        if role in self._aux_roles:
            return self._engine.read_aux(self._smo, role)
        tv = self._source_by_role.get(role) or self._target_by_role.get(role)
        if tv is None:
            return {}
        if self._output_side_read_must_avoid_recursion(role):
            # "Old" state of the side being produced: stored extent or empty
            # (reading it through the routing would re-enter this SMO's map).
            return self._engine.read_stored(tv)
        return self._engine.read_table_version(tv, cache=self._cache)

    def _output_side_read_must_avoid_recursion(self, role: str) -> bool:
        """Reading an output-side table version loops back through the map
        being evaluated exactly when the data for that side is routed
        through this SMO: the target side of a *virtualized* SMO and the
        source side of a *materialized* one."""
        if self._output_side == "target" and role in self._target_by_role:
            return not self._smo.materialized
        if self._output_side == "source" and role in self._source_by_role:
            return self._smo.materialized
        return False

    def read_keys(self, role: str, keys: set[Key]) -> KeyedRows:
        if role in self._overrides:
            extent = self._overrides[role]
            return {k: extent[k] for k in keys if k in extent}
        if role in self._aux_roles:
            extent = self._engine.read_aux(self._smo, role)
            return {k: extent[k] for k in keys if k in extent}
        tv = self._source_by_role.get(role) or self._target_by_role.get(role)
        if tv is None:
            return {}
        if self._output_side_read_must_avoid_recursion(role):
            extent = self._engine.read_stored(tv)
            return {k: extent[k] for k in keys if k in extent}
        return self._engine.read_table_version_keys(tv, keys, cache=self._cache)

    def allocate_id(self, sequence_role: str) -> Key:
        return self._engine.allocate_key()
