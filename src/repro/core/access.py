"""Legacy version connections: a Python-method CRUD view of one version.

.. deprecated::
   This bespoke surface predates the SQL-facing DB-API layer. New code
   should use :func:`repro.connect`, which returns a PEP-249 connection
   with cursors, ``?`` parameter binding, and transactions. The class is
   kept as a thin shim over :mod:`repro.sql.planner` — the same routing
   primitives the SQL layer lowers to — so existing callers keep working
   and both surfaces stay behaviourally identical.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any

from repro.bidel.smo.base import TableChange
from repro.catalog.genealogy import TableVersion
from repro.catalog.versions import SchemaVersion
from repro.errors import AccessError
from repro.expr.ast import Expression, is_true
from repro.expr.parser import parse_expression
from repro.sql import planner

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import InVerDa

Predicate = Expression | str | Callable[[dict[str, Any]], bool] | None
_KEYED_COLUMN = "id"


def _compile_predicate(where: Predicate) -> Callable[[dict[str, Any]], bool]:
    if where is None:
        return lambda row: True
    if isinstance(where, str):
        where = parse_expression(where)
    if isinstance(where, Expression):
        expression = where
        return lambda row: is_true(expression.evaluate(row))
    return where


class VersionConnection:
    """Deprecated Python-method shim; see :func:`repro.connect`."""

    def __init__(self, engine: "InVerDa", version: SchemaVersion):
        self._engine = engine
        self._version = version

    @property
    def version_name(self) -> str:
        return self._version.name

    def table_names(self) -> list[str]:
        return self._version.table_names()

    def columns(self, table: str) -> tuple[str, ...]:
        return self._table_version(table).schema.column_names

    def _table_version(self, table: str) -> TableVersion:
        return self._version.table_version(table)

    def _has_key_column(self, tv: TableVersion) -> bool:
        return tv.key_column is not None

    # -- reads ---------------------------------------------------------------

    def select(
        self,
        table: str,
        where: Predicate = None,
        *,
        columns: list[str] | None = None,
        order_by: str | None = None,
    ) -> list[dict[str, Any]]:
        """Rows of ``table`` as dictionaries, optionally filtered/projected."""
        tv = self._table_version(table)
        predicate = _compile_predicate(where)
        rows = [
            mapping
            for _key, mapping in planner.visible_rows(self._engine, tv)
            if predicate(mapping)
        ]
        if order_by is not None:
            rows.sort(key=lambda mapping: (mapping[order_by] is None, mapping[order_by]))
        if columns is not None:
            rows = [{name: mapping[name] for name in columns} for mapping in rows]
        return rows

    def select_keyed(self, table: str, where: Predicate = None) -> dict[int, dict[str, Any]]:
        """Rows keyed by the internal tuple identifier ``p`` (mostly for
        tests and the benchmark harness)."""
        tv = self._table_version(table)
        predicate = _compile_predicate(where)
        return {
            key: mapping
            for key, mapping in planner.visible_rows(self._engine, tv)
            if predicate(mapping)
        }

    def count(self, table: str, where: Predicate = None) -> int:
        return len(self.select(table, where))

    # -- writes ----------------------------------------------------------------

    def insert(self, table: str, values: Mapping[str, Any]) -> int:
        """Insert one row; returns the internal tuple identifier."""
        tv = self._table_version(table)
        return planner.insert_rows(self._engine, tv, [values])[0]

    def insert_many(self, table: str, rows: list[Mapping[str, Any]]) -> list[int]:
        """Bulk insert; one propagation pass for the whole batch."""
        tv = self._table_version(table)
        return planner.insert_rows(self._engine, tv, rows)

    def update(
        self, table: str, set_values: Mapping[str, Any], where: Predicate = None
    ) -> int:
        """Update matching rows; returns the number of rows changed."""
        tv = self._table_version(table)
        if tv.key_column is not None and tv.key_column in set_values:
            raise AccessError(
                f"column {tv.key_column!r} of {table!r} is the generated "
                "identifier and cannot be updated"
            )
        return planner.update_rows(
            self._engine, tv, _compile_predicate(where), lambda mapping: set_values
        )

    def delete(self, table: str, where: Predicate = None) -> int:
        """Delete matching rows; returns the number of rows removed."""
        tv = self._table_version(table)
        return planner.delete_rows(self._engine, tv, _compile_predicate(where))

    def update_by_key(self, table: str, key: int, set_values: Mapping[str, Any]) -> None:
        tv = self._table_version(table)
        extent = self._engine.read_table_version(tv, cache={})
        if key not in extent:
            raise AccessError(f"table {table!r} has no row with id {key}")
        mapping = tv.schema.row_to_mapping(extent[key])
        mapping.update(set_values)
        self._engine.apply_change(
            tv, TableChange(upserts={key: tv.schema.row_from_mapping(mapping)})
        )

    def delete_by_key(self, table: str, key: int) -> None:
        tv = self._table_version(table)
        self._engine.apply_change(tv, TableChange(deletes={key}))

    # -- transactions --------------------------------------------------------

    @contextmanager
    def transaction(self):
        """Group several writes into one atomic unit (rolled back on error)."""
        engine = self._engine
        if engine._undo_log is not None:
            yield self  # nested: join the outer transaction
            return
        engine._undo_log = []
        try:
            yield self
        except Exception:
            engine._rollback()
            raise
        finally:
            engine._undo_log = None
