"""Version connections: the application's view of one schema version.

"Each schema version itself appears to the user like a full-fledged
single-schema database" — a :class:`VersionConnection` provides
select/insert/update/delete against the tables of its version; the engine
routes every access through the generated mapping logic so writes are
reflected in all co-existing versions.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any

from repro.bidel.smo.base import TableChange
from repro.catalog.genealogy import TableVersion
from repro.catalog.versions import SchemaVersion
from repro.errors import AccessError
from repro.expr.ast import Expression, is_true
from repro.expr.parser import parse_expression

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import InVerDa

Predicate = Expression | str | Callable[[dict[str, Any]], bool] | None
_KEYED_COLUMN = "id"


def _compile_predicate(where: Predicate) -> Callable[[dict[str, Any]], bool]:
    if where is None:
        return lambda row: True
    if isinstance(where, str):
        where = parse_expression(where)
    if isinstance(where, Expression):
        expression = where
        return lambda row: is_true(expression.evaluate(row))
    return where


class VersionConnection:
    def __init__(self, engine: "InVerDa", version: SchemaVersion):
        self._engine = engine
        self._version = version

    @property
    def version_name(self) -> str:
        return self._version.name

    def table_names(self) -> list[str]:
        return self._version.table_names()

    def columns(self, table: str) -> tuple[str, ...]:
        return self._table_version(table).schema.column_names

    def _table_version(self, table: str) -> TableVersion:
        return self._version.table_version(table)

    def _has_key_column(self, tv: TableVersion) -> bool:
        return tv.key_column is not None

    # -- reads ---------------------------------------------------------------

    def select(
        self,
        table: str,
        where: Predicate = None,
        *,
        columns: list[str] | None = None,
        order_by: str | None = None,
    ) -> list[dict[str, Any]]:
        """Rows of ``table`` as dictionaries, optionally filtered/projected."""
        tv = self._table_version(table)
        schema = tv.schema
        predicate = _compile_predicate(where)
        rows = []
        for _key, row in self._engine.read_table_version(tv, cache={}).items():
            mapping = schema.row_to_mapping(row)
            if predicate(mapping):
                rows.append(mapping)
        if order_by is not None:
            rows.sort(key=lambda mapping: (mapping[order_by] is None, mapping[order_by]))
        if columns is not None:
            rows = [{name: mapping[name] for name in columns} for mapping in rows]
        return rows

    def select_keyed(self, table: str, where: Predicate = None) -> dict[int, dict[str, Any]]:
        """Rows keyed by the internal tuple identifier ``p`` (mostly for
        tests and the benchmark harness)."""
        tv = self._table_version(table)
        schema = tv.schema
        predicate = _compile_predicate(where)
        out: dict[int, dict[str, Any]] = {}
        for key, row in self._engine.read_table_version(tv, cache={}).items():
            mapping = schema.row_to_mapping(row)
            if predicate(mapping):
                out[key] = mapping
        return out

    def count(self, table: str, where: Predicate = None) -> int:
        return len(self.select(table, where))

    # -- writes ----------------------------------------------------------------

    def insert(self, table: str, values: Mapping[str, Any]) -> int:
        """Insert one row; returns the internal tuple identifier."""
        tv = self._table_version(table)
        key = None
        if tv.key_column is not None:
            provided = values.get(tv.key_column)
            key = int(provided) if provided is not None else self._engine.allocate_key()
            values = dict(values)
            values[tv.key_column] = key
        if key is None:
            key = self._engine.allocate_key()
        row = tv.schema.row_from_mapping(values)
        change = TableChange(upserts={key: row})
        self._engine.apply_change(tv, change)
        return key

    def insert_many(self, table: str, rows: list[Mapping[str, Any]]) -> list[int]:
        """Bulk insert; one propagation pass for the whole batch."""
        tv = self._table_version(table)
        change = TableChange()
        keys: list[int] = []
        for values in rows:
            if tv.key_column is not None:
                provided = values.get(tv.key_column)
                key = int(provided) if provided is not None else self._engine.allocate_key()
                values = dict(values)
                values[tv.key_column] = key
            else:
                key = self._engine.allocate_key()
            change.upserts[key] = tv.schema.row_from_mapping(values)
            keys.append(key)
        self._engine.apply_change(tv, change)
        return keys

    def update(
        self, table: str, set_values: Mapping[str, Any], where: Predicate = None
    ) -> int:
        """Update matching rows; returns the number of rows changed."""
        tv = self._table_version(table)
        schema = tv.schema
        if tv.key_column is not None and tv.key_column in set_values:
            raise AccessError(
                f"column {tv.key_column!r} of {table!r} is the generated "
                "identifier and cannot be updated"
            )
        predicate = _compile_predicate(where)
        change = TableChange()
        for key, row in self._engine.read_table_version(tv, cache={}).items():
            mapping = schema.row_to_mapping(row)
            if not predicate(mapping):
                continue
            mapping.update(set_values)
            change.upserts[key] = schema.row_from_mapping(mapping)
        if change.empty:
            return 0
        self._engine.apply_change(tv, change)
        return len(change.upserts)

    def delete(self, table: str, where: Predicate = None) -> int:
        """Delete matching rows; returns the number of rows removed."""
        tv = self._table_version(table)
        schema = tv.schema
        predicate = _compile_predicate(where)
        change = TableChange()
        for key, row in self._engine.read_table_version(tv, cache={}).items():
            if predicate(schema.row_to_mapping(row)):
                change.deletes.add(key)
        if change.empty:
            return 0
        self._engine.apply_change(tv, change)
        return len(change.deletes)

    def update_by_key(self, table: str, key: int, set_values: Mapping[str, Any]) -> None:
        tv = self._table_version(table)
        extent = self._engine.read_table_version(tv, cache={})
        if key not in extent:
            raise AccessError(f"table {table!r} has no row with id {key}")
        mapping = tv.schema.row_to_mapping(extent[key])
        mapping.update(set_values)
        self._engine.apply_change(
            tv, TableChange(upserts={key: tv.schema.row_from_mapping(mapping)})
        )

    def delete_by_key(self, table: str, key: int) -> None:
        tv = self._table_version(table)
        self._engine.apply_change(tv, TableChange(deletes={key}))

    # -- transactions --------------------------------------------------------

    @contextmanager
    def transaction(self):
        """Group several writes into one atomic unit (rolled back on error)."""
        engine = self._engine
        if engine._undo_log is not None:
            yield self  # nested: join the outer transaction
            return
        engine._undo_log = []
        try:
            yield self
        except Exception:
            engine._rollback()
            raise
        finally:
            engine._undo_log = None
