"""The InVerDa engine: co-existing schema versions over one data set.

This is the paper's Figure-3 architecture in library form. The engine owns

- the physical storage (:class:`~repro.relational.database.Database`),
- the schema version catalog (:class:`~repro.catalog.genealogy.Genealogy`),

and implements the two user-facing operations:

- the **Database Evolution Operation** — executing a BiDEL
  ``CREATE SCHEMA VERSION`` makes the new version immediately readable and
  writable (Section 6's delta code corresponds to the routing implemented
  by :meth:`InVerDa.read_table_version` / :meth:`InVerDa.apply_change`);
- the **Database Migration Operation** — ``MATERIALIZE`` moves the physical
  data representation along the genealogy without affecting any version's
  visible contents (Section 7).

Reads follow the three cases of Section 6: *local* (the table version is
physical), *forwards* (an outgoing SMO is materialized; read through its
``γ_src``), and *backwards* (the incoming SMO is virtualized; read through
its ``γ_tgt``). Writes propagate the other way, key-locally where the SMO
provides an incremental fast path and by a full lens put otherwise.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Iterable
from contextlib import AbstractContextManager as ContextManager
from contextlib import contextmanager

from repro.bidel.ast import (
    CreateSchemaVersion,
    CreateTable,
    DropSchemaVersion,
    Materialize,
    SmoNode,
    Statement,
)
from repro.bidel.parser import parse_script
from repro.bidel.smo.base import KeyedRows, SideState, TableChange
from repro.bidel.smo.registry import build_semantics, source_table_names
from repro.catalog.genealogy import Genealogy, SmoInstance, TableVersion
from repro.catalog.materialization import (
    current_materialization,
    materialization_for_versions,
    physical_table_versions,
    validate_materialization,
)
from repro.catalog.versions import SchemaVersion
from repro.core.context import EngineMapContext, ReadCache
from repro.errors import AccessError, CatalogError, EvolutionError, TransactionError
from repro.relational.database import Database
from repro.relational.schema import TableSchema
from repro.relational.table import Key, Table

_ID_COLUMN = "id"


class RWLock:
    """A writer-preferring read/write lock guarding the catalog.

    The data plane (SQL statements of concurrent sessions) takes the read
    side, so any number of sessions read and write *data* in parallel;
    catalog transitions (evolution, ``MATERIALIZE``, drop) take the write
    side, which drains in-flight statements, blocks new ones, and gives
    the transition exclusive access to regenerate delta code once and
    republish it to every session.

    The write side is reentrant (``materialize`` calls
    ``apply_materialization``); a thread holding the write lock may also
    enter the read side.  Waiting writers block *new* readers so a steady
    stream of statements cannot starve DDL.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer: int | None = None
        self._writer_depth = 0
        self._writers_waiting = 0
        # Optional observer(seconds) told how long each writer waited for
        # exclusivity (the engine binds repro_rwlock_write_wait_seconds).
        self.write_wait_observer = None

    @contextmanager
    def read_locked(self):
        me = threading.get_ident()
        with self._cond:
            reentrant = self._writer == me
            if not reentrant:
                while self._writer is not None or self._writers_waiting:
                    self._cond.wait()
                self._readers += 1
        try:
            # A thread already holding the write lock reads freely: the
            # catalog transition itself is the only activity.
            yield
        finally:
            if not reentrant:
                with self._cond:
                    self._readers -= 1
                    if self._readers == 0:
                        self._cond.notify_all()

    @contextmanager
    def write_locked(self):
        me = threading.get_ident()
        waited = None
        with self._cond:
            if self._writer == me:
                self._writer_depth += 1
            else:
                self._writers_waiting += 1
                wait_start = time.perf_counter()
                while self._writer is not None or self._readers:
                    self._cond.wait()
                waited = time.perf_counter() - wait_start
                self._writers_waiting -= 1
                self._writer = me
                self._writer_depth = 1
        if waited is not None and self.write_wait_observer is not None:
            self.write_wait_observer(waited)
        try:
            yield
        finally:
            with self._cond:
                self._writer_depth -= 1
                if self._writer_depth == 0:
                    self._writer = None
                    self._cond.notify_all()


class InVerDa:
    """A database with end-to-end support for co-existing schema versions."""

    def __init__(self) -> None:
        self.database = Database()
        self.genealogy = Genealogy()
        self._undo_log: list[tuple[str, Key, tuple | None]] | None = None
        # Memo: does anything stored lie beyond (smo, direction)? Reset on
        # every evolution and migration.
        self._propagation_needs: dict[tuple[int, str], bool] = {}
        # Attached execution backends (e.g. the live SQLite backend). When
        # one is attached it owns the data plane; the in-memory tables are
        # a snapshot from attach time, but the catalog (and the *layout* of
        # physical storage, which the code generators consult) stays live.
        self._backends: list = []
        # Catalog read/write lock: concurrent sessions' statements take the
        # read side, catalog transitions (DDL) the write side.
        self.catalog_lock = RWLock()
        # Catalog-transition listeners (e.g. the network server invalidating
        # clients bound to a dropped version). Called while the write lock
        # is still held — listeners must be quick and must not execute
        # statements (they would deadlock on the read side).
        self._catalog_listeners: list = []
        # Monotonic catalog generation: bumped under the write lock on
        # every transition (evolution, MATERIALIZE, drop). Compiled
        # statement plans are tagged with it, so a plan can never outlive
        # the catalog it was lowered against.
        self.catalog_generation = 0  # repro-lint: allow(RPC302) — initial value, no catalog exists yet
        # (generation, fingerprint) memo for catalog_fingerprint().
        self._fingerprint_memo: tuple[int, str] | None = None
        # Summary of the most recent static-analysis run (repro.check):
        # set by record_findings(), surfaced in the stats snapshot and the
        # server status report.
        self.last_check: dict | None = None
        from repro.core.advisor import WorkloadRecorder
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.tracing import Tracer
        from repro.sql.plancache import PlanCache

        # Observability: one registry and one tracer per engine. Every
        # instrumented component (plan cache, workload recorder, session
        # pool, server, recovery) binds its series here.
        self.metrics = MetricsRegistry()
        self.tracer = Tracer()
        self.workload = WorkloadRecorder(self.metrics)
        self.plan_cache = PlanCache()
        self.plan_cache.bind_metrics(self.metrics)
        self.add_catalog_listener(self.plan_cache.on_catalog_event)
        self._transition_seconds = self.metrics.histogram(
            "repro_transition_duration_seconds",
            "Catalog transition duration by kind.",
            ("kind",),
        )
        self._transitions_total = self.metrics.counter(
            "repro_transitions_total",
            "Catalog transitions completed by kind.",
            ("kind",),
        )
        self._generation_gauge = self.metrics.gauge(
            "repro_catalog_generation",
            "Current catalog generation (bumped on every transition).",
        )
        self._generation_gauge.set(0)
        rwlock_wait = self.metrics.histogram(
            "repro_rwlock_write_wait_seconds",
            "Time catalog transitions waited to acquire the writer lock.",
        )
        self.catalog_lock.write_wait_observer = rwlock_wait.observe
        # Online MATERIALIZE observability: phase (0 idle, 1 prepare,
        # 2 backfill, 3 cutover), per-move progress, and end-to-end move
        # duration.  The guard flag refuses *other* catalog transitions
        # while a backfill is in flight (they would invalidate the staged
        # copies) instead of letting them queue behind the chunk loop.
        self._online_materialize_active = False
        # Optional context-manager factory entered around an online move's
        # cutover (the brief write-lock window at the end of the backfill).
        # Callers that serialize external state against the catalog — the
        # soak harness orders its differential oplog with it — get a hook
        # at the move's true serialization point: code inside the ``with``
        # body runs after the cutover committed, while whatever mutual
        # exclusion the context manager provides spans the switch itself.
        self.online_cutover_hook: "Callable[[], ContextManager[None]] | None" = None
        self._backfill_phase = self.metrics.gauge(
            "repro_backfill_phase",
            "Online MATERIALIZE phase (0=idle 1=prepare 2=backfill 3=cutover).",
        )
        self._backfill_phase.set(0)
        self._backfill_chunks = self.metrics.gauge(
            "repro_backfill_chunks",
            "Chunks committed by the in-flight online MATERIALIZE.",
        )
        self._backfill_rows = self.metrics.gauge(
            "repro_backfill_rows",
            "Rows copied by the in-flight online MATERIALIZE.",
        )
        self._online_materialize_seconds = self.metrics.histogram(
            "repro_materialize_online_seconds",
            "End-to-end duration of online MATERIALIZE moves.",
        )

    @contextmanager
    def _timed_transition(self, kind: str):
        """Record duration + count of a catalog transition and keep the
        generation gauge current (``kind`` in evolve|materialize|drop)."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self._generation_gauge.set(self.catalog_generation)
        self._transition_seconds.observe(time.perf_counter() - started, kind=kind)
        self._transitions_total.inc(kind=kind)

    # ------------------------------------------------------------------
    # Execution backends
    # ------------------------------------------------------------------

    def attach_backend(self, backend) -> None:
        if backend not in self._backends:
            self._backends.append(backend)

    def detach_backend(self, backend) -> None:
        if backend in self._backends:
            self._backends.remove(backend)

    @property
    def live_backend(self):
        """The attached execution backend, if any."""
        return self._backends[0] if self._backends else None

    def add_catalog_listener(self, listener) -> None:
        """Register ``listener(event: str, **info)`` to be called after
        every catalog transition (``"evolution"``, ``"materialize"``,
        ``"drop"``), still under the catalog write lock."""
        if listener not in self._catalog_listeners:
            self._catalog_listeners.append(listener)

    def remove_catalog_listener(self, listener) -> None:
        if listener in self._catalog_listeners:
            self._catalog_listeners.remove(listener)

    def _notify_catalog(self, event: str, **info) -> None:
        for listener in list(self._catalog_listeners):
            try:
                listener(event, **info)
            except Exception:  # pragma: no cover - listeners are advisory
                pass  # the catalog already changed; a listener cannot veto it

    def _quiesce_backends(self) -> None:
        """Commit every backend session's open transaction before a
        catalog transition (DDL is not transactional).  Runs under the
        catalog write lock, so no session statements are in flight."""
        for backend in self._backends:
            quiesce = getattr(backend, "quiesce", None)
            if quiesce is not None:
                quiesce()

    # ------------------------------------------------------------------
    # Statement execution
    # ------------------------------------------------------------------

    def execute(self, script: str) -> None:
        """Execute a BiDEL script (any mix of the three statement forms)."""
        for statement in parse_script(script):
            self.execute_statement(statement)

    def execute_statement(self, statement: Statement) -> None:
        if isinstance(statement, CreateSchemaVersion):
            self.create_schema_version(statement)
        elif isinstance(statement, DropSchemaVersion):
            self.drop_schema_version(statement.name)
        elif isinstance(statement, Materialize):
            self.materialize(statement.targets, online=statement.online)
        else:  # pragma: no cover - parser guarantees the union
            raise EvolutionError(f"unknown statement {statement!r}")

    def connect(self, version_name: str):
        """A legacy Python-method connection bound to one schema version.

        .. deprecated:: prefer :func:`repro.connect`, which returns a
           PEP-249 connection speaking SQL with parameter binding.
        """
        from repro.core.access import VersionConnection

        return VersionConnection(self, self.genealogy.schema_version(version_name))

    def sql_connect(
        self,
        version_name: str | None = None,
        *,
        autocommit: bool = False,
        backend: str | None = None,
    ):
        """A PEP-249 connection to one schema version (see :func:`repro.connect`)."""
        from repro.sql.connection import connect

        return connect(self, version_name, autocommit=autocommit, backend=backend)

    # ------------------------------------------------------------------
    # Database Evolution Operation
    # ------------------------------------------------------------------

    def create_schema_version(self, statement: CreateSchemaVersion) -> SchemaVersion:
        with self.catalog_lock.write_locked(), self._timed_transition("evolve"):
            self._ensure_no_online_move()
            self._quiesce_backends()
            version = self._create_schema_version(statement)
            # The generation moves BEFORE the backend hooks run, so a
            # persisting backend records the new generation in the same
            # transaction as the DDL it installs.
            self.catalog_generation += 1
            for backend in self._backends:
                backend.on_evolution(version)
            self._notify_catalog("evolution", version=version.name)
            return version

    def _create_schema_version(self, statement: CreateSchemaVersion) -> SchemaVersion:
        working: dict[str, TableVersion] = {}
        if statement.source is not None:
            working.update(self.genealogy.schema_version(statement.source).tables)
        for node in statement.smos:
            self._apply_smo(node, working, statement.name)
        version = SchemaVersion(statement.name, working, parent=statement.source)
        self.genealogy.add_schema_version(version)
        self.genealogy.check_acyclic()
        self._propagation_needs.clear()
        return version

    def _apply_smo(
        self, node: SmoNode, working: dict[str, TableVersion], evolution: str
    ) -> SmoInstance:
        source_names = source_table_names(node)
        sources: list[TableVersion] = []
        for name in source_names:
            if name not in working:
                raise EvolutionError(
                    f"SMO {node.unparse()!r}: no table {name!r} in the working schema"
                )
            sources.append(working[name])
        semantics = build_semantics(node, tuple(tv.schema for tv in sources))
        target_schemas = semantics.target_schemas()
        targets = [
            self.genealogy.new_table_version(schema.name, schema, evolution)
            for schema in target_schemas
        ]
        smo = self.genealogy.new_smo_instance(
            node,
            sources,
            targets,
            evolution,
            materialized=isinstance(node, CreateTable),
        )
        smo.semantics = semantics
        self._assign_key_columns(node, smo)
        for name in source_names:
            del working[name]
        for tv in targets:
            if tv.name in working:
                raise EvolutionError(
                    f"SMO {node.unparse()!r}: table {tv.name!r} already exists "
                    "in the working schema"
                )
            working[tv.name] = tv

        # Physical setup: CREATE TABLE targets are stored immediately; all
        # other SMOs start virtualized, so their source-side auxiliary
        # tables exist (initially empty) alongside the shared ID tables.
        if isinstance(node, CreateTable):
            self.database.create_table(
                targets[0].schema.with_name(targets[0].data_table_name)
            )
        else:
            for role, schema in semantics.aux_src().items():
                self.database.create_table(schema.with_name(smo.aux_table_name(role)))
        for role, schema in semantics.aux_shared().items():
            self.database.create_table(schema.with_name(smo.aux_table_name(role)))
        if semantics.aux_shared():
            self._initialize_shared_aux(smo)
        return smo

    def _assign_key_columns(self, node: SmoNode, smo: SmoInstance) -> None:
        """Track which visible columns mirror generated row identifiers."""
        from repro.bidel.ast import Decompose, Join, RenameColumn

        if isinstance(node, Decompose) and node.kind.method in ("FK", "COND"):
            generated = smo.targets if node.kind.method == "COND" else smo.targets[1:]
            for tv in generated:
                tv.key_column = _ID_COLUMN
            return
        if isinstance(node, Join) and node.kind.method == "COND" and not node.outer:
            return  # joined rows get fresh ids but expose no id column
        # Identity-shaped SMOs inherit the marker when the column survives.
        if len(smo.sources) == 1 and len(smo.targets) >= 1:
            inherited = smo.sources[0].key_column
            if inherited is None:
                return
            if isinstance(node, RenameColumn) and node.column == inherited:
                inherited = node.new_name
            for tv in smo.targets:
                if tv.schema.has_column(inherited):
                    tv.key_column = inherited

    def _initialize_shared_aux(self, smo: SmoInstance) -> None:
        """Populate ID tables eagerly so generated identifiers are stable
        from the first read onwards (repeatable reads, Appendix B.3)."""
        ctx = EngineMapContext(self, smo, output_side="target")
        state = smo.semantics.map_forward(ctx)
        for role in smo.semantics.aux_shared():
            if role in state:
                table = self.database.table(smo.aux_table_name(role))
                table.replace_all(state[role])

    # ------------------------------------------------------------------
    # Dropping schema versions
    # ------------------------------------------------------------------

    def drop_schema_version(self, name: str) -> None:
        with self.catalog_lock.write_locked(), self._timed_transition("drop"):
            self._ensure_no_online_move()
            self._quiesce_backends()
            removed = self._drop_schema_version(name)
            self.catalog_generation += 1
            for backend in self._backends:
                backend.on_drop(name, removed)
            self._notify_catalog("drop", version=name)

    def _drop_schema_version(self, name: str) -> list[SmoInstance]:
        version = self.genealogy.schema_version(name)
        removable = self.genealogy.drop_schema_version(version.name)
        # SMOs no longer connecting remaining versions are garbage-collected
        # from the catalog; their data stays where the materialization put it.
        removed: list[SmoInstance] = []
        for smo in removable:
            if smo.materialized or any(
                self._is_physical(tv) for tv in smo.targets
            ):
                continue  # data would be lost; keep the SMO alive
            for tv in smo.targets:
                tv.incoming = None
            for tv in smo.sources:
                if smo in tv.outgoing:
                    tv.outgoing.remove(smo)
            for role in smo.semantics.aux_src() if smo.semantics else {}:
                table_name = smo.aux_table_name(role)
                if self.database.has_table(table_name):
                    self.database.drop_table(table_name)
            self.genealogy.smo_instances.pop(smo.uid, None)
            removed.append(smo)
        return removed

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def _is_physical(self, tv: TableVersion) -> bool:
        return self.database.has_table(tv.data_table_name)

    def _forward_smo(self, tv: TableVersion) -> SmoInstance | None:
        """The outgoing materialized SMO, if any (Case 2 of Section 6)."""
        for smo in tv.outgoing:
            if smo.materialized:
                return smo
        return None

    def _route_smo(self, tv: TableVersion) -> SmoInstance | None:
        """The SMO a derived table version's reads are routed through."""
        if self._is_physical(tv):
            return None
        forward = self._forward_smo(tv)
        if forward is not None:
            return forward
        if tv.incoming is not None and not tv.incoming.is_initial:
            return tv.incoming
        return None

    def read_stored(self, tv: TableVersion) -> KeyedRows:
        if self._is_physical(tv):
            return self.database.table(tv.data_table_name).as_dict()
        return {}

    def read_aux(self, smo: SmoInstance, role: str) -> KeyedRows:
        name = smo.aux_table_name(role)
        if self.database.has_table(name):
            return self.database.table(name).as_dict()
        return {}

    def read_table_version(
        self, tv: TableVersion, *, cache: ReadCache | None = None
    ) -> KeyedRows:
        """The visible extent of a table version (Cases 1–3 of Section 6)."""
        if cache is not None and tv.uid in cache:
            return cache[tv.uid]
        if self._is_physical(tv):
            extent = self.database.table(tv.data_table_name).as_dict()
        else:
            cache = cache if cache is not None else {}
            forward = self._forward_smo(tv)
            if forward is not None:
                role = forward.semantics.source_roles[forward.sources.index(tv)]
                ctx = EngineMapContext(self, forward, output_side="source", cache=cache)
                extent = forward.semantics.map_backward(ctx).get(role, {})
            elif tv.incoming is not None and not tv.incoming.is_initial:
                smo = tv.incoming
                role = smo.semantics.target_roles[smo.targets.index(tv)]
                ctx = EngineMapContext(self, smo, output_side="target", cache=cache)
                extent = smo.semantics.map_forward(ctx).get(role, {})
            else:  # pragma: no cover - catalog invariants prevent this
                raise AccessError(f"table version {tv!r} has no data route")
        if cache is not None:
            cache[tv.uid] = extent
        return extent

    def read_table_version_keys(
        self, tv: TableVersion, keys: set[Key], *, cache: ReadCache | None = None
    ) -> KeyedRows:
        """Key-restricted read; falls back to a cached full read when the
        table version is not physical."""
        if self._is_physical(tv):
            table = self.database.table(tv.data_table_name)
            return {key: row for key in keys if (row := table.get(key)) is not None}
        extent = self.read_table_version(tv, cache=cache)
        return {key: extent[key] for key in keys if key in extent}

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def allocate_key(self) -> Key:
        return self.database.next_value()

    def apply_change(self, tv: TableVersion, change: TableChange) -> None:
        """Apply a write to a table version.

        Mirrors the paper's cascading-trigger architecture: the change
        travels to every table version "as long as some data is physically
        stored with a table version either in the data table or in
        auxiliary tables" — i.e. toward the physical home *and* along any
        virtual branch that ends in stored auxiliary state (e.g. the ID
        tables of an identifier-generating SMO).
        """
        if change.empty:
            return
        own_log = self._undo_log is None
        if own_log:
            self._undo_log = []
        try:
            self._propagate_batch([(tv, change)], cache={}, visited=set())
        except Exception:
            if own_log:
                self._rollback()
            raise
        finally:
            if own_log:
                self._undo_log = None

    def _rollback(self) -> None:
        self._rollback_to(0)

    def _rollback_to(self, mark: int) -> None:
        """Undo journal entries back to ``mark`` (a savepoint: the journal
        length at the time the guarded scope began)."""
        assert self._undo_log is not None
        while len(self._undo_log) > mark:
            table_name, key, old_row = self._undo_log.pop()
            if not self.database.has_table(table_name):
                continue
            table = self.database.table(table_name)
            if old_row is None:
                table.discard(key)
            else:
                table.upsert(key, old_row)
        self._invalidate_semantics_caches()

    def _invalidate_semantics_caches(self) -> None:
        for smo in self.genealogy.smo_instances.values():
            if smo.semantics is not None:
                smo.semantics.invalidate_caches()

    def _apply_physical(self, table: Table, change: TableChange) -> None:
        log = self._undo_log
        for key in change.deletes:
            old = table.discard(key)
            if log is not None and old is not None:
                log.append((table.name, key, old))
        for key, row in change.upserts.items():
            old = table.get(key)
            if log is not None:
                log.append((table.name, key, old))
            table.upsert(key, row)

    def _is_storage_route(self, tv: TableVersion, smo: SmoInstance) -> bool:
        """Is ``smo`` the SMO through which ``tv``'s data reaches storage?"""
        if smo.is_initial:
            return False
        if tv in smo.sources:
            return smo.materialized
        return not smo.materialized and not self._is_physical(tv) and self._forward_smo(tv) is None

    def _needs_propagation(self, smo: SmoInstance, direction: str) -> bool:
        """Does anything physically stored lie on or beyond the far side of
        ``smo`` in ``direction``? (Memoized per materialization epoch.)"""
        key = (smo.uid, direction)
        cached = self._propagation_needs.get(key)
        if cached is not None:
            return cached
        self._propagation_needs[key] = False  # break exploration cycles
        semantics = smo.semantics
        result = False
        if semantics is not None and semantics.aux_shared():
            result = True
        elif direction == "forward":
            if smo.materialized:
                result = True  # data and aux_tgt live there
            else:
                result = any(
                    self._needs_propagation(nxt, "forward" if far_tv in nxt.sources else "backward")
                    for far_tv in smo.targets
                    for nxt in ([far_tv.incoming] if far_tv.incoming not in (None, smo) else [])
                    + [out for out in far_tv.outgoing if out is not smo]
                    if nxt is not None and not nxt.is_initial
                )
        else:
            if not smo.materialized:
                result = True  # data and aux_src live there
            else:
                result = any(
                    self._needs_propagation(nxt, "forward" if far_tv in nxt.sources else "backward")
                    for far_tv in smo.sources
                    for nxt in ([far_tv.incoming] if far_tv.incoming not in (None, smo) else [])
                    + [out for out in far_tv.outgoing if out is not smo]
                    if nxt is not None and not nxt.is_initial
                )
        self._propagation_needs[key] = result
        return result

    def _propagate_batch(
        self,
        batch: list[tuple[TableVersion, TableChange]],
        cache: ReadCache,
        visited: set[int],
    ) -> None:
        """One wavefront step: apply the physical parts of the batch, then
        carry the changes across every adjacent, not-yet-visited SMO that
        leads to stored state. Changes destined for one SMO are grouped so
        multi-source SMOs (MERGE, JOIN) see all their roles at once."""
        for tv, change in batch:
            if change.empty:
                continue
            cache.pop(tv.uid, None)
            if self._is_physical(tv):
                self._apply_physical(self.database.table(tv.data_table_name), change)
            elif self._forward_smo(tv) is None and (
                tv.incoming is None or tv.incoming.is_initial
            ):
                raise AccessError(f"table version {tv!r} accepts no writes (no data route)")

        # Group the batch's changes by adjacent SMO and direction.
        grouped: dict[int, tuple[SmoInstance, str, dict[str, TableChange]]] = {}
        order: list[int] = []
        for tv, change in batch:
            if change.empty:
                continue
            adjacent = [smo for smo in tv.outgoing]
            if tv.incoming is not None and not tv.incoming.is_initial:
                adjacent.append(tv.incoming)
            for smo in adjacent:
                if smo.uid in visited or smo.is_initial:
                    continue
                direction = "forward" if tv in smo.sources else "backward"
                is_route = self._is_storage_route(tv, smo)
                if not is_route and not self._needs_propagation(smo, direction):
                    continue
                if smo.uid not in grouped:
                    grouped[smo.uid] = (smo, direction, {})
                    if is_route:
                        order.insert(0, smo.uid)  # storage routes run first
                    else:
                        order.append(smo.uid)
                semantics = smo.semantics
                roles = (
                    dict(zip(semantics.source_roles, smo.sources))
                    if direction == "forward"
                    else dict(zip(semantics.target_roles, smo.targets))
                )
                for role, role_tv in roles.items():
                    if role_tv is tv:
                        grouped[smo.uid][2][role] = change

        for smo_uid in order:
            if smo_uid in visited:
                continue
            smo, direction, role_changes = grouped[smo_uid]
            visited.add(smo_uid)
            output_side = "target" if direction == "forward" else "source"
            ctx = EngineMapContext(self, smo, output_side=output_side, cache=cache)
            if direction == "forward":
                out = smo.semantics.propagate_forward(role_changes, ctx)
            else:
                out = smo.semantics.propagate_backward(role_changes, ctx)
            if out is None:
                out = self._full_put(smo, role_changes, direction=direction, cache=cache)
            self._dispatch(smo, out, direction=direction, cache=cache, visited=visited)

    def _dispatch(
        self,
        smo: SmoInstance,
        outputs: dict[str, TableChange],
        *,
        direction: str,
        cache: ReadCache,
        visited: set[int],
    ) -> None:
        semantics = smo.semantics
        data_roles = (
            dict(zip(semantics.target_roles, smo.targets))
            if direction == "forward"
            else dict(zip(semantics.source_roles, smo.sources))
        )
        stored_aux = set(semantics.aux_shared())
        if direction == "forward":
            stored_aux |= set(semantics.aux_tgt()) if smo.materialized else set()
        else:
            stored_aux |= set(semantics.aux_src()) if not smo.materialized else set()
        next_batch: list[tuple[TableVersion, TableChange]] = []
        for role, change in outputs.items():
            if change.empty:
                continue
            tv = data_roles.get(role)
            if tv is not None:
                next_batch.append((tv, change))
                continue
            if role in stored_aux:
                table_name = smo.aux_table_name(role)
                if self.database.has_table(table_name):
                    self._apply_physical(self.database.table(table_name), change)
            # aux roles of the unstored side are simply not persisted
        if next_batch:
            self._propagate_batch(next_batch, cache, visited)

    def _full_put(
        self,
        smo: SmoInstance,
        changes: dict[str, TableChange],
        *,
        direction: str,
        cache: ReadCache,
    ) -> dict[str, TableChange]:
        """Whole-state lens put for SMOs without an incremental fast path:
        read the writing side, apply the change, re-map the whole side, and
        diff against the currently stored opposite side."""
        semantics = smo.semantics
        input_roles = (
            dict(zip(semantics.source_roles, smo.sources))
            if direction == "forward"
            else dict(zip(semantics.target_roles, smo.targets))
        )
        overrides: dict[str, KeyedRows] = {}
        for role, tv in input_roles.items():
            extent = dict(self.read_table_version(tv, cache=cache))
            changes.get(role, TableChange()).apply_to(extent)
            overrides[role] = extent
        output_side = "target" if direction == "forward" else "source"
        ctx = EngineMapContext(
            self, smo, output_side=output_side, cache=cache, overrides=overrides
        )
        new_state: SideState = (
            semantics.map_forward(ctx) if direction == "forward" else semantics.map_backward(ctx)
        )
        out: dict[str, TableChange] = {}
        output_roles = (
            dict(zip(semantics.target_roles, smo.targets))
            if direction == "forward"
            else dict(zip(semantics.source_roles, smo.sources))
        )
        for role, new_rows in new_state.items():
            tv = output_roles.get(role)
            if tv is not None:
                # Diff against the STORED extent when the output table's
                # read route leads back through this SMO: reading it via the
                # routing would derive from the already-applied write and
                # self-suppress the diff, silently skipping downstream
                # propagation (in particular shared-ID maintenance).
                if self._route_smo(tv) is smo:
                    current = self.read_stored(tv)
                else:
                    current = self.read_table_version(tv, cache=cache)
            else:
                current = self.read_aux(smo, role)
            diff = TableChange()
            for key in current:
                if key not in new_rows:
                    diff.deletes.add(key)
            for key, row in new_rows.items():
                if current.get(key) != row:
                    diff.upserts[key] = row
            out[role] = diff
        return out

    # ------------------------------------------------------------------
    # Database Migration Operation (Section 7)
    # ------------------------------------------------------------------

    def materialize(
        self,
        targets: Iterable[str],
        *,
        online: bool = False,
        chunk_rows: int | None = None,
    ) -> None:
        """``MATERIALIZE 'version'`` / ``MATERIALIZE 'version.table', ...``

        ``online=True`` (BiDEL ``MATERIALIZE ONLINE``) runs the move as a
        journaled, crash-resumable backfill: statements keep flowing while
        the new physical tables are copied in chunks under the read side
        of the catalog lock, and only the prepare and cutover steps take
        brief write-lock windows.  ``chunk_rows`` overrides the backfill
        chunk size.  Falls back to the offline single-transaction move
        when no attached backend implements the online pipeline (the pure
        in-memory engine, where "offline" is a dict swap anyway).
        """
        if online:
            backend = next(
                (b for b in self._backends if hasattr(b, "online_prepare")), None
            )
            if backend is not None:
                self._materialize_online(targets, backend, chunk_rows)
                return
        with self.catalog_lock.write_locked():
            self._ensure_no_online_move()
            self.apply_materialization(self._resolve_materialization(targets))

    def _resolve_materialization(
        self, targets: Iterable[str]
    ) -> frozenset[SmoInstance]:
        table_versions: list[TableVersion] = []
        for target in targets:
            if "." in target:
                version_name, table_name = target.split(".", 1)
                version = self.genealogy.schema_version(version_name)
                table_versions.append(version.table_version(table_name))
            else:
                version = self.genealogy.schema_version(target)
                table_versions.extend(version.tables.values())
        return materialization_for_versions(self.genealogy, table_versions)

    def _ensure_no_online_move(self) -> None:
        """Catalog transitions are refused (not queued) while an online
        backfill is in flight: they would invalidate the staged copies,
        and failing fast keeps the DDL caller from deadlocking behind a
        move that may take minutes."""
        if self._online_materialize_active:
            raise CatalogError(
                "an online MATERIALIZE backfill is in flight; retry the "
                "catalog transition after it cuts over"
            )

    def _materialize_online(
        self, targets: Iterable[str], backend, chunk_rows: int | None
    ) -> None:
        started = time.perf_counter()
        with self.catalog_lock.write_locked():
            self._ensure_no_online_move()
            schema = self._resolve_materialization(targets)
            validate_materialization(self.genealogy, schema)
            self._backfill_phase.set(1)
            self._quiesce_backends()
            backend.online_prepare(schema, chunk_rows=chunk_rows)
            self._online_materialize_active = True
            self._backfill_phase.set(2)
        try:
            while True:
                with self.catalog_lock.read_locked():
                    done = backend.online_chunk()
                chunks, rows = backend.online_progress()
                self._backfill_chunks.set(chunks)
                self._backfill_rows.set(rows)
                if done:
                    break
            self._backfill_phase.set(3)
            # The guard stays up through the cutover: apply_materialization
            # re-enters the write lock itself and never checks the guard,
            # while any other transition that slipped in between the chunk
            # loop and here would still be refused.
            hook = self.online_cutover_hook
            if hook is not None:
                with hook():
                    self.apply_materialization(schema)
            else:
                self.apply_materialization(schema)
        finally:
            self._online_materialize_active = False
            self._backfill_phase.set(0)
        self._online_materialize_seconds.observe(time.perf_counter() - started)

    def apply_materialization(self, schema: frozenset[SmoInstance]) -> None:
        """Move the physical data representation to ``schema``.

        All new physical contents (data tables and auxiliary tables) are
        computed from the *current* state through the existing delta code,
        then swapped in atomically; afterwards every SMO's materialization
        flag is updated and obsolete tables are dropped.
        """
        with self.catalog_lock.write_locked(), self._timed_transition("materialize"):
            self._quiesce_backends()
            self._apply_materialization(schema)
            self._notify_catalog("materialize")

    def _apply_materialization(self, schema: frozenset[SmoInstance]) -> None:
        validate_materialization(self.genealogy, schema)
        # Attached backends migrate first, against the old views and flags;
        # the in-memory rebuild below then keeps the *layout* of physical
        # storage in sync (backends own the actual contents).
        for backend in self._backends:
            backend.on_materialize(schema)
        cache: ReadCache = {}
        new_tables: dict[str, Table] = {}

        # 1. Data tables of the new physical table schema.
        for tv in physical_table_versions(self.genealogy, schema):
            extent = self.read_table_version(tv, cache=cache)
            table = Table(tv.schema.with_name(tv.data_table_name))
            table.replace_all(extent)
            new_tables[table.name] = table

        # 2. Auxiliary tables for each SMO's newly stored side.
        for smo in self.genealogy.evolution_smos():
            semantics = smo.semantics
            if semantics is None:
                continue
            will_be_materialized = smo in schema
            side_aux = semantics.aux_tgt() if will_be_materialized else semantics.aux_src()
            needed_roles = set(side_aux) | set(semantics.aux_shared())
            if not needed_roles:
                continue
            output_side = "target" if will_be_materialized else "source"
            ctx = EngineMapContext(self, smo, output_side=output_side, cache=cache)
            state = (
                semantics.map_forward(ctx)
                if will_be_materialized
                else semantics.map_backward(ctx)
            )
            for role in needed_roles:
                schema_for_role = side_aux.get(role) or semantics.aux_shared()[role]
                table = Table(schema_for_role.with_name(smo.aux_table_name(role)))
                table.replace_all(state.get(role, {}))
                new_tables[table.name] = table

        # 3. Initial tables that remain physical keep their storage.
        for smo in self.genealogy.all_smos():
            if not smo.is_initial:
                continue
            tv = smo.targets[0]
            name = tv.data_table_name
            if name not in new_tables and not any(
                out in schema for out in tv.outgoing if not out.is_initial
            ):
                extent = self.read_table_version(tv, cache=cache)
                table = Table(tv.schema.with_name(name))
                table.replace_all(extent)
                new_tables[name] = table

        # 4. Atomic swap: replace the physical storage wholesale.
        self.database.tables = new_tables
        for smo in self.genealogy.evolution_smos():
            smo.materialized = smo in schema
        self._invalidate_semantics_caches()
        self._propagation_needs.clear()
        # Bump before after_materialize so a persisting backend records
        # the new generation with the regenerated delta code.  Only ever
        # called from materialize(), which holds the write lock.
        self.catalog_generation += 1  # repro-lint: allow(RPC302)
        for backend in self._backends:
            backend.after_materialize()

    def current_materialization(self) -> frozenset[SmoInstance]:
        return current_materialization(self.genealogy)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def physical_tables(self) -> list[str]:
        return self.database.table_names()

    def version_names(self) -> list[str]:
        """Active schema version names in genealogy (insertion) order.

        The order is deterministic and creation-ordered on purpose: the
        persisted catalog log, the catalog fingerprint, and replay-based
        recovery all depend on genealogy iteration being stable across
        runs (sorting by name would make it depend on what versions are
        *called*)."""
        return [v.name for v in self.genealogy.active_versions()]

    def catalog_fingerprint(self) -> str:
        """The deterministic fingerprint of the whole catalog (versions,
        materialization, physical layout), memoized per generation."""
        memo = self._fingerprint_memo
        if memo is not None and memo[0] == self.catalog_generation:
            return memo[1]
        from repro.persist.fingerprint import catalog_fingerprint

        fingerprint = catalog_fingerprint(self)
        self._fingerprint_memo = (self.catalog_generation, fingerprint)
        return fingerprint
