"""InVerDa: co-existing schema versions on one shared data set.

The public entry point is :class:`~repro.core.engine.InVerDa`:

>>> from repro import InVerDa
>>> db = InVerDa()
>>> db.execute('''
...     CREATE SCHEMA VERSION TasKy WITH
...     CREATE TABLE Task(author TEXT, task TEXT, prio INTEGER);
... ''')
>>> tasky = db.connect("TasKy")
>>> tasky.insert("Task", {"author": "Ann", "task": "Organize party", "prio": 3})  # doctest: +SKIP
"""

from repro.core.access import VersionConnection
from repro.core.engine import InVerDa

__all__ = ["InVerDa", "VersionConnection"]
