"""The client driver: PEP-249 over the wire.

:func:`connect_remote` opens a TCP connection to a :class:`ReproServer`
and returns a :class:`RemoteConnection` with the same surface as the
in-process :func:`repro.connect` — cursors, ``?`` parameter binding,
``commit``/``rollback``, ``with conn:`` transaction scopes, autocommit —
so application code is transport-agnostic: the entire ``tests/sql/``
suite runs unmodified against a live server.

Both classes subclass the shared DB-API core of
:mod:`repro.sql.connection`; only statement dispatch differs.  Results
are **paged**: an ``execute`` reply carries the first ``page_size`` rows,
and ``fetchone``/``fetchmany``/``fetchall`` transparently pull further
pages from the server on demand, so a large result never sits in client
(or server) memory twice.

**Pipelining**: :meth:`RemoteConnection.pipeline` writes a batch of
statements as back-to-back request frames before reading any response —
one network round trip for the whole batch instead of one per statement.
The server executes them strictly in order; each statement gets its own
cursor in the returned list.
"""

from __future__ import annotations

import itertools
import socket
import sys
import threading
import time
from collections.abc import Mapping, Sequence
from typing import Any

from repro.errors import OperationalError, ProgrammingError
from repro.obs import Span, Tracer
from repro.server import protocol
from repro.server.protocol import ProtocolError
from repro.sql.connection import BaseConnection, BaseCursor
from repro.sql.planner import StatementResult

_request_ids = itertools.count(1)


class ConnectionLostError(OperationalError):
    """The TCP stream to the server died mid-conversation."""


def _wire_params(parameters: Sequence[Any] | None) -> list:
    if parameters is None:
        return []
    if isinstance(parameters, (str, bytes)):
        raise ProgrammingError("parameters must be a sequence of values, not a string")
    if isinstance(parameters, Mapping):
        raise ProgrammingError(
            "qmark paramstyle takes a positional sequence, not a mapping"
        )
    return list(parameters)


class RemoteCursor(BaseCursor):
    """A cursor whose statements execute on the server, with paged rows."""

    _connection: "RemoteConnection"

    def __init__(self, connection: "RemoteConnection"):
        super().__init__(connection)
        self._stmt_id: int | None = None

    # -- execution ---------------------------------------------------------

    def execute(self, operation: str, parameters: Sequence[Any] | None = None) -> "RemoteCursor":
        connection = self._check_open("execute")
        self._discard_statement()
        request = {
            "op": "execute",
            "sql": operation,
            "params": _wire_params(parameters),
            "page_size": connection.page_size,
        }
        return self._traced_exchange(connection, operation, request)

    def executemany(
        self, operation: str, seq_of_parameters: Sequence[Sequence[Any]]
    ) -> "RemoteCursor":
        connection = self._check_open("executemany")
        self._discard_statement()
        request = {
            "op": "executemany",
            "sql": operation,
            "params_seq": [_wire_params(p) for p in seq_of_parameters],
            "page_size": connection.page_size,
        }
        return self._traced_exchange(connection, operation, request)

    def _traced_exchange(self, connection: "RemoteConnection", operation: str,
                         request: dict) -> "RemoteCursor":
        """One instrumented round trip: start the client span (injecting
        the trace context into the frame so the server continues it), send
        the request, and fold the reply's timing envelope back into
        metrics + the trace."""
        self.trace = None
        self.cache_event = None
        self.statement_kind = None
        builder = connection._begin_client_trace(operation, request)
        started = time.perf_counter()
        try:
            reply = connection._request(request)
        except BaseException:
            connection._finish_client_trace(self, operation, started, builder,
                                            None, error=True)
            raise
        self._install_reply(reply)
        connection._finish_client_trace(self, operation, started, builder,
                                        reply.get("timing"))
        return self

    def _install_reply(self, reply: dict) -> None:
        self._install_result(
            StatementResult(
                description=protocol.description_from_wire(reply.get("description")),
                rows=protocol.rows_from_wire(reply.get("rows", [])),
                rowcount=reply.get("rowcount", -1),
                lastrowid=reply.get("lastrowid"),
            ),
            exhausted=reply.get("done", True),
        )
        self._stmt_id = reply.get("stmt_id")

    # -- paging ------------------------------------------------------------

    def _fetch_more(self, size: int) -> list[tuple]:
        if self._stmt_id is None:
            return []
        reply = self._connection._request(
            {
                "op": "fetch",
                "stmt_id": self._stmt_id,
                "page_size": max(size, self._connection.page_size),
            }
        )
        if reply.get("done", True):
            self._stmt_id = None
        return protocol.rows_from_wire(reply.get("rows", []))

    def _discard_statement(self) -> None:
        """Tell the server to free a half-fetched previous result."""
        if self._stmt_id is None:
            return
        stmt_id, self._stmt_id = self._stmt_id, None
        try:
            self._connection._request({"op": "close_statement", "stmt_id": stmt_id})
        except Exception:
            pass  # connection already gone; the server freed it on teardown

    def close(self) -> None:
        if not self._closed and not self._connection._closed:
            self._discard_statement()
        super().close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        # A dropped half-fetched cursor must not pin its open-statement
        # slot on the server until the connection closes.  Skipped during
        # interpreter shutdown: the exchange could block on a server
        # whose threads are already gone.
        try:
            if not sys.is_finalizing():
                self.close()
        except Exception:
            pass


class RemoteConnection(BaseConnection):
    """A DB-API connection to one schema version of a remote server."""

    def __init__(
        self,
        sock: socket.socket,
        *,
        version: str | None,
        autocommit: bool = False,
        backend: str | None = None,
        page_size: int = protocol.DEFAULT_PAGE_SIZE,
        trace: bool = False,
        slow_ms: float | None = None,
    ):
        super().__init__(autocommit=autocommit)
        #: Client-side tracer: spans cover the full round trip, with the
        #: network/engine split computed from the server's timing
        #: envelope.  Also owns this driver's slow-query ring buffer.
        self.tracer = Tracer(enabled=trace, slow_ms=slow_ms)
        self._sock = sock
        self._rfile = sock.makefile("rb")
        self._wfile = sock.makefile("wb")
        # One in-flight request/response exchange at a time per connection
        # (PEP 249 threadsafety level 1; pipeline() batches under the same
        # lock).
        self._io_lock = threading.Lock()
        self.page_size = page_size
        hello = {"op": "hello", "protocol": protocol.PROTOCOL_VERSION, "autocommit": autocommit}
        if version is not None:
            hello["version"] = version
        if backend is not None:
            hello["backend"] = backend
        try:
            reply = self._request(hello)
        except Exception:
            self._drop_socket()
            raise
        self._version_name: str = reply["version"]
        self._backend_name: str = reply.get("backend", "unknown")

    # -- metadata ----------------------------------------------------------

    @property
    def version_name(self) -> str:
        return self._version_name

    @property
    def backend_name(self) -> str:
        return self._backend_name

    @property
    def in_transaction(self) -> bool:
        """Authoritative server-side transaction state (a catalog
        transition may have force-ended the transaction since the last
        statement)."""
        self._check_open("in_transaction")
        return bool(self._request({"op": "txn"}).get("txn"))

    def server_status(self) -> dict:
        """The server's ``status`` payload (clients, versions, pool)."""
        self._check_open("server_status")
        reply = self._request({"op": "status"})
        return {k: v for k, v in reply.items() if k not in ("id", "ok")}

    def stats(self) -> dict:
        """Unified observability snapshot (``repro.obs/1``), mirroring the
        in-process ``Connection.stats()``: the server's plan-cache
        counters, catalog facts, workload/tracing/metrics snapshots, and
        (on the live backend) its session pool occupancy — plus this
        driver's own client-side tracer under ``client``."""
        status = self.server_status()
        payload = {
            key: status[key]
            for key in ("schema", "plan_cache", "catalog", "workload",
                        "tracing", "metrics", "check", "pool")
            if key in status
        }
        payload["backend"] = self._backend_name
        payload["client"] = {"tracing": self.tracer.stats()}
        return payload

    def metrics_text(self) -> str:
        """The server's metrics in Prometheus text format (the ``metrics``
        op — same payload the ``--metrics-port`` HTTP endpoint serves)."""
        self._check_open("metrics_text")
        return str(self._request({"op": "metrics"}).get("text", ""))

    def check(self, script: str) -> dict:
        """Static pre-flight of a BiDEL script on the server (the
        ``check`` op): ``{"findings": [...], "summary": {...}}`` — the
        structured twin of executing ``CHECK <script>`` on a cursor."""
        self._check_open("check")
        reply = self._request({"op": "check", "script": script})
        return {
            "findings": reply.get("findings", []),
            "summary": reply.get("summary", {}),
        }

    # -- statement tracing -------------------------------------------------

    def _begin_client_trace(self, operation: str, request: dict):
        """Start the client span and inject its ids into the request frame
        so the server-side spans join this trace; ``None`` when untraced."""
        if not self.tracer.enabled:
            return None
        builder = self.tracer.begin("client.statement")
        builder.root.attributes["sql"] = operation
        request["trace"] = {
            "trace_id": builder.trace_id,
            "span_id": builder.root.span_id,
        }
        return builder

    def _finish_client_trace(self, cursor: RemoteCursor, operation: str,
                             started: float, builder, timing: dict | None, *,
                             error: bool = False) -> None:
        total = time.perf_counter() - started
        timing = timing or {}
        cursor.cache_event = timing.get("cache")
        cursor.statement_kind = timing.get("kind")
        self.tracer.note_statement(
            operation, self._version_name, total,
            trace_id=builder.trace_id if builder is not None else None,
        )
        if builder is None:
            return
        engine_ms = timing.get("engine_ms")
        if engine_ms is not None:
            network = max(total - engine_ms / 1000.0, 0.0)
            builder.add_span("network", network,
                             round_trip_ms=total * 1000.0,
                             engine_ms=engine_ms)
        for wire_span in timing.get("spans") or []:
            # The server continued our trace; its spans come back in the
            # reply envelope and rejoin the client-side trace verbatim
            # (parent ids line up because the server's root span was
            # parented on our root span id).
            builder.spans.append(
                Span(
                    name=str(wire_span.get("name", "span")),
                    trace_id=str(wire_span.get("trace_id", builder.trace_id)),
                    span_id=str(wire_span.get("span_id", "")),
                    parent_id=wire_span.get("parent_id"),
                    start=builder.root.start,
                    duration=float(wire_span.get("duration_ms") or 0.0) / 1000.0,
                    attributes=dict(wire_span.get("attributes") or {}),
                )
            )
        cursor.trace = builder.finish(
            kind=timing.get("kind"),
            cache=timing.get("cache"),
            version=self._version_name,
            error=error,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return f"<repro.server.RemoteConnection version={self._version_name!r} {state}>"

    # -- wire I/O ----------------------------------------------------------

    def _fail(self, exc: Exception) -> Exception:
        """The stream is desynchronized or dead: no later exchange can be
        trusted, so the connection closes itself before surfacing ``exc``
        (the protocol contract: framing errors drop the connection)."""
        self._closed = True
        self._drop_socket()
        return exc

    def _write_request(self, message: dict) -> int:
        request_id = next(_request_ids)
        message["id"] = request_id
        try:
            protocol.write_frame(self._wfile, message)
        except ProtocolError:
            raise  # nothing was written; the stream is still in sync
        except (OSError, ValueError) as exc:
            raise self._fail(
                ConnectionLostError(f"connection to server lost: {exc}")
            ) from exc
        return request_id

    def _read_reply(self, request_id: int) -> dict:
        try:
            reply = protocol.read_frame(self._rfile)
        except ProtocolError as exc:
            raise self._fail(exc)  # garbage frame: position unknowable
        except (OSError, ValueError) as exc:
            # Includes a request timeout: the server's late reply would
            # desynchronize every later exchange, so the connection dies.
            raise self._fail(
                ConnectionLostError(f"connection to server lost: {exc}")
            ) from exc
        if reply is None:
            raise self._fail(
                ConnectionLostError(
                    "connection to server lost: server closed the stream"
                )
            )
        if reply.get("id") != request_id:
            raise self._fail(
                ProtocolError(
                    f"response id {reply.get('id')!r} does not match "
                    f"request {request_id}"
                )
            )
        if not reply.get("ok"):
            raise protocol.exception_from(reply.get("error", {}))
        return reply

    def _request(self, message: dict) -> dict:
        with self._io_lock:
            return self._read_reply(self._write_request(message))

    # -- pipelining --------------------------------------------------------

    def pipeline(
        self, operations: Sequence[tuple[str, Sequence[Any] | None] | str]
    ) -> list[RemoteCursor]:
        """Execute a batch of statements in one round trip.

        ``operations`` is a sequence of SQL strings or ``(sql, params)``
        pairs.  All request frames are written before any response is
        read; the server executes them in order, each independently (an
        error in one statement does not skip the rest — transaction
        semantics are exactly as if the statements had been sent one by
        one).  Returns one cursor per statement; raises the *first*
        statement error after the whole batch has been drained, so the
        stream never desynchronises.
        """
        self._check_open("pipeline")
        requests = []
        for operation in operations:
            sql, params = operation if isinstance(operation, tuple) else (operation, None)
            requests.append(
                {
                    "op": "execute",
                    "sql": sql,
                    "params": _wire_params(params),
                    "page_size": self.page_size,
                }
            )
        cursors: list[RemoteCursor] = []
        first_error: Exception | None = None
        with self._io_lock:
            ids = [self._write_request(request) for request in requests]
            for request_id in ids:
                cursor = RemoteCursor(self)
                try:
                    cursor._install_reply(self._read_reply(request_id))
                except (ProtocolError, ConnectionLostError):
                    raise  # stream is unusable; no point draining
                except Exception as exc:  # noqa: BLE001 - statement-level failure
                    if first_error is None:
                        first_error = exc
                cursors.append(cursor)
        if first_error is not None:
            # The caller never sees these cursors: free their half-fetched
            # statements server-side, or they would pin open-statement
            # slots until the connection closes.
            for cursor in cursors:
                cursor._discard_statement()
            raise first_error
        return cursors

    # -- transactions ------------------------------------------------------

    def commit(self) -> None:
        self._check_open("commit")
        self._request({"op": "commit"})

    def rollback(self) -> None:
        self._check_open("rollback")
        self._request({"op": "rollback"})

    def _enter_scope(self) -> None:
        self._request({"op": "begin"})

    # -- cursors -----------------------------------------------------------

    def cursor(self) -> RemoteCursor:
        self._check_open("cursor")
        return RemoteCursor(self)

    # -- lifecycle ---------------------------------------------------------

    def _drop_socket(self) -> None:
        for f in (self._wfile, self._rfile):
            try:
                f.close()
            except OSError:
                pass
        try:
            self._sock.close()
        except OSError:
            pass

    def close(self) -> None:
        """Tell the server goodbye (it rolls back any open transaction and
        returns the session to the pool) and release the socket."""
        if self._closed:
            return
        self._closed = True
        try:
            # Fire-and-forget: waiting for the goodbye reply could block
            # forever if the server is already gone (the disconnect itself
            # triggers the same server-side teardown).
            with self._io_lock:
                self._write_request({"op": "close"})
        except Exception:
            pass  # best effort: the server tears down on disconnect anyway
        self._drop_socket()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass


def connect_remote(
    host: str,
    port: int = protocol.DEFAULT_PORT,
    version: str | None = None,
    *,
    autocommit: bool = False,
    backend: str | None = None,
    page_size: int = protocol.DEFAULT_PAGE_SIZE,
    timeout: float | None = None,
    request_timeout: float | None = None,
    trace: bool = False,
    slow_ms: float | None = None,
) -> RemoteConnection:
    """Open a DB-API connection to ``version`` on a remote repro server.

    A drop-in replacement for :func:`repro.connect` when the engine lives
    in another process: same cursor surface, same transaction semantics,
    same error classes.  ``version`` may be omitted when the server has
    exactly one active schema version; ``backend`` overrides the server's
    default execution backend for this connection; ``timeout`` bounds the
    TCP connect *and* every later request round trip (``None`` = wait
    forever).

    ``request_timeout`` sets the per-request deadline separately from the
    connect timeout: a server that accepts the connection but then hangs
    (or stalls mid-reply) fails the in-flight call with a clean
    :class:`~repro.errors.OperationalError` after this many seconds
    instead of blocking ``execute()`` forever.  The connection is
    unusable afterwards — a late reply arriving after the deadline would
    desynchronize every later exchange, so the driver drops the stream
    rather than guess.  ``None`` falls back to ``timeout``.

    ``trace=True`` records a client-side span trace for every statement
    (readable from ``cursor.trace``): the trace context rides along in
    each request frame, the server continues it engine-side, and the
    reply's timing envelope splits the round trip into client, network,
    and engine spans.  ``slow_ms`` sets the client driver's slow-query
    threshold (round-trip wall time).
    """
    try:
        sock = socket.create_connection((host, port), timeout=timeout)
    except OSError as exc:
        raise OperationalError(f"cannot reach repro server at {host}:{port}: {exc}") from exc
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    sock.settimeout(request_timeout if request_timeout is not None else timeout)
    return RemoteConnection(
        sock,
        version=version,
        autocommit=autocommit,
        backend=backend,
        page_size=page_size,
        trace=trace,
        slow_ms=slow_ms,
    )
