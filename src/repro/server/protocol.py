"""The wire protocol of the network serving layer.

A connection is a plain TCP byte stream carrying **frames**: each frame is
a 4-byte big-endian unsigned length followed by that many bytes of UTF-8
JSON — one JSON object per frame.  Requests and responses are both frames;
the server processes a connection's requests strictly in order and sends
exactly one response per request, so a client may **pipeline** (write many
request frames before reading any response) and match responses to
requests positionally or by the echoed ``id``.

Requests are objects ``{"id": <int>, "op": <str>, ...}``; responses are
``{"id": <int>, "ok": true, ...}`` on success and

.. code-block:: json

    {"id": 7, "ok": false,
     "error": {"code": "ProgrammingError", "message": "no table 'Tsak'"}}

on failure.  ``code`` is the name of an exception class from
:mod:`repro.errors` (plus :class:`ProtocolError`); the client driver
re-raises the matching class, so remote failures surface exactly like
in-process ones.  The full message catalog lives in ``docs/serving.md``.

Values (statement parameters and result rows) travel as JSON, which
restricts them to ``None``, ``bool``, ``int``, ``float``, and ``str`` —
exactly the repro type system.  Rows arrive as JSON arrays; the client
driver converts them back to the tuples PEP 249 promises.

Framing errors are unrecoverable: after a frame that is not valid JSON,
exceeds :data:`MAX_FRAME_BYTES`, or is truncated, the stream position is
unknowable, so both sides answer with a best-effort ``ProtocolError``
response and drop the connection rather than resynchronise.
"""

from __future__ import annotations

import json
import struct
from typing import Any, BinaryIO

import repro.errors as _errors
from repro.errors import OperationalError, ReproError
from repro.relational.types import DataType

PROTOCOL_VERSION = 1

#: Default TCP port of ``python -m repro.server`` (unassigned by IANA).
DEFAULT_PORT = 7512

#: Hard ceiling on a single frame; a length prefix beyond this is treated
#: as garbage (a malformed or hostile stream), not as a huge allocation.
MAX_FRAME_BYTES = 8 * 1024 * 1024

#: How many rows ride along in an ``execute`` response / ``fetch`` page
#: unless the client asks otherwise.
DEFAULT_PAGE_SIZE = 256

_HEADER = struct.Struct(">I")


class ProtocolError(ReproError):
    """The byte stream violated the framing or message rules."""


def write_frame(wfile: BinaryIO, message: dict) -> None:
    """Serialize ``message`` and write one length-prefixed frame."""
    try:
        payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"message is not JSON-serializable: {exc}") from exc
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    wfile.write(_HEADER.pack(len(payload)) + payload)
    wfile.flush()


def _read_exact(rfile: BinaryIO, n: int) -> bytes | None:
    """``n`` bytes, or ``None`` on EOF at a frame boundary; raises on a
    mid-frame EOF (the peer vanished between header and body)."""
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = rfile.read(remaining)
        if not chunk:
            if remaining == n:
                return None
            raise ProtocolError(
                f"stream truncated: expected {n} bytes, got {n - remaining}"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(rfile: BinaryIO) -> dict | None:
    """The next frame's message, or ``None`` on a clean EOF."""
    header = _read_exact(rfile, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame header announces {length} bytes "
            f"(limit {MAX_FRAME_BYTES}); treating the stream as corrupt"
        )
    body = _read_exact(rfile, length)
    if body is None:
        raise ProtocolError("stream truncated: frame header without a body")
    try:
        message = json.loads(body)
    except ValueError as exc:
        raise ProtocolError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(f"frame must carry a JSON object, got {type(message).__name__}")
    return message


# ---------------------------------------------------------------------------
# Error marshalling
# ---------------------------------------------------------------------------

#: Every error class a response may name, by its wire code.
ERROR_CODES: dict[str, type[Exception]] = {
    name: obj
    for name, obj in vars(_errors).items()
    if isinstance(obj, type) and issubclass(obj, ReproError)
}
ERROR_CODES["ProtocolError"] = ProtocolError


def error_response(request_id: Any, exc: BaseException) -> dict:
    code = type(exc).__name__
    if code not in ERROR_CODES:  # an unexpected non-repro failure
        code = "OperationalError"
    return {
        "id": request_id,
        "ok": False,
        "error": {"code": code, "message": str(exc)},
    }


def exception_from(error: dict) -> Exception:
    """Rebuild the exception a failure response describes."""
    cls = ERROR_CODES.get(str(error.get("code")), OperationalError)
    return cls(str(error.get("message", "unknown server error")))


def rows_to_wire(rows: list[tuple]) -> list[list]:
    return [list(row) for row in rows]


def rows_from_wire(rows: list) -> list[tuple]:
    return [tuple(row) for row in rows]


def description_to_wire(description) -> list[list] | None:
    """Cursor description with ``DataType`` type codes as their names."""
    if description is None:
        return None
    out = []
    for column in description:
        column = list(column)
        if len(column) > 1 and isinstance(column[1], DataType):
            column[1] = column[1].value
        out.append(column)
    return out


def description_from_wire(description) -> tuple[tuple, ...] | None:
    """Inverse of :func:`description_to_wire`: type-code names become
    :class:`DataType` members again, so both transports describe results
    identically."""
    if description is None:
        return None
    out = []
    for column in description:
        column = list(column)
        if len(column) > 1 and isinstance(column[1], str):
            try:
                column[1] = DataType(column[1])
            except ValueError:
                pass  # an opaque non-DataType type code stays a string
        out.append(tuple(column))
    return tuple(out)
