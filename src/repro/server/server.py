"""A threaded TCP server putting co-existing schema versions on the wire.

:class:`ReproServer` listens on a socket and serves the frames of
:mod:`repro.server.protocol`.  Every accepted client gets its own handler
thread and — once it has sent ``hello`` naming a schema version — its own
**server-side DB-API connection** to that version, opened through the
exact same :func:`repro.sql.connection.connect` path in-process callers
use.  On the live SQLite backend that connection leases its own pooled
:class:`~repro.backend.sqlite.SqliteSession`, so N remote clients are N
real database sessions: independent transactions, WAL snapshot reads,
parallel execution.

Results are **paged**: an ``execute`` response carries at most
``page_size`` rows plus a statement handle; the client driver pulls the
rest with ``fetch`` requests, and the server drops each page as soon as it
is sent — a slow client holds at most one statement's remaining rows, and
at most :data:`MAX_OPEN_STATEMENTS` statements, in server memory.

Catalog transitions reach connected clients through the engine's existing
machinery: statements take the read side of the catalog RWLock, BiDEL DDL
takes the write side and quiesces every pooled session.  The server
additionally registers a catalog listener so that a client bound to a
version that gets dropped receives a clean ``OperationalError`` response
on its next request (its leased session returns to the pool) instead of
hanging or seeing engine internals fail.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import TYPE_CHECKING, Any

from repro.errors import InterfaceError, OperationalError
from repro.obs import engine_snapshot
from repro.obs.http import CONTENT_TYPE as METRICS_CONTENT_TYPE
from repro.server import protocol
from repro.server.protocol import ProtocolError
from repro.sql.connection import connect as sql_connect
from repro.sql.connection import resolve_version_name

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import InVerDa

#: Per-client cap on concurrently open (partially fetched) statements.
MAX_OPEN_STATEMENTS = 32


class _ClientHandler:
    """One connected client: a socket, a handler thread, and — after
    ``hello`` — a server-side DB-API connection bound to one version."""

    def __init__(self, server: "ReproServer", sock: socket.socket, peer: Any):
        self.server = server
        self.sock = sock
        self.peer = peer
        self.rfile = sock.makefile("rb")
        self.wfile = sock.makefile("wb")
        self.connection = None  # server-side repro.sql Connection
        self.version_name: str | None = None
        self.version_dropped = False
        self._statements: dict[int, Any] = {}  # stmt_id -> open cursor
        self._stmt_counter = 0
        #: True while a request is being processed — the graceful drain
        #: waits on this before disconnecting the client.
        self.busy = False
        # Wire-encoding memo for cursor descriptions: cached plans hand
        # back the SAME description tuple for a repeated statement, so its
        # JSON encoding is computed once per plan instead of per execute.
        self._desc_memo: tuple[Any, Any] | None = None
        self.thread = threading.Thread(
            target=self._run, name=f"repro-client-{peer}", daemon=True
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        self.thread.start()

    def shutdown(self) -> None:
        """Server-initiated teardown: unblock the reader and let the
        handler thread run its normal disconnect path."""
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass

    def _run(self) -> None:
        try:
            while True:
                try:
                    request = protocol.read_frame(self.rfile)
                except ProtocolError as exc:
                    # The stream position is unknowable after a framing
                    # error: answer once, then drop the connection.
                    self._send_error(None, exc)
                    break
                except (OSError, ValueError):
                    break  # socket torn down under the reader
                if request is None:
                    break  # clean disconnect
                self.busy = True
                try:
                    if not self._handle(request):
                        break
                finally:
                    self.busy = False
        finally:
            self._teardown()

    def _teardown(self) -> None:
        # A client that vanishes mid-transaction must not leak its work:
        # closing the server-side connection rolls back any open
        # transaction and returns the leased session to the pool.
        self._statements.clear()
        if self.connection is not None:
            try:
                self.connection.close()
            except Exception:
                pass
            self.connection = None
        for f in (self.wfile, self.rfile):
            try:
                f.close()
            except OSError:
                pass
        try:
            self.sock.close()
        except OSError:
            pass
        self.server._forget_handler(self)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _send(self, message: dict) -> None:
        try:
            protocol.write_frame(self.wfile, message)
        except (OSError, ValueError):
            raise _Disconnect from None

    def _send_error(self, request_id: Any, exc: BaseException) -> None:
        try:
            protocol.write_frame(self.wfile, protocol.error_response(request_id, exc))
        except (OSError, ValueError, ProtocolError):
            pass  # the peer is gone; teardown follows

    def _handle(self, request: dict) -> bool:
        """Process one request; returns False when the connection ends."""
        request_id = request.get("id")
        op = request.get("op")
        try:
            handler = _OPS.get(op)
            if handler is None:
                raise ProtocolError(f"unknown op {op!r}")
            # Count only known ops: a hostile peer must not mint unbounded
            # label values.
            self.server._m_requests.inc(op=op)
            response = handler(self, request)
        except _Disconnect:
            return False
        except Exception as exc:  # noqa: BLE001 - every failure becomes a frame
            self._send_error(request_id, exc)
            return True
        if response is None:
            return False  # an op that ends the connection (close)
        response["id"] = request_id
        response["ok"] = True
        try:
            self._send(response)
        except _Disconnect:
            return False
        except ProtocolError as exc:
            # The RESPONSE could not be serialized; the stream is still in
            # sync (nothing was written), so answer with the failure.
            self._send_error(request_id, exc)
        return True

    def _require_connection(self, op: str):
        if self.connection is None:
            raise ProtocolError(f"{op} before hello: bind a schema version first")
        if self.version_dropped:
            # Release the leased session eagerly; the client keeps getting
            # this clean error (not a hang, not an internals traceback)
            # until it disconnects.
            try:
                self.connection.close()
            except Exception:
                pass
            raise OperationalError(
                f"schema version {self.version_name!r} was dropped on the server; "
                "close this connection and reconnect to a live version"
            )
        return self.connection

    # ------------------------------------------------------------------
    # Ops
    # ------------------------------------------------------------------

    def _op_hello(self, request: dict) -> dict:
        requested = request.get("protocol", protocol.PROTOCOL_VERSION)
        if requested != protocol.PROTOCOL_VERSION:
            raise ProtocolError(
                f"client speaks protocol {requested}, "
                f"server speaks {protocol.PROTOCOL_VERSION}"
            )
        if self.connection is not None:
            raise ProtocolError("hello: this connection is already bound")
        engine = self.server.engine
        version = resolve_version_name(engine, request.get("version"))
        backend = request.get("backend", None)
        if backend is None:
            backend = self.server.backend
        connection = sql_connect(
            engine,
            version,
            autocommit=bool(request.get("autocommit", False)),
            backend=backend,
        )
        self.connection = connection
        self.version_name = version
        return {
            "server": "repro",
            "protocol": protocol.PROTOCOL_VERSION,
            "version": version,
            "backend": connection.backend_name,
        }

    def _page_size(self, request: dict) -> int:
        size = request.get("page_size", self.server.page_size)
        if not isinstance(size, int) or size < 1:
            raise ProtocolError(f"page_size must be a positive integer, got {size!r}")
        return size

    def _describe(self, description) -> Any:
        """``description_to_wire``, memoized by tuple identity (the plan
        cache reuses one description object per cached statement plan)."""
        if description is None:
            return protocol.description_to_wire(None)
        memo = self._desc_memo
        if memo is not None and memo[0] is description:
            return memo[1]
        wire = protocol.description_to_wire(description)
        self._desc_memo = (description, wire)
        return wire

    def _result_payload(self, cursor, request: dict) -> dict:
        page = self._page_size(request)
        rows = cursor.fetchmany(page)
        payload = {
            "description": self._describe(cursor.description),
            "rowcount": cursor.rowcount,
            "lastrowid": cursor.lastrowid,
            "rows": protocol.rows_to_wire(rows),
        }
        if cursor.rows_pending:
            if len(self._statements) >= MAX_OPEN_STATEMENTS:
                raise OperationalError(
                    f"too many open statements ({MAX_OPEN_STATEMENTS}); "
                    "drain or close existing results first"
                )
            self._stmt_counter += 1
            self._statements[self._stmt_counter] = cursor
            payload["stmt_id"] = self._stmt_counter
            payload["done"] = False
        else:
            cursor.close()
            payload["done"] = True
        return payload

    def _apply_trace_context(self, connection, request: dict) -> None:
        """Continue a client-side trace: the next statement's engine spans
        join the trace/span ids that rode along in the request frame."""
        trace = request.get("trace")
        if isinstance(trace, dict) and trace.get("trace_id"):
            connection._trace_context = (
                str(trace["trace_id"]),
                str(trace["span_id"]) if trace.get("span_id") else None,
            )

    def _timing_envelope(self, cursor, started: float) -> dict:
        """Server-side timing breakdown attached to every execute reply,
        so the client can separate engine time from network time."""
        envelope = {
            "engine_ms": (time.perf_counter() - started) * 1000.0,
            "kind": cursor.statement_kind,
            "cache": cursor.cache_event,
        }
        if cursor.trace is not None:
            envelope["trace_id"] = cursor.trace.trace_id
            envelope["span_id"] = cursor.trace.root.span_id
            envelope["spans"] = [span.to_dict() for span in cursor.trace.spans]
        return envelope

    def _op_execute(self, request: dict) -> dict:
        connection = self._require_connection("execute")
        params = request.get("params") or []
        if not isinstance(params, list):
            raise ProtocolError("params must be a JSON array")
        cursor = connection.cursor()
        self._apply_trace_context(connection, request)
        started = time.perf_counter()
        cursor.execute(str(request.get("sql", "")), tuple(params))
        payload = self._result_payload(cursor, request)
        payload["timing"] = self._timing_envelope(cursor, started)
        return payload

    def _op_executemany(self, request: dict) -> dict:
        connection = self._require_connection("executemany")
        seq = request.get("params_seq") or []
        if not isinstance(seq, list) or not all(isinstance(p, list) for p in seq):
            raise ProtocolError("params_seq must be a JSON array of arrays")
        cursor = connection.cursor()
        self._apply_trace_context(connection, request)
        started = time.perf_counter()
        cursor.executemany(str(request.get("sql", "")), [tuple(p) for p in seq])
        payload = self._result_payload(cursor, request)
        payload["timing"] = self._timing_envelope(cursor, started)
        return payload

    def _op_fetch(self, request: dict) -> dict:
        self._require_connection("fetch")
        stmt_id = request.get("stmt_id")
        cursor = self._statements.get(stmt_id)
        if cursor is None:
            raise InterfaceError(
                f"fetch(): unknown statement {stmt_id!r} (already drained or closed)"
            )
        rows = cursor.fetchmany(self._page_size(request))
        done = not cursor.rows_pending
        if done:
            del self._statements[stmt_id]
            cursor.close()
        return {"rows": protocol.rows_to_wire(rows), "done": done}

    def _op_close_statement(self, request: dict) -> dict:
        cursor = self._statements.pop(request.get("stmt_id"), None)
        if cursor is not None:
            cursor.close()
        return {}

    def _op_begin(self, request: dict) -> dict:
        connection = self._require_connection("begin")
        connection._enter_scope()
        return {"txn": connection.in_transaction}

    def _op_commit(self, request: dict) -> dict:
        connection = self._require_connection("commit")
        connection.commit()
        return {"txn": connection.in_transaction}

    def _op_rollback(self, request: dict) -> dict:
        connection = self._require_connection("rollback")
        connection.rollback()
        return {"txn": connection.in_transaction}

    def _op_txn(self, request: dict) -> dict:
        connection = self._require_connection("txn")
        return {"txn": connection.in_transaction}

    def _op_ping(self, request: dict) -> dict:
        return {}

    def _op_status(self, request: dict) -> dict:
        return self.server.status()

    def _op_check(self, request: dict) -> dict:
        """Static pre-flight of a BiDEL script, structured: one dict per
        diagnostic plus the summary.  The SQL-level ``CHECK <bidel>``
        statement rides the ordinary execute op; this op serves clients
        that want the findings without a cursor."""
        from repro.check.diagnostics import record_findings
        from repro.check.preflight import preflight_script

        engine = self.server.engine
        script = str(request.get("script", ""))
        with engine.catalog_lock.read_locked():
            diagnostics = preflight_script(engine, script)
            summary = record_findings(engine, diagnostics, scope="server-check")
        return {
            "findings": [d.as_dict() for d in diagnostics],
            "summary": summary,
        }

    def _op_metrics(self, request: dict) -> dict:
        """The engine's metrics registry in Prometheus text format — the
        wire-protocol twin of the ``--metrics-port`` HTTP endpoint."""
        return {
            "content_type": METRICS_CONTENT_TYPE,
            "text": self.server.engine.metrics.render_prometheus(),
        }

    def _op_close(self, request: dict) -> None:
        try:
            self._send({"id": request.get("id"), "ok": True})
        except _Disconnect:
            pass
        return None  # ends the handler loop; teardown closes the connection


class _Disconnect(Exception):
    """Internal: the peer is unreachable; abandon the handler loop."""


_OPS = {
    "hello": _ClientHandler._op_hello,
    "execute": _ClientHandler._op_execute,
    "executemany": _ClientHandler._op_executemany,
    "fetch": _ClientHandler._op_fetch,
    "close_statement": _ClientHandler._op_close_statement,
    "begin": _ClientHandler._op_begin,
    "commit": _ClientHandler._op_commit,
    "rollback": _ClientHandler._op_rollback,
    "txn": _ClientHandler._op_txn,
    "ping": _ClientHandler._op_ping,
    "status": _ClientHandler._op_status,
    "check": _ClientHandler._op_check,
    "metrics": _ClientHandler._op_metrics,
    "close": _ClientHandler._op_close,
}


class ReproServer:
    """Serve an engine's co-existing schema versions over TCP.

    ::

        server = ReproServer(engine, backend="sqlite").start()
        ...
        conn = repro.connect_remote(*server.address, version="TasKy")
        ...
        server.close()

    ``backend`` is the default execution backend for clients that do not
    request one in ``hello`` (same values as :func:`repro.connect`);
    ``page_size`` bounds the rows per response frame.  ``port=0`` (the
    default) binds an ephemeral port — read it back from
    :attr:`address`.
    """

    def __init__(
        self,
        engine: "InVerDa",
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        backend=None,
        page_size: int = protocol.DEFAULT_PAGE_SIZE,
    ):
        self.engine = engine
        self.host = host
        self.port = port
        self.backend = backend
        self.page_size = page_size
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._handlers: list[_ClientHandler] = []
        self._lock = threading.Lock()
        self._closed = False
        self._m_requests = engine.metrics.counter(
            "repro_server_requests_total",
            "Wire-protocol requests handled, by op.",
            ("op",),
        )
        self._m_clients = engine.metrics.gauge(
            "repro_server_clients",
            "Currently connected wire-protocol clients.",
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """(host, port) actually bound — resolves ``port=0``."""
        if self._listener is None:
            raise InterfaceError("address: the server is not started")
        return self._listener.getsockname()[:2]

    def start(self) -> "ReproServer":
        if self._listener is not None:
            raise InterfaceError("start(): the server is already running")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen()
        self._listener = listener
        self.port = listener.getsockname()[1]
        self.engine.add_catalog_listener(self._on_catalog_event)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-server-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def _accept_loop(self) -> None:
        while True:
            try:
                sock, peer = self._listener.accept()
            except OSError:
                return  # listener closed: shutting down
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            handler = _ClientHandler(self, sock, peer)
            with self._lock:
                if self._closed:
                    sock.close()
                    return
                self._handlers.append(handler)
                self._m_clients.set(len(self._handlers))
            handler.start()

    def close(self) -> None:
        """Stop accepting, disconnect every client (rolling back their
        open transactions, returning sessions to the pool), and release
        the listening socket."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            handlers = list(self._handlers)
        self.engine.remove_catalog_listener(self._on_catalog_event)
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        for handler in handlers:
            handler.shutdown()
        for handler in handlers:
            handler.thread.join(timeout=5.0)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)

    def drain(self, timeout: float = 10.0) -> None:
        """Graceful shutdown: stop accepting new connections immediately,
        give every in-flight request up to ``timeout`` seconds to finish,
        then disconnect the remaining clients exactly like :meth:`close`
        (server-side connections roll back any open transaction and
        return their leased sessions to the pool).

        A request still running at the deadline is cut off mid-flight —
        the deadline exists precisely so a wedged statement cannot hold
        the shutdown hostage."""
        if self._listener is not None:
            # New connects are refused from here on; connected clients
            # get their in-flight replies before the sockets drop.
            try:
                self._listener.close()
            except OSError:
                pass
        deadline = time.monotonic() + timeout
        with self._lock:
            handlers = list(self._handlers)
        for handler in handlers:
            while handler.busy and time.monotonic() < deadline:
                time.sleep(0.01)
        self.close()

    def __enter__(self) -> "ReproServer":
        if self._listener is None:
            self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def _forget_handler(self, handler: _ClientHandler) -> None:
        with self._lock:
            if handler in self._handlers:
                self._handlers.remove(handler)
            self._m_clients.set(len(self._handlers))

    # ------------------------------------------------------------------
    # Catalog transitions
    # ------------------------------------------------------------------

    def _on_catalog_event(self, event: str, **info) -> None:
        """Engine hook (runs under the catalog write lock): flag handlers
        whose bound version no longer exists, so their next request gets
        the clean dropped-version error."""
        if event != "drop":
            return
        dropped = info.get("version")
        with self._lock:
            for handler in self._handlers:
                if handler.version_name == dropped:
                    handler.version_dropped = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def status(self) -> dict:
        """The unified observability snapshot (``repro.obs/1``) plus the
        server-specific facts (protocol, client count, served versions)."""
        with self._lock:
            clients = len(self._handlers)
        payload = engine_snapshot(self.engine, backend=self.engine.live_backend)
        payload.update(
            {
                "protocol": protocol.PROTOCOL_VERSION,
                "clients": clients,
                "versions": self.engine.version_names(),
                "page_size": self.page_size,
            }
        )
        return payload


def serve(
    engine: "InVerDa",
    host: str = "127.0.0.1",
    port: int = protocol.DEFAULT_PORT,
    **kwargs,
) -> ReproServer:
    """Start (and return) a :class:`ReproServer` for ``engine``."""
    return ReproServer(engine, host, port, **kwargs).start()
