"""``python -m repro.server`` — stand up a repro server from a BiDEL script.

::

    python -m repro.server --script schema.bidel --database state.db

builds an engine, executes the script (every ``CREATE SCHEMA VERSION`` /
``MATERIALIZE`` in it), attaches the live SQLite backend when
``--database`` is given, and serves until interrupted.  Without
``--script`` it serves the built-in TasKy demo catalog (three co-existing
versions), which is handy for trying the client driver::

    python -m repro.server --demo --port 7512
    python - <<'EOF'
    import repro
    conn = repro.connect_remote("127.0.0.1", 7512, "TasKy")
    print(conn.execute("SELECT * FROM Task").fetchall())
    EOF

Because the catalog is persisted *inside* the database file, a killed
server restarts into the same catalog without the original script::

    python -m repro.server --db state.db

recovers every schema version, the materialization choice, and the data
from ``state.db`` and serves them again.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading
import time

from repro.backend.sqlite import LiveSqliteBackend
from repro.core.engine import InVerDa
from repro.server.protocol import DEFAULT_PORT
from repro.server.server import ReproServer


def build_engine(args) -> InVerDa:
    if args.script:
        with open(args.script, encoding="utf-8") as f:
            script = f.read()
        engine = InVerDa()
        engine.execute(script)
        return engine
    from repro.workloads.tasky import build_tasky

    return build_tasky(args.demo_rows).engine


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Serve co-existing schema versions over TCP.",
    )
    parser.add_argument("--script", help="BiDEL script building the schema catalog")
    parser.add_argument(
        "--demo", action="store_true", help="serve the TasKy demo catalog instead"
    )
    parser.add_argument(
        "--demo-rows", type=int, default=100, help="rows in the demo data set"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT)
    parser.add_argument(
        "--database",
        "--db",
        help="SQLite file for the live backend (omitted: in-memory engine); "
        "a file carrying a persisted catalog is recovered and served as-is",
    )
    parser.add_argument("--pool-size", type=int, default=8)
    parser.add_argument("--max-sessions", type=int, default=None)
    parser.add_argument("--busy-timeout", type=float, default=5.0)
    parser.add_argument("--page-size", type=int, default=256)
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        help="serve the metrics registry over HTTP on this port "
        "(GET /metrics, Prometheus text format; 0 picks an ephemeral port)",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="record a span trace for every statement (ring-buffered, "
        "readable via the status op)",
    )
    parser.add_argument(
        "--slow-ms",
        type=float,
        default=None,
        help="log statements slower than this many milliseconds to the "
        "slow-query ring buffer",
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        help="seconds a graceful shutdown (SIGTERM/SIGINT) waits for "
        "in-flight requests before cutting the remaining clients off",
    )
    args = parser.parse_args(argv)
    from repro.persist.recovery import database_has_catalog, open_database

    recovering = (
        not args.script
        and not args.demo
        and args.database is not None
        and database_has_catalog(args.database)
    )
    if not args.script and not args.demo and not recovering:
        parser.error(
            "one of --script or --demo is required "
            "(or --database pointing at an existing repro database)"
        )

    if recovering:
        engine = open_database(
            args.database,
            create=False,
            pool_size=args.pool_size,
            max_sessions=args.max_sessions,
            busy_timeout=args.busy_timeout,
        )
        backend = engine.live_backend
    else:
        engine = build_engine(args)
        backend = None
        if args.database:
            backend = LiveSqliteBackend.attach(
                engine,
                database=args.database,
                pool_size=args.pool_size,
                max_sessions=args.max_sessions,
                busy_timeout=args.busy_timeout,
            )
    engine.tracer.enabled = args.trace
    if args.slow_ms is not None:
        engine.tracer.slow_ms = args.slow_ms
    metrics_http = None
    if args.metrics_port is not None:
        from repro.obs.http import MetricsHTTPServer

        metrics_http = MetricsHTTPServer(
            engine.metrics, host=args.host, port=args.metrics_port
        ).start()
    server = ReproServer(
        engine, args.host, args.port, backend=backend, page_size=args.page_size
    ).start()
    host, port = server.address
    print(f"repro server listening on {host}:{port}", flush=True)
    if metrics_http is not None:
        mhost, mport = metrics_http.address
        print(f"metrics endpoint on http://{mhost}:{mport}/metrics", flush=True)
    print(f"serving versions: {', '.join(engine.version_names())}", flush=True)
    if backend is not None and backend.store is not None:
        verb = "recovered" if backend.recovered else "persisting"
        print(
            f"catalog {verb}: generation {engine.catalog_generation}, "
            f"fingerprint {engine.catalog_fingerprint()[:12]}",
            flush=True,
        )
    # Graceful drain: SIGTERM (and SIGINT / Ctrl-C) stops accepting,
    # finishes in-flight requests within --drain-timeout, returns every
    # leased session to the pool, and exits 0 — so process managers can
    # roll the server without killing client requests mid-reply.
    stop = threading.Event()

    def _request_stop(signum, frame):
        stop.set()

    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, _request_stop)
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass
    try:
        while not stop.wait(timeout=1.0):
            pass
        print("draining: no new connections, finishing in-flight requests",
              flush=True)
    except KeyboardInterrupt:
        pass  # SIGINT before the handler was installed: same drain path
    finally:
        server.drain(timeout=args.drain_timeout)
        if metrics_http is not None:
            metrics_http.close()
        if backend is not None:
            backend.close()
        print("shutdown complete", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
