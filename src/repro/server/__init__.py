"""Network serving layer: co-existing schema versions over TCP.

- :class:`ReproServer` / :func:`serve` — a threaded TCP server leasing
  every client its own database session;
- :func:`connect_remote` — the client driver, a drop-in replacement for
  :func:`repro.connect` with the same PEP-249 surface;
- :mod:`repro.server.protocol` — the length-prefixed JSON wire protocol.

Quickstart (see ``docs/serving.md`` for the full story)::

    server = repro.serve(engine, port=0, backend="sqlite")
    conn = repro.connect_remote(*server.address, version="TasKy")
    conn.execute("SELECT * FROM Task").fetchall()
"""

from repro.server.client import ConnectionLostError, RemoteConnection, RemoteCursor, connect_remote
from repro.server.protocol import DEFAULT_PORT, PROTOCOL_VERSION, ProtocolError
from repro.server.server import ReproServer, serve

__all__ = [
    "ReproServer",
    "serve",
    "connect_remote",
    "RemoteConnection",
    "RemoteCursor",
    "ConnectionLostError",
    "ProtocolError",
    "DEFAULT_PORT",
    "PROTOCOL_VERSION",
]
