"""The continuous-evolution soak harness.

One live, SQLite-backed engine serves a sustained multi-client mixed
read/write workload (the orders scenario, clients pinned to skewed
schema versions) while a seeded SMO stream keeps evolving the catalog
underneath them.  A second, in-memory engine acts as the *differential
oracle*: every acknowledged write and every executed DDL script is
appended to an ordered operation log, and at sync barriers the log is
replayed onto the oracle and the two visible states must match under
canonical comparison.

Why replaying a log is sound here: each client only writes rows it owns
(disjoint ``order_no`` strides / ``sku`` ranges), so committed writes
*commute* — any serialization of them between two DDL boundaries yields
the same logical state.  The log lock makes DDL a strict boundary: a
write acknowledged before a drop can never be logged after it.

Lock ordering is ``stream lock -> engine catalog lock``, everywhere:

- clients hold the stream lock's *read* side around each operation
  (execute + log append);
- the SMO thread and the barrier hold the *write* side, so DDL and
  differential checks see a quiesced log.
"""

from __future__ import annotations

import os
import random
import threading
import time
import traceback
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.backend.compare import assert_states_match, visible_state
from repro.backend.sqlite import LiveSqliteBackend
from repro.check import error_count, preflight_script, verify_delta_code
from repro.core.engine import RWLock
from repro.errors import OperationalError
from repro.relational.types import DataType
from repro.soak.probes import FinalState, Probe, make_probes
from repro.soak.stream import SmoStream
from repro.sql.connection import connect
from repro.testing.faults import InjectedFault, RandomFaultInjector
from repro.workloads.orders import (
    PROTECTED_COLUMNS,
    build_orders,
    order_no_for,
    tenant_name,
)


@dataclass
class SoakConfig:
    seed: int = 42
    duration: float = 10.0
    clients: int = 4
    smo_rate: float = 0.5  # expected SMO stream events per second
    transport: str = "inproc"  # "inproc" | "tcp"
    barrier_interval: float = 5.0
    probes: list[str] | None = None  # None = all registered probes
    p95_budget_ms: float = 2500.0
    orders_per_tenant: int = 20
    inventory_per_tenant: int = 4
    initial_versions: int = 3
    upgrade_rate: float = 0.03  # per-op chance a client re-pins to a new version
    version_skew: float = 2.0
    fault_rates: dict[str, float] = field(default_factory=dict)
    database: str | None = None  # None -> a temporary file (WAL mode)
    max_versions: int = 9

    def __post_init__(self) -> None:
        if self.transport not in ("inproc", "tcp"):
            raise ValueError(f"transport must be 'inproc' or 'tcp', not {self.transport!r}")
        if self.clients < 1:
            raise ValueError("need at least one client")

    def repro_command(self) -> str:
        """The exact one-command replay for this configuration."""
        parts = [
            "python -m repro.soak",
            f"--seed {self.seed}",
            f"--duration {self.duration:g}",
            f"--clients {self.clients}",
            f"--smo-rate {self.smo_rate:g}",
            f"--transport {self.transport}",
        ]
        if self.barrier_interval != 5.0:
            parts.append(f"--barrier-interval {self.barrier_interval:g}")
        if self.fault_rates:
            spec = ",".join(f"{point}={rate:g}" for point, rate in sorted(self.fault_rates.items()))
            parts.append(f"--inject-fault '{spec}'")
        return " ".join(parts)


@dataclass
class LogEntry:
    kind: str  # "sql" | "ddl"
    version: str | None
    sql: str
    params: tuple


@dataclass
class _TableInfo:
    name: str
    columns: tuple[str, ...]
    updatable: tuple[str, ...]  # integer-valued, non-identity columns


@dataclass
class _VersionSchema:
    """A client's cached view of its pinned version (immutable once built:
    schema versions never mutate, they only get dropped)."""

    orders: list[_TableInfo]
    inventory: list[_TableInfo]

    @classmethod
    def of(cls, version) -> "_VersionSchema":
        orders, inventory = [], []
        for name in sorted(version.tables):
            schema = version.tables[name].schema
            columns = schema.column_names
            updatable = tuple(
                c.name for c in schema.columns
                if c.dtype is not DataType.TEXT and c.name not in PROTECTED_COLUMNS
            )
            info = _TableInfo(name, columns, updatable)
            if "order_no" in columns:
                orders.append(info)
            elif "sku" in columns:
                inventory.append(info)
        return cls(orders, inventory)


class _Client(threading.Thread):
    """One simulated app server: pinned to a schema version, running a
    mixed read/write stream over rows it owns."""

    def __init__(self, harness: "SoakHarness", index: int, pin: str):
        super().__init__(name=f"soak-client-{index}", daemon=True)
        self.h = harness
        self.index = index
        self.tenant = tenant_name(index)
        self.rng = random.Random(harness.config.seed * 7919 + index)
        self.next_serial = harness.config.orders_per_tenant
        self.live_orders = [
            order_no_for(index, serial)
            for serial in range(harness.config.orders_per_tenant)
        ]
        self.skus = [
            f"{self.tenant}-sku{serial}"
            for serial in range(harness.config.inventory_per_tenant)
        ]
        self.pin = pin
        self.conn = None
        self.schema: _VersionSchema | None = None
        self.ops = 0
        self.retries = 0
        self.repins = 0
        self._want_repin = False

    # -- lifecycle ----------------------------------------------------------

    def run(self) -> None:
        try:
            self._pin(self.pin)
            while not self.h.stop_event.is_set():
                if self._want_repin:
                    self._repin()
                    if self.h.stop_event.is_set():
                        break
                self._one_op()
        except Exception:
            self.h.record_crash(self.index, traceback.format_exc())
            self.h.stop_event.set()
        finally:
            self._close_conn()

    def _close_conn(self) -> None:
        if self.conn is not None:
            try:
                self.conn.close()
            except Exception:
                pass
            self.conn = None

    def _pin(self, version: str) -> None:
        with self.h.stream_lock.read_locked():
            sv = self.h.live.genealogy.schema_version(version)
            schema = _VersionSchema.of(sv)
        self._close_conn()
        self.conn = self.h.open_conn(version)
        self.schema = schema
        self.pin = version
        self._want_repin = False

    def _repin(self) -> None:
        """Re-pin to a surviving version.  Weighted toward *newer*
        versions: a session only re-pins when its app server redeploys
        (or its version was dropped), and redeployments move forward —
        which also keeps some clients sitting on young leaf versions the
        SMO stream may drop out from under them."""
        for _ in range(5):
            with self.h.stream_lock.read_locked():
                actives = self.h.live.version_names()
                if not actives:
                    return
                weights = [
                    float(rank + 1) ** self.h.config.version_skew
                    for rank in range(len(actives))
                ]
                target = self.rng.choices(actives, weights=weights, k=1)[0]
            try:
                self._pin(target)
                self.repins += 1
                return
            except Exception:
                continue  # raced another drop; try again
        raise RuntimeError(f"client {self.index} could not re-pin after 5 attempts")

    # -- the op mix ---------------------------------------------------------

    def _one_op(self) -> None:
        if self.rng.random() < self.h.config.upgrade_rate:
            self._want_repin = True
            return
        draw = self.rng.random()
        if draw < 0.50:
            op = "read"
        elif draw < 0.75:
            op = "insert"
        elif draw < 0.90:
            op = "update"
        else:
            op = "delete"
        with self.h.stream_lock.read_locked():
            start = time.monotonic()
            try:
                getattr(self, "_op_" + op)()
            except Exception as exc:  # noqa: BLE001 - classified below
                self._classify_error(exc)
                return
            self.ops += 1
            self.h.emit_op(start, time.monotonic(), op)

    def _classify_error(self, exc: Exception) -> None:
        """Inside the stream read lock: the catalog cannot change under us."""
        if self.pin not in self.h.live.version_names():
            # Our version was dropped mid-session.  The documented
            # contract: the client sees a clean OperationalError.
            clean = isinstance(exc, OperationalError)
            self.h.emit_version_lost(self.pin, exc, clean)
            self._want_repin = True
            return
        if isinstance(exc, OperationalError) and "locked" in str(exc).lower():
            self.retries += 1  # transient sqlite contention; just go again
            return
        raise exc

    def _exec(self, sql: str, params: tuple = (), *, log: bool = False):
        cursor = self.conn.execute(sql, params)
        if log:
            self.h.log_sql(self.pin, sql, params)
        return cursor

    def _op_read(self) -> None:
        tables = self.schema.orders + self.schema.inventory
        info = self.rng.choice(tables)
        if "order_no" in info.columns:
            key = self.rng.choice(self.live_orders) if self.live_orders else 0
            self._exec(f"SELECT * FROM {info.name} WHERE order_no = ?", (key,))
        else:
            self._exec(f"SELECT * FROM {info.name} WHERE sku = ?", (self.rng.choice(self.skus),))

    def _op_insert(self) -> None:
        if not self.schema.orders:
            return
        info = self.rng.choice(self.schema.orders)
        order_no = order_no_for(self.index, self.next_serial)
        values = []
        for column in info.columns:
            if column == "tenant":
                values.append(self.tenant)
            elif column == "order_no":
                values.append(order_no)
            else:
                values.append(self.rng.randint(0, 9))
        placeholders = ", ".join("?" for _ in info.columns)
        self._exec(
            f"INSERT INTO {info.name}({', '.join(info.columns)}) VALUES ({placeholders})",
            tuple(values),
            log=True,
        )
        self.next_serial += 1
        self.live_orders.append(order_no)
        self.h.emit_ack(self.pin, info.name, order_no)

    def _op_update(self) -> None:
        if self.rng.random() < 0.25 and self.schema.inventory:
            value = self.rng.randint(0, 50)
            sku = self.rng.choice(self.skus)
            for info in self._shuffled(self.schema.inventory):
                if not info.updatable:
                    continue
                column = self.rng.choice(info.updatable)
                cursor = self._exec(
                    f"UPDATE {info.name} SET {column} = ? WHERE sku = ?",
                    (value, sku),
                    log=True,
                )
                if cursor.rowcount:
                    return
            return
        if not self.live_orders:
            return
        order_no = self.rng.choice(self.live_orders)
        value = self.rng.randint(0, 9)
        for info in self._shuffled(self.schema.orders):
            if not info.updatable:
                continue
            column = self.rng.choice(info.updatable)
            cursor = self._exec(
                f"UPDATE {info.name} SET {column} = ? WHERE order_no = ?",
                (value, order_no),
                log=True,
            )
            if cursor.rowcount:
                return

    def _op_delete(self) -> None:
        if len(self.live_orders) <= self.h.config.orders_per_tenant // 2:
            return  # keep a working set; inserts will grow it back
        order_no = self.rng.choice(self.live_orders)
        for info in self._shuffled(self.schema.orders):
            cursor = self._exec(
                f"DELETE FROM {info.name} WHERE order_no = ?", (order_no,), log=True
            )
            if cursor.rowcount:
                self.live_orders.remove(order_no)
                self.h.emit_delete(self.pin, order_no)
                return

    def _shuffled(self, infos: list[_TableInfo]) -> list[_TableInfo]:
        infos = list(infos)
        self.rng.shuffle(infos)
        return infos


class _SmoThread(threading.Thread):
    """Fires preflight-gated SMO scripts at an exponential cadence."""

    def __init__(self, harness: "SoakHarness"):
        super().__init__(name="soak-smo-stream", daemon=True)
        self.h = harness
        self.rng = random.Random(harness.config.seed + 104729)
        self.stream = SmoStream(
            harness.live,
            harness.config.seed + 7,
            max_versions=harness.config.max_versions,
        )

    def run(self) -> None:
        rate = self.h.config.smo_rate
        if rate <= 0:
            return
        try:
            while not self.h.stop_event.is_set():
                delay = min(max(self.rng.expovariate(rate), 0.05), 10.0)
                if self.h.stop_event.wait(delay):
                    return
                self._fire_one()
        except Exception:
            self.h.record_crash(-1, traceback.format_exc())
            self.h.stop_event.set()

    def _fire_one(self) -> None:
        requested = time.monotonic()
        with self.h.stream_lock.write_locked():
            generated = self.stream.next_script()
            if generated is None:
                return
            kind, script = generated
            event = {
                "seq": len(self.h.smo_log),
                "t": round(time.monotonic() - self.h.t0, 3),
                "kind": kind,
                "script": script.strip(),
            }
            diagnostics = preflight_script(self.h.live, script)
            if error_count(diagnostics):
                event["outcome"] = "preflight_rejected"
                event["diagnostics"] = [str(d) for d in diagnostics]
                self.h.smo_log.append(event)
                return
            if kind != "materialize-online":
                if not self._execute(event, script):
                    return
                self.h.oplog.append(LogEntry("ddl", None, script, ()))
                self.h.ddl_windows.append((requested, time.monotonic()))
                return
        # An online move deliberately runs OUTSIDE the stream write lock:
        # the whole point is that client traffic keeps flowing through
        # the backfill, and the availability probe measures exactly that
        # window.  Ordering is handled by the engine's cutover hook
        # (``_online_cutover_barrier``): the oplog DDL entry is appended
        # inside the cutover's quiesced window, because MATERIALIZE
        # freezes derived-column state and so its position relative to
        # concurrent client writes is semantically significant.  No
        # other DDL can start meanwhile (this thread is the only DDL
        # source, and the engine fences catalog transitions during a
        # backfill anyway).
        self.h._online_script = script
        started = time.monotonic()
        try:
            ok = self._execute(event, script)
        finally:
            self.h.backfill_windows.append((started, time.monotonic()))
        if not ok:
            self.h._online_script = None
            return
        if self.h._online_script is not None:
            # The engine fell back to an offline move (no online-capable
            # backend): the cutover hook never ran, so log the entry here
            # under the stream write lock, as for any other DDL.
            with self.h.stream_lock.write_locked():
                self.h.oplog.append(LogEntry("ddl", None, script, ()))
            self.h._online_script = None
        self.h.ddl_windows.append((requested, time.monotonic()))

    def _execute(self, event: dict, script: str) -> bool:
        """Run one stream script, classifying the outcome into ``event``;
        returns True iff it executed (and so belongs in the oplog)."""
        try:
            self.h.live.execute(script)
        except InjectedFault as fault:
            event["outcome"] = "fault"
            event["fault"] = {"point": fault.point, "visit": fault.visit}
            self.h.smo_log.append(event)
            self.h.fault = {
                "point": fault.point,
                "visit": fault.visit,
                "script": script.strip(),
                "smo_seq": event["seq"],
            }
            self.h.stop_event.set()
            return False
        except Exception as exc:  # noqa: BLE001 - recorded, run continues
            event["outcome"] = "engine_rejected"
            event["error"] = f"{type(exc).__name__}: {exc}"
            self.h.smo_log.append(event)
            return False
        event["outcome"] = "executed"
        self.h.smo_log.append(event)
        return True


class _GenerationSampler(threading.Thread):
    def __init__(self, harness: "SoakHarness", interval: float = 0.02):
        super().__init__(name="soak-generation-sampler", daemon=True)
        self.h = harness
        self.interval = interval

    def run(self) -> None:
        gauge = self.h.live.metrics.get("repro_catalog_generation")
        while not self.h.stop_event.wait(self.interval):
            self.h.emit_generation(self.h.live.catalog_generation, gauge.value())


class SoakHarness:
    """Builds the dual system, runs clients + SMO stream + barriers, and
    renders the JSON report.  One instance per run."""

    def __init__(self, config: SoakConfig):
        self.config = config
        self.stop_event = threading.Event()
        self.stream_lock = RWLock()
        self.oplog: list[LogEntry] = []
        self.smo_log: list[dict] = []
        self.ddl_windows: list[tuple[float, float]] = []
        self.barrier_windows: list[tuple[float, float]] = []
        self.backfill_windows: list[tuple[float, float]] = []
        self.crashes: list[tuple[int, str]] = []
        self.fault: dict | None = None
        self.diverged = False
        self._online_script: str | None = None
        self.probes: list[Probe] = make_probes(config.probes)
        self._probe_lock = threading.Lock()
        self._replayed = 0
        self._oracle_conns: dict[str, object] = {}
        self._barrier_index = 0
        self.t0 = time.monotonic()
        self.workload_elapsed = 0.0
        self.live = None
        self.mem = None
        self.backend: LiveSqliteBackend | None = None
        self.injector: RandomFaultInjector | None = None
        self.server = None
        self._tmpdir = None

    # -- probe event fan-out (called from worker/sampler threads) -----------

    def _dispatch(self, method: str, *args) -> None:
        with self._probe_lock:
            for probe in self.probes:
                getattr(probe, method)(*args)

    def emit_ack(self, version: str, table: str, order_no: int) -> None:
        self._dispatch("on_ack", version, table, order_no)

    def emit_delete(self, version: str, order_no: int) -> None:
        self._dispatch("on_delete", version, order_no)

    def emit_version_lost(self, version: str, exc: BaseException, clean: bool) -> None:
        self._dispatch("on_version_lost", version, exc, clean)

    def emit_generation(self, engine_value: int, gauge_value: float) -> None:
        self._dispatch("on_generation_sample", engine_value, gauge_value)

    def emit_op(self, start: float, end: float, kind: str) -> None:
        self._dispatch("on_op", start, end, kind)

    def log_sql(self, version: str, sql: str, params: tuple) -> None:
        self.oplog.append(LogEntry("sql", version, sql, params))

    @contextmanager
    def _online_cutover_barrier(self):
        """Entered by the live engine around an online move's cutover.

        MATERIALIZE is *not* oplog-order-neutral: it freezes derived
        ``ADD COLUMN`` payloads into stored aux state, so an op that
        executes after the cutover but lands in the oplog before the
        move's DDL entry replays against pre-freeze semantics and
        diverges.  Taking the stream write lock here quiesces clients
        (each op holds the read side through execute *and* log append),
        so the cutover and its oplog entry sit at the move's true
        serialization point.  The backfill itself still runs outside
        any stream lock — this window is the same brief write-lock
        cutover every live client experiences.
        """
        with self.stream_lock.write_locked():
            yield
            script = self._online_script
            if script is not None:
                self.oplog.append(LogEntry("ddl", None, script, ()))
                self._online_script = None

    def record_crash(self, index: int, text: str) -> None:
        self.crashes.append((index, text))

    # -- transports ----------------------------------------------------------

    def open_conn(self, version: str):
        if self.config.transport == "tcp":
            from repro.server.client import connect_remote

            host, port = self.server.address
            return connect_remote(host, port, version, autocommit=True, timeout=30.0)
        return connect(self.live, version, autocommit=True, backend=self.backend)

    # -- the differential barrier -------------------------------------------

    def _replay(self) -> None:
        """Apply unreplayed log entries, in order, to the memory oracle."""
        while self._replayed < len(self.oplog):
            entry = self.oplog[self._replayed]
            if entry.kind == "ddl":
                for conn in self._oracle_conns.values():
                    conn.close()
                self._oracle_conns.clear()
                self.mem.execute(entry.sql)
            else:
                conn = self._oracle_conns.get(entry.version)
                if conn is None:
                    conn = connect(self.mem, entry.version, autocommit=True)
                    self._oracle_conns[entry.version] = conn
                conn.execute(entry.sql, entry.params)
            self._replayed += 1

    def barrier(self) -> bool:
        """Quiesce writers, replay the log, compare canonical states."""
        started = time.monotonic()
        with self.stream_lock.write_locked():
            index = self._barrier_index
            self._barrier_index += 1
            ok, detail, full_detail = True, "", ""
            try:
                self._replay()
                mem_state = visible_state(self.mem)
                live_state = visible_state(self.live, self.backend)
                assert_states_match(self.mem, mem_state, self.live, live_state)
            except AssertionError as exc:
                full_detail = str(exc)
                ok, detail = False, full_detail[:4000]
            except Exception as exc:  # noqa: BLE001 - a broken replay is a divergence
                ok, detail = False, f"{type(exc).__name__}: {exc}"
                full_detail = detail
            self._dispatch("on_barrier", index, ok, detail)
            if not ok:
                self.diverged = True
                self.stop_event.set()
                self._dump_oplog(index, full_detail)
        self.barrier_windows.append((started, time.monotonic()))
        return ok

    def _dump_oplog(self, barrier_index: int, detail: str) -> None:
        """On divergence, dump the full operation log (the oracle's exact
        input) when ``REPRO_SOAK_OPLOG_DUMP`` names a file — the one
        artifact a differential failure cannot be debugged without."""
        path = os.environ.get("REPRO_SOAK_OPLOG_DUMP")
        if not path:
            return
        try:
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(f"# barrier #{barrier_index} diverged\n# {detail}\n")
                for i, entry in enumerate(self.oplog):
                    fh.write(
                        f"{i}\t{entry.kind}\t{entry.version}\t"
                        f"{entry.sql!r}\t{entry.params!r}\n"
                    )
        except OSError:
            pass

    # -- run -----------------------------------------------------------------

    def _build(self) -> None:
        cfg = self.config
        if cfg.database is None:
            import tempfile

            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-soak-")
            database = f"{self._tmpdir.name}/soak.db"
        else:
            database = cfg.database
        build = dict(
            tenants=cfg.clients,
            orders_per_tenant=cfg.orders_per_tenant,
            inventory_per_tenant=cfg.inventory_per_tenant,
            seed=cfg.seed,
            versions=cfg.initial_versions,
        )
        self.mem = build_orders(**build).engine
        self.live = build_orders(**build).engine
        self.backend = LiveSqliteBackend.attach(self.live, database=database)
        self.live.online_cutover_hook = self._online_cutover_barrier
        if cfg.fault_rates:
            self.injector = RandomFaultInjector(cfg.fault_rates, seed=cfg.seed)
            self.backend.fault_injector = self.injector
        if cfg.transport == "tcp":
            from repro.server.server import ReproServer

            self.server = ReproServer(self.live, port=0, backend=self.backend)
            self.server.start()

    def run(self) -> dict:
        cfg = self.config
        self._build()
        self.t0 = time.monotonic()
        from repro.workloads.orders import assign_version_pins

        pins = assign_version_pins(
            self.live.version_names(), cfg.clients, seed=cfg.seed, skew=cfg.version_skew
        )
        clients = [_Client(self, index, pin) for index, pin in enumerate(pins)]
        smo = _SmoThread(self)
        sampler = _GenerationSampler(self)
        differential = any(p.name == "differential" for p in self.probes)
        try:
            for client in clients:
                client.start()
            smo.start()
            sampler.start()
            deadline = self.t0 + cfg.duration
            while not self.stop_event.is_set():
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                if self.stop_event.wait(min(cfg.barrier_interval, remaining)):
                    break
                if time.monotonic() >= deadline:
                    break
                if differential and self.fault is None:
                    self.barrier()
            self.stop_event.set()
            for thread in (*clients, smo, sampler):
                thread.join(timeout=30.0)
            self.workload_elapsed = time.monotonic() - self.t0
            hung = [t.name for t in (*clients, smo, sampler) if t.is_alive()]
            if hung:
                self.record_crash(-2, f"threads did not stop: {hung}")
            # Final barrier on the fully quiesced system (skipped after an
            # injected fault: the live engine is mid-transition by design).
            if differential and self.fault is None and not hung:
                self.barrier()
            return self._report(clients)
        finally:
            self._teardown(clients)

    def _teardown(self, clients: list[_Client]) -> None:
        self.stop_event.set()
        for conn in self._oracle_conns.values():
            try:
                conn.close()
            except Exception:
                pass
        self._oracle_conns.clear()
        for client in clients:
            client._close_conn()
        if self.server is not None:
            try:
                self.server.close()
            except Exception:
                pass
        if self.backend is not None:
            try:
                self.backend.close()
            except Exception:
                pass
        if self._tmpdir is not None:
            self._tmpdir.cleanup()

    # -- reporting ------------------------------------------------------------

    def _final_state(self) -> FinalState:
        live_state = visible_state(self.live, self.backend)
        rows_by_version: dict[str, set[int]] = {}
        for (version, table), rows in live_state.items():
            schema = self.live.genealogy.schema_version(version).tables[table].schema
            if "order_no" not in schema.column_names:
                continue
            at = schema.index_of("order_no")
            rows_by_version.setdefault(version, set()).update(row[at] for row in rows)
        gauge = self.live.metrics.get("repro_catalog_generation")
        return FinalState(
            order_rows_by_version=rows_by_version,
            active_versions=self.live.version_names(),
            engine_generation=self.live.catalog_generation,
            gauge_generation=gauge.value(),
            disk_generation=self.backend.on_disk_generation(),
            ddl_windows=list(self.ddl_windows),
            barrier_windows=list(self.barrier_windows),
            backfill_windows=list(self.backfill_windows),
            p95_budget_ms=self.config.p95_budget_ms,
            delta_findings=verify_delta_code(self.live, flatten=self.backend.flatten),
        )

    def _report(self, clients: list[_Client]) -> dict:
        elapsed = max(self.workload_elapsed, 1e-9)
        executed = [e for e in self.smo_log if e["outcome"] == "executed"]
        probe_reports = []
        if self.fault is None and not self.crashes:
            final = self._final_state()
            probe_reports = [probe.finalize(final) for probe in self.probes]
        ok = (
            self.fault is None
            and not self.crashes
            and not self.diverged
            and all(report.ok for report in probe_reports)
        )
        report = {
            "ok": ok,
            "config": {
                "seed": self.config.seed,
                "duration": self.config.duration,
                "clients": self.config.clients,
                "smo_rate": self.config.smo_rate,
                "transport": self.config.transport,
                "barrier_interval": self.config.barrier_interval,
                "p95_budget_ms": self.config.p95_budget_ms,
                "fault_rates": dict(self.config.fault_rates),
            },
            "repro_command": self.config.repro_command(),
            "stats": {
                "elapsed_s": round(elapsed, 3),
                "ops": sum(c.ops for c in clients),
                "ops_per_sec": round(sum(c.ops for c in clients) / elapsed, 1),
                "retries": sum(c.retries for c in clients),
                "repins": sum(c.repins for c in clients),
                "logged_writes": sum(1 for e in self.oplog if e.kind == "sql"),
                "smo_events": len(self.smo_log),
                "smo_executed": len(executed),
                "barriers": self._barrier_index,
                "ddl_windows": len(self.ddl_windows),
                "backfill_windows": len(self.backfill_windows),
                "backfill_seconds": round(
                    sum(end - start for start, end in self.backfill_windows), 3
                ),
                "final_versions": self.live.version_names(),
                "final_generation": self.live.catalog_generation,
            },
            "probes": [report.to_dict() for report in probe_reports],
            "smo_log": list(self.smo_log),
            "fault": self.fault,
            "client_errors": [
                {"client": index, "traceback": text} for index, text in self.crashes
            ],
        }
        if self.injector is not None:
            report["injector"] = self.injector.describe()
        return report


def run_soak(config: SoakConfig) -> dict:
    """Run one soak phase and return its JSON-serializable report."""
    return SoakHarness(config).run()
