"""``python -m repro.soak`` — run the continuous-evolution soak harness.

Examples::

    # 30s on both transports, 8 clients, all probes
    python -m repro.soak

    # a quick seeded smoke on one transport, JSON report to a file
    python -m repro.soak --duration 20 --clients 8 --transport inproc \\
        --seed 7 --json soak_report.json

    # reproduce a failure: paste the report's repro_command
    python -m repro.soak --seed 1337 --duration 60 --clients 8 \\
        --smo-rate 0.5 --transport tcp

Exit status is 0 only when every probe on every transport passed.  On
failure the exact seed, configuration, and SMO log are printed — that is
the complete replay recipe.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.soak.harness import SoakConfig, run_soak
from repro.soak.probes import PROBE_FACTORIES
from repro.testing.faults import parse_fault_spec


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.soak",
        description="Randomized SMO stream under a live mixed workload, "
        "differentially checked at sync barriers.",
    )
    parser.add_argument("--seed", type=int, default=42, help="master seed (default 42)")
    parser.add_argument(
        "--duration", type=float, default=30.0,
        help="seconds per transport phase (default 30)",
    )
    parser.add_argument("--clients", type=int, default=8, help="worker count (default 8)")
    parser.add_argument(
        "--smo-rate", type=float, default=0.5,
        help="expected SMO stream events per second (default 0.5)",
    )
    parser.add_argument(
        "--transport", choices=("inproc", "tcp", "both"), default="both",
        help="run clients in-process, over TCP, or both phases (default both)",
    )
    parser.add_argument(
        "--barrier-interval", type=float, default=5.0,
        help="seconds between differential sync barriers (default 5)",
    )
    parser.add_argument(
        "--probe", action="append", choices=sorted(PROBE_FACTORIES), default=None,
        help="run only the named probe (repeatable; default: all probes)",
    )
    parser.add_argument(
        "--p95-budget-ms", type=float, default=2500.0,
        help="latency probe: p95 budget during DDL windows (default 2500)",
    )
    parser.add_argument(
        "--inject-fault", default=None, metavar="POINT=RATE[,POINT=RATE...]",
        help="seeded fault injection, e.g. 'evolution:before-commit=1.0'",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the full JSON report to PATH ('-' for stdout)",
    )
    return parser


def _print_failure(report: dict) -> None:
    print("\nSOAK FAILURE — full replay recipe:", file=sys.stderr)
    print(f"  seed:    {report['config']['seed']}", file=sys.stderr)
    print(f"  replay:  {report['repro_command']}", file=sys.stderr)
    if report.get("fault"):
        print(f"  fault:   {report['fault']}", file=sys.stderr)
    for probe in report.get("probes", []):
        for violation in probe["violations"]:
            print(f"  [{probe['name']}] {violation}", file=sys.stderr)
    for error in report.get("client_errors", []):
        print(f"  [client {error['client']}]\n{error['traceback']}", file=sys.stderr)
    print("  SMO log:", file=sys.stderr)
    for event in report.get("smo_log", []):
        line = f"    #{event['seq']} t={event['t']}s {event['kind']} -> {event['outcome']}: "
        print(line + event["script"].replace("\n", " "), file=sys.stderr)


def _summarize(report: dict) -> None:
    stats = report["stats"]
    status = "OK" if report["ok"] else "FAIL"
    print(
        f"[{report['config']['transport']}] {status}: "
        f"{stats['ops']} ops in {stats['elapsed_s']}s "
        f"({stats['ops_per_sec']}/s), {stats['smo_executed']} SMOs executed "
        f"({stats['smo_events']} generated), {stats['barriers']} barriers, "
        f"{len(stats['final_versions'])} live versions "
        f"(generation {stats['final_generation']})"
    )
    for probe in report.get("probes", []):
        mark = "ok " if probe["ok"] else "FAIL"
        print(f"    probe {probe['name']:<12} {mark} {probe['details']}")


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    fault_rates = parse_fault_spec(args.inject_fault) if args.inject_fault else {}
    transports = ("inproc", "tcp") if args.transport == "both" else (args.transport,)
    phases = []
    for transport in transports:
        config = SoakConfig(
            seed=args.seed,
            duration=args.duration,
            clients=args.clients,
            smo_rate=args.smo_rate,
            transport=transport,
            barrier_interval=args.barrier_interval,
            probes=args.probe,
            p95_budget_ms=args.p95_budget_ms,
            fault_rates=fault_rates,
        )
        report = run_soak(config)
        phases.append(report)
        _summarize(report)
        if not report["ok"]:
            _print_failure(report)
    combined = {"ok": all(phase["ok"] for phase in phases), "phases": phases}
    if args.json == "-":
        json.dump(combined, sys.stdout, indent=2)
        print()
    elif args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(combined, handle, indent=2)
        print(f"report written to {args.json}")
    return 0 if combined["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
