"""Continuous-evolution soak testing: randomized SMO streams under live
mixed workloads, differentially checked against the memory oracle.

Entry points:

- :class:`SoakConfig` / :func:`run_soak` — programmatic API;
- ``python -m repro.soak`` — the CLI (seeded, JSON reports, one-command
  failure replay);
- :data:`repro.soak.probes.PROBE_FACTORIES` — the invariant probe
  catalog.
"""

from repro.soak.harness import SoakConfig, SoakHarness, run_soak
from repro.soak.probes import PROBE_FACTORIES, FinalState, Probe, ProbeReport, make_probes
from repro.soak.stream import SmoStream

__all__ = [
    "FinalState",
    "PROBE_FACTORIES",
    "Probe",
    "ProbeReport",
    "SmoStream",
    "SoakConfig",
    "SoakHarness",
    "make_probes",
    "run_soak",
]
