"""The randomized BiDEL SMO stream: continuous evolution as a workload.

Generates evolution / MATERIALIZE / drop scripts against the *live*
catalog — every script is derived from whatever versions and tables
exist at generation time, so the stream composes indefinitely.  The
menu is deliberately restricted to the differentially-safe subset the
suite in ``tests/backend/test_differential.py`` established:

- identity columns (:data:`repro.workloads.orders.PROTECTED_COLUMNS`)
  are never dropped or renamed, so client SQL keyed on them survives
  every generated version;
- SPLIT always emits *complementary* conditions (``c % 2 = 0`` /
  ``c % 2 = 1``), so every row stays visible somewhere in the version
  and the lost-write probe stays sound;
- TEXT columns are never used in expressions or conditions, and
  generated columns are always integer-valued.

The harness gates every script through :func:`repro.check.preflight_script`
before execution — the generator aims to emit only valid scripts, but
the gate is what *guarantees* invalid ones never reach the engine.
"""

from __future__ import annotations

import random

from repro.core.engine import InVerDa
from repro.relational.types import DataType
from repro.workloads.orders import PROTECTED_COLUMNS


class SmoStream:
    """Seeded generator of BiDEL scripts against ``engine``'s live catalog."""

    def __init__(
        self,
        engine: InVerDa,
        seed: int,
        *,
        protected: frozenset[str] = PROTECTED_COLUMNS,
        min_versions: int = 2,
        max_versions: int = 9,
    ):
        self.engine = engine
        self.rng = random.Random(seed)
        self.protected = protected
        self.min_versions = min_versions
        self.max_versions = max_versions
        self.counter = 0

    # -- catalog introspection ---------------------------------------------

    def _droppable(self, actives: list[str]) -> list[str]:
        """Leaf versions: nothing active derives from them.  Dropping only
        leaves keeps the genealogy replayable and lets the stream prune
        the same lineage it grew."""
        if len(actives) <= self.min_versions:
            return []
        parents = {
            self.engine.genealogy.schema_version(name).parent for name in actives
        }
        return [name for name in actives if name not in parents]

    def _fresh(self, prefix: str) -> str:
        self.counter += 1
        return f"{prefix}{self.counter}"

    # -- script generation --------------------------------------------------

    def next_script(self) -> tuple[str, str] | None:
        """Generate ``(kind, script)`` for the next stream event, or None
        when the catalog offers nothing safe to do."""
        actives = self.engine.version_names()
        if not actives:
            return None
        droppable = self._droppable(actives)
        if len(actives) >= self.max_versions and droppable:
            return "drop", f"DROP SCHEMA VERSION {self.rng.choice(droppable)};\n"
        kinds = ["evolve"] * 5 + ["materialize"] * 2
        if droppable:
            kinds += ["drop"] * 3
        kind = self.rng.choice(kinds)
        if kind == "drop":
            return kind, f"DROP SCHEMA VERSION {self.rng.choice(droppable)};\n"
        if kind == "materialize":
            target = self.rng.choice(actives)
            # Half the moves run online: chunked journaled backfill with
            # clients live — the harness executes these outside the
            # stream write lock so the availability probe sees traffic
            # flowing *during* the move.
            if self.rng.random() < 0.5:
                return "materialize-online", f"MATERIALIZE ONLINE '{target}';\n"
            return kind, f"MATERIALIZE '{target}';\n"
        return self._evolution(actives)

    def _evolution(self, actives: list[str]) -> tuple[str, str] | None:
        source = self.rng.choice(actives)
        version = self.engine.genealogy.schema_version(source)
        table = self.rng.choice(sorted(version.tables))
        schema = version.tables[table].schema
        int_cols = [
            c.name for c in schema.columns
            if c.dtype is not DataType.TEXT and c.name not in ("tenant", "sku")
        ]
        mutable = [c.name for c in schema.columns if c.name not in self.protected]
        mutable_int = [name for name in mutable if name in int_cols]

        options: list[str] = []
        if int_cols:
            options += ["add"] * 3 + ["split"]
        if mutable:
            options += ["rename_column"] * 2
        if mutable_int and schema.arity >= 3:
            options += ["drop_column"] * 2
        options += ["rename_table"]
        choice = self.rng.choice(options)

        if choice == "add":
            fresh = self._fresh("c")
            a = self.rng.choice(int_cols)
            b = self.rng.choice(int_cols)
            expr = self.rng.choice([f"{a} + {b}", f"{a} * 2", f"{a} + 1", f"{a} % 5"])
            smo = f"ADD COLUMN {fresh} AS {expr} INTO {table};"
        elif choice == "rename_column":
            fresh = self._fresh("c")
            smo = f"RENAME COLUMN {self.rng.choice(mutable)} IN {table} TO {fresh};"
        elif choice == "drop_column":
            smo = f"DROP COLUMN {self.rng.choice(mutable_int)} FROM {table} DEFAULT 0;"
        elif choice == "rename_table":
            smo = f"RENAME TABLE {table} INTO {self._fresh('T')};"
        else:  # split
            cond = self.rng.choice(int_cols)
            left, right = self._fresh("P"), self._fresh("Q")
            smo = (
                f"SPLIT TABLE {table} INTO {left} WITH {cond} % 2 = 0, "
                f"{right} WITH {cond} % 2 = 1;"
            )
        name = self._fresh("s")
        return "evolve", f"CREATE SCHEMA VERSION {name} FROM {source} WITH\n{smo}\n"
