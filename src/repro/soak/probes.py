"""Invariant probes: first-class objects watching a soak run.

Each probe observes one invariant the paper's co-existence story
promises to hold *while the schema keeps evolving*, collects evidence
through narrow event hooks during the run, and renders a verdict in
:meth:`Probe.finalize`.  Probes are deliberately independent of the
harness internals — every hook takes plain values — so the defect tests
in ``tests/soak/test_probes.py`` can drive them directly with seeded
broken histories and assert each one fires with the right report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

#: Probe registry: name -> factory.  ``python -m repro.soak --probe`` and
#: the harness config select by these names.
PROBE_FACTORIES: dict[str, Callable[[], "Probe"]] = {}


def register(factory: type["Probe"]) -> type["Probe"]:
    PROBE_FACTORIES[factory.name] = factory
    return factory


def make_probes(names: list[str] | None = None) -> list["Probe"]:
    """Instantiate the selected probes (all of them when ``names`` is None)."""
    if names is None:
        return [factory() for factory in PROBE_FACTORIES.values()]
    unknown = [name for name in names if name not in PROBE_FACTORIES]
    if unknown:
        raise ValueError(
            f"unknown probe(s) {unknown}; available: {sorted(PROBE_FACTORIES)}"
        )
    return [PROBE_FACTORIES[name]() for name in names]


@dataclass
class ProbeReport:
    name: str
    ok: bool
    violations: list[str] = field(default_factory=list)
    details: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "ok": self.ok,
            "violations": list(self.violations),
            "details": dict(self.details),
        }


class Probe:
    """Base probe: every hook is a no-op; subclasses override what they
    watch.  ``finalize`` receives the harness's closing evidence bundle
    (a :class:`FinalState`) and must return a :class:`ProbeReport`."""

    name = "probe"
    description = ""

    # -- events during the run --------------------------------------------

    def on_ack(self, version: str, table: str, order_no: int) -> None:
        """A client's INSERT was acknowledged (committed) by the live side."""

    def on_delete(self, version: str, order_no: int) -> None:
        """A client's DELETE was acknowledged for a row it had inserted."""

    def on_version_lost(self, version: str, error: BaseException, clean: bool) -> None:
        """A pinned session hit its version being dropped; ``clean`` means
        the client saw exactly an OperationalError (the documented
        contract), not a crash or a wrong error class."""

    def on_generation_sample(self, engine_value: int, gauge_value: float) -> None:
        """Periodic sample of ``engine.catalog_generation`` and the
        ``repro_catalog_generation`` gauge."""

    def on_op(self, start: float, end: float, kind: str) -> None:
        """A client operation completed (monotonic timestamps)."""

    def on_barrier(self, index: int, ok: bool, detail: str) -> None:
        """A differential sync barrier completed (or failed)."""

    # -- verdict -----------------------------------------------------------

    def finalize(self, final: "FinalState") -> ProbeReport:
        raise NotImplementedError


@dataclass
class FinalState:
    """The evidence bundle handed to every probe's ``finalize``.

    ``order_rows_by_version`` maps version name -> set of order_no values
    visible in that version's order tables on the *live* side;
    ``ddl_windows``/``barrier_windows`` are (start, end) monotonic spans.
    """

    order_rows_by_version: dict[str, set[int]]
    active_versions: list[str]
    engine_generation: int
    gauge_generation: float
    disk_generation: int | None
    ddl_windows: list[tuple[float, float]]
    barrier_windows: list[tuple[float, float]]
    p95_budget_ms: float
    delta_findings: list = field(default_factory=list)
    backfill_windows: list[tuple[float, float]] = field(default_factory=list)


@register
class NoLostWritesProbe(Probe):
    """Every acknowledged INSERT that was not later deleted by its owner
    must still be visible in the live database.

    Complementary split conditions guarantee each order row stays visible
    in *some* table of every surviving version, so the probe checks the
    union of all versions' order tables for each acked ``order_no``.
    """

    name = "lost-writes"
    description = "no acked write may vanish"

    def __init__(self) -> None:
        self.acked: dict[int, str] = {}  # order_no -> version written through
        self.deleted: set[int] = set()

    def on_ack(self, version: str, table: str, order_no: int) -> None:
        self.acked[order_no] = version

    def on_delete(self, version: str, order_no: int) -> None:
        self.deleted.add(order_no)

    def finalize(self, final: FinalState) -> ProbeReport:
        visible: set[int] = set()
        for rows in final.order_rows_by_version.values():
            visible |= rows
        expected = {no for no in self.acked if no not in self.deleted}
        lost = sorted(expected - visible)
        violations = [
            f"acked order_no {no} (written via {self.acked[no]!r}) is not "
            "visible in any surviving version" for no in lost[:20]
        ]
        if len(lost) > 20:
            violations.append(f"... and {len(lost) - 20} more lost writes")
        return ProbeReport(
            self.name,
            ok=not lost,
            violations=violations,
            details={
                "acked": len(self.acked),
                "deleted": len(self.deleted),
                "checked": len(expected),
                "lost": len(lost),
            },
        )


@register
class CleanDropProbe(Probe):
    """A session pinned to a dropped version must fail with a clean
    ``OperationalError`` — never a crash, a wrong error class, or silent
    misbehavior."""

    name = "clean-drop"
    description = "dropped-version sessions fail with OperationalError"

    def __init__(self) -> None:
        self.events: list[tuple[str, str, bool]] = []

    def on_version_lost(self, version: str, error: BaseException, clean: bool) -> None:
        self.events.append((version, f"{type(error).__name__}: {error}", clean))

    def finalize(self, final: FinalState) -> ProbeReport:
        dirty = [event for event in self.events if not event[2]]
        violations = [
            f"session pinned to dropped version {version!r} saw {error} "
            "instead of a clean OperationalError"
            for version, error, _ in dirty
        ]
        return ProbeReport(
            self.name,
            ok=not dirty,
            violations=violations,
            details={"drops_observed": len(self.events), "dirty": len(dirty)},
        )


@register
class MonotoneGenerationProbe(Probe):
    """``catalog_generation`` must only ever move forward, and the
    ``repro_catalog_generation`` gauge must track it."""

    name = "generation"
    description = "catalog_generation is monotone and mirrored by the gauge"

    def __init__(self) -> None:
        self.samples = 0
        self.regressions: list[tuple[int, int]] = []
        self.gauge_mismatches: list[tuple[int, float]] = []
        self._last: int | None = None

    def on_generation_sample(self, engine_value: int, gauge_value: float) -> None:
        self.samples += 1
        if self._last is not None and engine_value < self._last:
            self.regressions.append((self._last, engine_value))
        self._last = engine_value
        # The gauge is set under the same write lock that bumps the
        # counter, but a sampler may interleave between the two stores;
        # allow the gauge to trail by at most one transition.
        if not engine_value - 1 <= gauge_value <= engine_value:
            self.gauge_mismatches.append((engine_value, gauge_value))

    def finalize(self, final: FinalState) -> ProbeReport:
        violations = [
            f"catalog_generation regressed from {before} to {after}"
            for before, after in self.regressions[:10]
        ]
        for engine_value, gauge_value in self.gauge_mismatches[:10]:
            violations.append(
                f"repro_catalog_generation gauge read {gauge_value} while the "
                f"engine was at {engine_value}"
            )
        if final.gauge_generation != final.engine_generation:
            violations.append(
                f"final gauge {final.gauge_generation} != engine generation "
                f"{final.engine_generation}"
            )
        if (
            final.disk_generation is not None
            and final.disk_generation != final.engine_generation
        ):
            violations.append(
                f"on-disk generation {final.disk_generation} != engine "
                f"generation {final.engine_generation}"
            )
        return ProbeReport(
            self.name,
            ok=not violations,
            violations=violations,
            details={
                "samples": self.samples,
                "final_generation": final.engine_generation,
            },
        )


def percentile(values: list[float], fraction: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _overlaps(start: float, end: float, windows: list[tuple[float, float]]) -> bool:
    return any(start < w_end and end > w_start for w_start, w_end in windows)


@register
class BoundedLatencyProbe(Probe):
    """Client p95 latency during DDL windows must stay under the budget.

    DDL drains in-flight statements and blocks new ones for the length of
    one catalog transition; the co-existence promise is that this stall
    is bounded, not that it is zero.  Operations overlapping a *barrier*
    window are excluded — the differential pause is harness overhead, not
    system behavior.
    """

    name = "latency"
    description = "bounded p95 during DDL windows"

    def __init__(self) -> None:
        self.ops: list[tuple[float, float]] = []

    def on_op(self, start: float, end: float, kind: str) -> None:
        self.ops.append((start, end))

    def finalize(self, final: FinalState) -> ProbeReport:
        clear, during_ddl = [], []
        for start, end in self.ops:
            if _overlaps(start, end, final.barrier_windows):
                continue
            latency_ms = (end - start) * 1000.0
            if _overlaps(start, end, final.ddl_windows):
                during_ddl.append(latency_ms)
            else:
                clear.append(latency_ms)
        ddl_p95 = percentile(during_ddl, 0.95)
        violations = []
        if ddl_p95 > final.p95_budget_ms:
            violations.append(
                f"p95 during DDL windows is {ddl_p95:.1f} ms, over the "
                f"{final.p95_budget_ms:.0f} ms budget "
                f"({len(during_ddl)} ops in {len(final.ddl_windows)} windows)"
            )
        return ProbeReport(
            self.name,
            ok=not violations,
            violations=violations,
            details={
                "ops": len(self.ops),
                "ops_during_ddl": len(during_ddl),
                "p95_ms": round(percentile(clear, 0.95), 3),
                "ddl_p95_ms": round(ddl_p95, 3),
                "budget_ms": final.p95_budget_ms,
            },
        )


@register
class AvailabilityProbe(Probe):
    """Serving must keep flowing *through* an online-MATERIALIZE backfill.

    The harness runs ``MATERIALIZE ONLINE`` outside the stream write
    lock and records each move's (start, end) window.  Inside those
    windows client operations must keep completing — none erroring (an
    unexpected statement error crashes the harness outright) — with
    bounded p95.  Operations overlapping a *barrier* window are
    excluded: the differential pause is harness overhead, not system
    behavior.
    """

    name = "availability"
    description = "ops keep completing, bounded, during online backfills"

    #: A backfill window shorter than this can legitimately contain no
    #: completed op — tiny tables move in one chunk.
    MIN_SPAN_SECONDS = 0.5

    def __init__(self) -> None:
        self.ops: list[tuple[float, float]] = []

    def on_op(self, start: float, end: float, kind: str) -> None:
        self.ops.append((start, end))

    def finalize(self, final: FinalState) -> ProbeReport:
        during = []
        for start, end in self.ops:
            if _overlaps(start, end, final.barrier_windows):
                continue
            if _overlaps(start, end, final.backfill_windows):
                during.append((end - start) * 1000.0)
        span = sum(end - start for start, end in final.backfill_windows)
        violations = []
        if span > self.MIN_SPAN_SECONDS and not during:
            violations.append(
                f"no client op completed inside "
                f"{len(final.backfill_windows)} backfill window(s) spanning "
                f"{span:.2f}s — serving stalled during the online move"
            )
        backfill_p95 = percentile(during, 0.95)
        if backfill_p95 > final.p95_budget_ms:
            violations.append(
                f"p95 during online backfills is {backfill_p95:.1f} ms, over "
                f"the {final.p95_budget_ms:.0f} ms budget "
                f"({len(during)} ops in {len(final.backfill_windows)} windows)"
            )
        return ProbeReport(
            self.name,
            ok=not violations,
            violations=violations,
            details={
                "backfill_windows": len(final.backfill_windows),
                "backfill_seconds": round(span, 3),
                "ops_during_backfill": len(during),
                "backfill_p95_ms": round(backfill_p95, 3),
                "budget_ms": final.p95_budget_ms,
            },
        )


@register
class DifferentialProbe(Probe):
    """Every sync barrier must find the live SQLite state byte-identical
    (after canonical relabeling) to the replayed memory oracle."""

    name = "differential"
    description = "live state matches the memory oracle at every barrier"

    def __init__(self) -> None:
        self.barriers: list[tuple[int, bool, str]] = []

    def on_barrier(self, index: int, ok: bool, detail: str) -> None:
        self.barriers.append((index, ok, detail))

    def finalize(self, final: FinalState) -> ProbeReport:
        failed = [entry for entry in self.barriers if not entry[1]]
        violations = [
            f"barrier #{index} diverged: {detail}" for index, _, detail in failed
        ]
        return ProbeReport(
            self.name,
            ok=not failed,
            violations=violations,
            details={"barriers": len(self.barriers), "failed": len(failed)},
        )


@register
class DeltaVerifierProbe(Probe):
    """After the run, the static delta-code verifier must pass: no
    dangling views, no orphaned triggers, no drift between catalog and
    generated SQL."""

    name = "delta"
    description = "post-run check.delta verifier finds no errors"

    def finalize(self, final: FinalState) -> ProbeReport:
        errors = [
            finding for finding in final.delta_findings
            if getattr(finding, "severity", "error") == "error"
        ]
        violations = [str(finding) for finding in errors[:20]]
        return ProbeReport(
            self.name,
            ok=not errors,
            violations=violations,
            details={
                "findings": len(final.delta_findings),
                "errors": len(errors),
            },
        )
