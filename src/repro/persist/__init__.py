"""Durable in-database catalog: persistence, fingerprints, recovery.

The subsystem that lets a repro database outlive its process: the catalog
of schema versions is stored inside the SQLite file it describes
(:mod:`repro.persist.store`), deterministic fingerprints dedup identical
schema states and detect drift (:mod:`repro.persist.fingerprint`), and
:func:`repro.open` reconstructs a ready engine from a bare file
(:mod:`repro.persist.recovery`).
"""

from repro.persist.fingerprint import (
    catalog_fingerprint,
    layout_fingerprint,
    version_fingerprint,
)
from repro.persist.recovery import (
    database_has_catalog,
    open_database,
    recover,
    replay_into,
)
from repro.persist.store import FORMAT_VERSION, CatalogState, CatalogStore

__all__ = [
    "CatalogStore",
    "CatalogState",
    "FORMAT_VERSION",
    "catalog_fingerprint",
    "database_has_catalog",
    "layout_fingerprint",
    "open_database",
    "recover",
    "replay_into",
    "version_fingerprint",
]
