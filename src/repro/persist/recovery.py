"""Rebuilding a live engine from a database's persisted catalog.

Recovery replays the stored catalog log through a fresh engine: every
``evolution`` entry re-executes its BiDEL text (with the genealogy's uid
counters seeded from the entry, so table-version and SMO uids — and the
physical names that embed them — come out exactly as they were), every
``materialize`` entry re-applies the stored SMO set, and every ``drop``
entry re-runs the drop (whose garbage collection reproduces the original
decisions, because the materialization state at that log position is the
original one).

After the replay, recovery *verifies* before it trusts:

- every persisted schema version must exist in the replayed genealogy
  with its stored parent and dropped flag, and its recomputed
  fingerprint must match the stored one (detects log corruption);
- every physical table the replayed catalog expects must exist in the
  SQLite file with exactly the expected columns (detects drift — tables
  dropped, renamed, or altered behind the catalog's back).

A mismatch raises :class:`~repro.errors.CatalogCorruptError` naming every
problem.  ``repair=True`` recreates missing physical tables as empty and
proceeds when that resolves everything; ``force=True`` skips verification
entirely (the escape hatch for forensics on a damaged file).
"""

from __future__ import annotations

import os
import sqlite3
import time
from typing import TYPE_CHECKING

from repro.bidel.ast import CreateSchemaVersion
from repro.bidel.parser import parse_script
from repro.errors import CatalogCorruptError, CatalogError
from repro.persist.fingerprint import (
    engine_layout,
    sqlite_layout,
    version_fingerprint,
)
from repro.persist.store import CatalogState, CatalogStore

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import InVerDa


def database_has_catalog(database: str) -> bool:
    """Does the SQLite file at ``database`` carry a persisted catalog?
    (``False`` for missing files; never creates one.)"""
    if database == ":memory:" or not os.path.exists(database):
        return False
    try:
        connection = sqlite3.connect(
            f"file:{database}?mode=ro", uri=True, timeout=5.0
        )
    except sqlite3.Error:
        return False
    try:
        return CatalogStore.has_catalog(connection)
    finally:
        connection.close()


def replay_into(engine: "InVerDa", entries: list[dict]) -> None:
    """Replay a catalog log through ``engine`` (expected to be fresh: no
    schema versions, no attached backends)."""
    genealogy = engine.genealogy
    for entry in entries:
        kind = entry["kind"]
        if kind == "evolution":
            if entry.get("table_uid") is not None:
                genealogy._next_table_uid = entry["table_uid"]
            if entry.get("smo_uid") is not None:
                genealogy._next_smo_uid = entry["smo_uid"]
            if entry.get("bidel"):
                (statement,) = parse_script(entry["bidel"])
            else:
                # A version whose SMOs were all garbage-collected before
                # persistence began: an empty copy of its source.
                statement = CreateSchemaVersion(entry["name"], entry["source"], ())
            engine.create_schema_version(statement)
        elif kind == "materialize":
            smos = []
            for uid in entry["smos"]:
                smo = genealogy.smo_instances.get(uid)
                if smo is None:
                    raise CatalogCorruptError(
                        f"catalog log references unknown SMO #{uid} in a "
                        "MATERIALIZE entry"
                    )
                smos.append(smo)
            engine.apply_materialization(frozenset(smos))
        elif kind == "drop":
            engine.drop_schema_version(entry["name"])
        else:
            raise CatalogCorruptError(f"unknown catalog log entry kind {kind!r}")


def verify_catalog(engine: "InVerDa", state: CatalogState) -> list[str]:
    """Replayed genealogy vs the stored per-version records."""
    problems: list[str] = []
    for record in state.versions:
        version = engine.genealogy.schema_versions.get(record.name)
        if version is None:
            problems.append(
                f"persisted schema version {record.name!r} did not come back "
                "from the log replay"
            )
            continue
        if bool(version.dropped) != record.dropped:
            problems.append(
                f"schema version {record.name!r}: dropped flag diverged "
                f"(stored {record.dropped}, replayed {version.dropped})"
            )
        if version.parent != record.parent:
            problems.append(
                f"schema version {record.name!r}: parent diverged "
                f"(stored {record.parent!r}, replayed {version.parent!r})"
            )
        replayed = version_fingerprint(version)
        if replayed != record.fingerprint:
            problems.append(
                f"schema version {record.name!r}: fingerprint mismatch "
                f"(stored {record.fingerprint[:12]}…, replayed {replayed[:12]}…)"
            )
    return problems


def verify_layout(
    engine: "InVerDa",
    connection: sqlite3.Connection,
    *,
    repair: bool = False,
) -> list[str]:
    """Every physical table the catalog expects vs the SQLite file.

    With ``repair=True`` missing tables are recreated empty (their
    contents are gone, but the catalog becomes servable again); column
    mismatches are never repairable — the data's meaning is unknown.
    """
    from repro.backend.emit import table_ddl

    expected = engine_layout(engine)
    actual = sqlite_layout(connection, list(expected))
    problems: list[str] = []
    for name, columns in expected.items():
        if name not in actual:
            if repair:
                in_memory = engine.database.table(name)
                connection.execute(
                    table_ddl(name, in_memory.schema.column_names)
                )
                continue
            problems.append(f"physical table {name!r} is missing from the database")
        elif tuple(actual[name]) != tuple(columns):
            problems.append(
                f"physical table {name!r} drifted: catalog expects columns "
                f"{list(columns)}, database has {list(actual[name])}"
            )
    return problems


def _verify_delta_code(engine: "InVerDa") -> list[str]:
    """The static delta-code verifier as the third recovery gate: a
    catalog whose regenerated views or triggers do not resolve must not
    come back up.  Fingerprints catch *changed* catalogs; this catches
    *inconsistent* ones (a deeper, semantic complement).  Warnings are
    recorded but never block recovery."""
    from repro.check.delta import verify_delta_code
    from repro.check.diagnostics import record_findings

    findings = verify_delta_code(engine)
    record_findings(engine, findings, scope="recovery")
    return [
        f"delta code: [{d.code}] {d.obj}: {d.message}"
        for d in findings
        if d.severity == "error"
    ]


def recover(
    engine: "InVerDa",
    connection: sqlite3.Connection,
    *,
    repair: bool = False,
    force: bool = False,
) -> CatalogState:
    """Rebuild ``engine`` (fresh) from the catalog persisted on
    ``connection``'s database, verifying fingerprints and physical layout.

    Returns the loaded :class:`CatalogState` so the caller can decide
    whether the installed delta code is still current."""
    if engine.genealogy.schema_versions:
        raise CatalogError(
            "recover() needs a fresh engine; this one already has "
            f"{len(engine.genealogy.schema_versions)} schema versions"
        )
    started = time.perf_counter()
    state = CatalogStore(connection).load()
    replay_into(engine, state.entries)
    # Recovery rebuilds a fresh, unshared engine; no session can hold
    # the read side yet.
    engine.catalog_generation = state.generation  # repro-lint: allow(RPC302)
    if not force:
        problems = verify_catalog(engine, state)
        problems += verify_layout(engine, connection, repair=repair)
        problems += _verify_delta_code(engine)
        if problems:
            raise CatalogCorruptError(
                "the persisted catalog does not match this database "
                "(pass repair=True to recreate missing tables empty, or "
                "force=True to skip verification):\n- " + "\n- ".join(problems)
            )
    duration = time.perf_counter() - started
    engine.metrics.histogram(
        "repro_recovery_duration_seconds",
        "Durable-catalog recovery duration (log replay + verification).",
    ).observe(duration)
    engine.metrics.counter(
        "repro_recoveries_total", "Completed catalog recoveries."
    ).inc()
    # Recovery moves catalog_generation outside a transition, so the
    # gauge must follow it here.
    engine.metrics.gauge(
        "repro_catalog_generation",
        "Current catalog generation (bumped on every transition).",
    ).set(engine.catalog_generation)
    return state


def open_database(
    database: str,
    *,
    create: bool = True,
    repair: bool = False,
    force: bool = False,
    **attach_options,
) -> "InVerDa":
    """Reconstruct a ready engine from a SQLite file: ``repro.open``.

    If ``database`` carries a persisted catalog, the engine is rebuilt
    from it (genealogy, materialization, durable generation) and served
    by a :class:`~repro.backend.sqlite.LiveSqliteBackend` reusing the
    file's physical tables and — when still current — its installed
    views and triggers.  A bare or missing file starts an empty,
    persistence-enabled database (``create=False`` forbids that and
    raises instead).  ``attach_options`` are passed through to
    :meth:`LiveSqliteBackend.attach` (``pool_size``, ``flatten``, ...).
    """
    from repro.backend.sqlite import LiveSqliteBackend
    from repro.core.engine import InVerDa

    if not create and not database_has_catalog(database):
        raise CatalogError(
            f"{database!r} carries no persisted catalog "
            "(pass create=True to start a new one)"
        )
    engine = InVerDa()
    LiveSqliteBackend.attach(
        engine, database=database, repair=repair, force=force, **attach_options
    )
    return engine
