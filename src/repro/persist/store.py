"""The durable catalog: ``_repro_catalog_*`` tables inside the database.

The engine's version genealogy, SMO chains, materialization choice, and
catalog generation are database state (the paper's premise: the catalog of
schema versions *is* the database).  :class:`CatalogStore` writes them into
the same SQLite file that holds the physical tables, inside the same
transaction as the DDL they describe, so a crash mid-transition leaves
either the old or the new catalog — never a torn one.

Tables
------

``_repro_catalog_meta``
    key/value: ``format_version`` (forward compatibility), ``generation``
    (the engine's monotonic catalog generation), ``fingerprint`` (the
    whole-catalog fingerprint), and ``delta_generation``/``delta_flatten``
    (the generation and view-emission mode the installed delta code was
    generated for — the key for idempotent reuse on re-attach).

``_repro_catalog_log``
    The append-only catalog log, one row per catalog transition in
    chronological order: ``evolution`` rows carry the version's BiDEL text
    plus the uid counters to seed before replaying it (so physical names,
    which embed uids, come out identical even across garbage-collected
    gaps); ``materialize`` rows carry the materialized SMO uid set;
    ``drop`` rows the dropped version name.  Recovery replays this log
    through a fresh engine.

``_repro_catalog_versions`` / ``_repro_catalog_schemas``
    Per-version bookkeeping (genealogy position, parent, dropped flag)
    referencing deduplicated schema snapshots keyed by their
    deterministic fingerprint: versions with identical table shapes share
    one serialized snapshot row.

``_repro_catalog_backfill``
    The online-MATERIALIZE journal: at most one row describing an
    in-flight move (target SMO set, staged-table plan, per-table chunk
    cursors, phase).  Written in the prepare transaction, advanced in the
    same transaction as each backfill chunk, and deleted in the cutover
    transaction — so after a crash the row is exactly as stale as the
    physical staging tables, and :func:`repro.open` can resume the move
    from the recorded cursor (or roll the prepare back).
"""

from __future__ import annotations

import json
import sqlite3
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.bidel.ast import CreateSchemaVersion
from repro.errors import CatalogError
from repro.persist.fingerprint import (
    catalog_fingerprint,
    version_fingerprint,
    version_payload,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.catalog.versions import SchemaVersion
    from repro.core.engine import InVerDa

#: Bump when the catalog serialization format changes incompatibly.
FORMAT_VERSION = 1

META_TABLE = "_repro_catalog_meta"
LOG_TABLE = "_repro_catalog_log"
VERSIONS_TABLE = "_repro_catalog_versions"
SCHEMAS_TABLE = "_repro_catalog_schemas"
BACKFILL_TABLE = "_repro_catalog_backfill"

_BACKFILL_DDL = (
    f"CREATE TABLE IF NOT EXISTS {BACKFILL_TABLE} "
    "(id INTEGER PRIMARY KEY CHECK (id = 1), phase TEXT NOT NULL, "
    "generation INTEGER NOT NULL, smos TEXT NOT NULL, plan TEXT NOT NULL, "
    "cursors TEXT NOT NULL, chunks INTEGER NOT NULL DEFAULT 0)"
)

_DDL = [
    f"CREATE TABLE IF NOT EXISTS {META_TABLE} "
    "(key TEXT PRIMARY KEY, value TEXT NOT NULL)",
    f"CREATE TABLE IF NOT EXISTS {LOG_TABLE} "
    "(seq INTEGER PRIMARY KEY, kind TEXT NOT NULL, payload TEXT NOT NULL)",
    f"CREATE TABLE IF NOT EXISTS {SCHEMAS_TABLE} "
    "(fingerprint TEXT PRIMARY KEY, snapshot TEXT NOT NULL)",
    f"CREATE TABLE IF NOT EXISTS {VERSIONS_TABLE} "
    "(position INTEGER PRIMARY KEY, name TEXT UNIQUE NOT NULL, parent TEXT, "
    "dropped INTEGER NOT NULL DEFAULT 0, "
    f"fingerprint TEXT NOT NULL REFERENCES {SCHEMAS_TABLE}(fingerprint))",
    _BACKFILL_DDL,
]


@dataclass
class VersionRecord:
    position: int
    name: str
    parent: str | None
    dropped: bool
    fingerprint: str


@dataclass
class BackfillRecord:
    """One in-flight online-MATERIALIZE move, as journaled on disk."""

    phase: str
    generation: int
    smos: list[int]
    plan: dict
    cursors: dict[str, int]
    chunks: int


@dataclass
class CatalogState:
    """Everything :meth:`CatalogStore.load` reads back from a database."""

    format_version: int
    generation: int
    fingerprint: str | None
    delta_generation: int | None
    delta_flatten: bool | None
    entries: list[dict] = field(default_factory=list)
    versions: list[VersionRecord] = field(default_factory=list)


def evolution_entry(engine: "InVerDa", version: "SchemaVersion") -> dict:
    """The log entry recreating ``version``: its BiDEL text (rebuilt from
    the catalog, so one code path serves live recording and snapshot
    synthesis alike) plus the uid counters to seed before replaying."""
    smos = [
        smo for smo in engine.genealogy.all_smos() if smo.evolution == version.name
    ]
    statement = CreateSchemaVersion(
        version.name, version.parent, tuple(smo.node for smo in smos)
    )
    return {
        "name": version.name,
        "source": version.parent,
        "bidel": statement.unparse() if smos else None,
        "table_uid": min(
            (tv.uid for smo in smos for tv in smo.targets), default=None
        ),
        "smo_uid": min((smo.uid for smo in smos), default=None),
    }


def snapshot_entries(engine: "InVerDa") -> list[tuple[str, dict]]:
    """Synthesize a complete catalog log from the engine's current state
    (used when persistence starts on a catalog that predates it).

    The synthesized order — every version creation in genealogy order,
    then the current materialization, then the drops — replays to the
    same catalog: SMO instances the original drops garbage-collected are
    simply absent from their version's entry, uid seeds bridge the gaps,
    and the surviving SMOs of dropped versions survive the replayed drop
    for the same reason they survived the original one (they are
    materialized, physical, or still routing an active version).
    """
    entries: list[tuple[str, dict]] = []
    for version in engine.genealogy.schema_versions.values():
        entries.append(("evolution", evolution_entry(engine, version)))
    materialized = sorted(
        smo.uid for smo in engine.genealogy.evolution_smos() if smo.materialized
    )
    if materialized:
        entries.append(("materialize", {"smos": materialized}))
    for version in engine.genealogy.schema_versions.values():
        if version.dropped:
            entries.append(("drop", {"name": version.name}))
    return entries


class CatalogStore:
    """Reads and writes the ``_repro_catalog_*`` tables on one SQLite
    connection.  Writes never commit: they join whatever transaction the
    caller (the live backend's catalog-transition hooks) has open, so the
    catalog rows and the DDL they describe are atomic together."""

    def __init__(self, connection: sqlite3.Connection):
        self.connection = connection

    # ------------------------------------------------------------------
    # Presence and installation
    # ------------------------------------------------------------------

    @staticmethod
    def has_catalog(connection: sqlite3.Connection) -> bool:
        row = connection.execute(
            "SELECT 1 FROM sqlite_master WHERE type = 'table' AND name = ?",
            (META_TABLE,),
        ).fetchone()
        return row is not None

    def install(self) -> None:
        for statement in _DDL:
            self.connection.execute(statement)

    # ------------------------------------------------------------------
    # Meta
    # ------------------------------------------------------------------

    def _set_meta(self, key: str, value: object) -> None:
        self.connection.execute(
            f"INSERT OR REPLACE INTO {META_TABLE} (key, value) VALUES (?, ?)",
            (key, json.dumps(value)),
        )

    def _get_meta(self, key: str, default=None):
        row = self.connection.execute(
            f"SELECT value FROM {META_TABLE} WHERE key = ?", (key,)
        ).fetchone()
        return default if row is None else json.loads(row[0])

    def read_generation(self) -> int | None:
        """The on-disk catalog generation — cheap enough to poll, and (on
        a WAL database) always the latest committed value, so a process
        can detect that *another* process moved the shared catalog."""
        if not self.has_catalog(self.connection):
            return None
        return self._get_meta("generation")

    def set_delta_meta(self, generation: int, flatten: bool) -> None:
        """Record which catalog generation (and view-emission mode) the
        installed views/triggers were generated for; re-attach skips
        regeneration when both still match."""
        self._set_meta("delta_generation", generation)
        self._set_meta("delta_flatten", flatten)

    # ------------------------------------------------------------------
    # Recording catalog transitions
    # ------------------------------------------------------------------

    def _append_log(self, kind: str, payload: dict) -> None:
        self.connection.execute(
            f"INSERT INTO {LOG_TABLE} (seq, kind, payload) VALUES "
            f"((SELECT COALESCE(MAX(seq), 0) + 1 FROM {LOG_TABLE}), ?, ?)",
            (kind, json.dumps(payload)),
        )

    def _write_version_row(self, version: "SchemaVersion", position: int) -> None:
        fingerprint = version_fingerprint(version)
        self.connection.execute(
            f"INSERT OR IGNORE INTO {SCHEMAS_TABLE} (fingerprint, snapshot) "
            "VALUES (?, ?)",
            (fingerprint, json.dumps(version_payload(version))),
        )
        self.connection.execute(
            f"INSERT OR REPLACE INTO {VERSIONS_TABLE} "
            "(position, name, parent, dropped, fingerprint) VALUES (?, ?, ?, ?, ?)",
            (position, version.name, version.parent, int(version.dropped), fingerprint),
        )

    def _refresh_meta(self, engine: "InVerDa") -> None:
        self._set_meta("format_version", FORMAT_VERSION)
        self._set_meta("generation", engine.catalog_generation)
        self._set_meta("fingerprint", catalog_fingerprint(engine))

    def record_evolution(self, engine: "InVerDa", version: "SchemaVersion") -> None:
        self._append_log("evolution", evolution_entry(engine, version))
        position = list(engine.genealogy.schema_versions).index(version.name)
        self._write_version_row(version, position)
        self._refresh_meta(engine)

    def record_materialize(self, engine: "InVerDa") -> None:
        materialized = sorted(
            smo.uid for smo in engine.genealogy.evolution_smos() if smo.materialized
        )
        self._append_log("materialize", {"smos": materialized})
        self._refresh_meta(engine)

    def record_drop(self, engine: "InVerDa", name: str) -> None:
        self._append_log("drop", {"name": name})
        self.connection.execute(
            f"UPDATE {VERSIONS_TABLE} SET dropped = 1 WHERE name = ?", (name,)
        )
        self._refresh_meta(engine)

    # ------------------------------------------------------------------
    # The online-MATERIALIZE backfill journal
    # ------------------------------------------------------------------

    def _ensure_backfill_table(self) -> None:
        """Databases persisted before the journal existed lack the table;
        create it on demand (DDL joins the caller's transaction)."""
        self.connection.execute(_BACKFILL_DDL)

    def write_backfill(self, record: BackfillRecord) -> None:
        """Journal a new in-flight move (the prepare transaction)."""
        self._ensure_backfill_table()
        self.connection.execute(
            f"INSERT OR REPLACE INTO {BACKFILL_TABLE} "
            "(id, phase, generation, smos, plan, cursors, chunks) "
            "VALUES (1, ?, ?, ?, ?, ?, ?)",
            (
                record.phase,
                record.generation,
                json.dumps(record.smos),
                json.dumps(record.plan),
                json.dumps(record.cursors),
                record.chunks,
            ),
        )

    def update_backfill(
        self, *, phase: str | None = None, cursors: dict[str, int] | None = None,
        chunks: int | None = None,
    ) -> None:
        """Advance the journaled move; joins the caller's chunk transaction
        so cursor and copied rows commit (or vanish) together."""
        sets, params = [], []
        if phase is not None:
            sets.append("phase = ?")
            params.append(phase)
        if cursors is not None:
            sets.append("cursors = ?")
            params.append(json.dumps(cursors))
        if chunks is not None:
            sets.append("chunks = ?")
            params.append(chunks)
        if not sets:
            return
        self.connection.execute(
            f"UPDATE {BACKFILL_TABLE} SET {', '.join(sets)} WHERE id = 1", params
        )

    def read_backfill(self) -> BackfillRecord | None:
        """The journaled in-flight move, or ``None`` when none is pending
        (including on databases that predate the journal table)."""
        row = self.connection.execute(
            "SELECT 1 FROM sqlite_master WHERE type = 'table' AND name = ?",
            (BACKFILL_TABLE,),
        ).fetchone()
        if row is None:
            return None
        row = self.connection.execute(
            f"SELECT phase, generation, smos, plan, cursors, chunks "
            f"FROM {BACKFILL_TABLE} WHERE id = 1"
        ).fetchone()
        if row is None:
            return None
        phase, generation, smos, plan, cursors, chunks = row
        return BackfillRecord(
            phase=phase,
            generation=generation,
            smos=json.loads(smos),
            plan=json.loads(plan),
            cursors=json.loads(cursors),
            chunks=chunks,
        )

    def clear_backfill(self) -> None:
        """Drop the journal row (the cutover or rollback transaction)."""
        self._ensure_backfill_table()
        self.connection.execute(f"DELETE FROM {BACKFILL_TABLE}")

    def save_snapshot(self, engine: "InVerDa") -> None:
        """(Re)write the whole catalog from the engine's current state —
        the first persist of an engine that predates the store."""
        self.install()
        for table in (LOG_TABLE, VERSIONS_TABLE, SCHEMAS_TABLE, META_TABLE):
            self.connection.execute(f"DELETE FROM {table}")
        for kind, payload in snapshot_entries(engine):
            self._append_log(kind, payload)
        for position, version in enumerate(engine.genealogy.schema_versions.values()):
            self._write_version_row(version, position)
        self._refresh_meta(engine)

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------

    def load(self) -> CatalogState:
        if not self.has_catalog(self.connection):
            raise CatalogError("this database carries no persisted catalog")
        format_version = self._get_meta("format_version", 0)
        if format_version > FORMAT_VERSION:
            raise CatalogError(
                f"catalog format {format_version} is newer than this library "
                f"understands (max {FORMAT_VERSION}); upgrade repro to open it"
            )
        entries = [
            {"kind": kind, **json.loads(payload)}
            for kind, payload in self.connection.execute(
                f"SELECT kind, payload FROM {LOG_TABLE} ORDER BY seq"
            )
        ]
        versions = [
            VersionRecord(position, name, parent, bool(dropped), fingerprint)
            for position, name, parent, dropped, fingerprint in self.connection.execute(
                f"SELECT position, name, parent, dropped, fingerprint "
                f"FROM {VERSIONS_TABLE} ORDER BY position"
            )
        ]
        return CatalogState(
            format_version=format_version,
            generation=self._get_meta("generation", 0),
            fingerprint=self._get_meta("fingerprint"),
            delta_generation=self._get_meta("delta_generation"),
            delta_flatten=self._get_meta("delta_flatten"),
            entries=entries,
            versions=versions,
        )
