"""Deterministic schema fingerprints for the persistent catalog.

A fingerprint is the SHA-256 of a canonical JSON rendering of the thing it
describes — sorted keys, no whitespace, explicit column order — so the
same logical state always hashes identically regardless of process, dict
iteration quirks, or Python version:

- :func:`version_fingerprint` hashes one schema version's *logical* shape
  (sorted table names, each with its ordered ``(name, type)`` columns and
  engine-assigned key column).  Two schema versions with identical table
  shapes share a fingerprint, which is what lets the catalog store dedup
  serialized snapshots (one row per distinct shape).
- :func:`layout_fingerprint` hashes a *physical* layout — a mapping of
  physical table names to their ordered column tuples — and is computed
  both from the engine's expectation (:func:`engine_layout`) and from an
  actual SQLite file (:func:`sqlite_layout`), so recovery can detect
  drift between the persisted catalog and the tables on disk.
- :func:`catalog_fingerprint` combines the two with the genealogy order
  and materialization choice into one identity for the whole catalog;
  it is what ``stats()``/``status`` report and what a second process
  compares to detect that the catalog it replayed is the one on disk.

Fingerprint stability across runs leans on two engine invariants: schema
versions iterate in insertion (genealogy) order, and table-version /
SMO-instance uids are assigned deterministically by that same order.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
from typing import TYPE_CHECKING, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.catalog.versions import SchemaVersion
    from repro.core.engine import InVerDa

#: Physical layout entries begin with the hidden row identifier.
ID_COLUMN = "p"


def digest(payload: object) -> str:
    """SHA-256 hex digest of the canonical JSON rendering of ``payload``."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def version_payload(version: "SchemaVersion") -> dict:
    """The canonical (JSON-ready) shape of one schema version."""
    return {
        "tables": {
            name: {
                "columns": [[c.name, c.dtype.value] for c in tv.schema.columns],
                "key_column": tv.key_column,
            }
            for name, tv in sorted(version.tables.items())
        }
    }


def version_fingerprint(version: "SchemaVersion") -> str:
    return digest(version_payload(version))


def engine_layout(engine: "InVerDa") -> dict[str, tuple[str, ...]]:
    """The physical layout the engine believes in: every stored table
    (data, auxiliary, staging scaffolding excluded — it is recreated by
    ``regenerate``) with its full column tuple including the id column."""
    return {
        name: (ID_COLUMN, *table.schema.column_names)
        for name, table in sorted(engine.database.tables.items())
    }


def layout_fingerprint(layout: Mapping[str, Sequence[str]]) -> str:
    return digest({name: list(columns) for name, columns in sorted(layout.items())})


def sqlite_layout(
    connection: sqlite3.Connection, names: Sequence[str]
) -> dict[str, tuple[str, ...]]:
    """{table: ordered columns} for each of ``names`` present in the
    SQLite database behind ``connection`` (absent tables are omitted)."""
    layout: dict[str, tuple[str, ...]] = {}
    for name in names:
        rows = connection.execute(
            "SELECT name FROM pragma_table_info(?) ORDER BY cid", (name,)
        ).fetchall()
        if rows:
            layout[name] = tuple(row[0] for row in rows)
    return layout


def catalog_fingerprint(engine: "InVerDa") -> str:
    """One identity for the whole catalog: genealogy (names, parents,
    shapes, drop flags, in insertion order), the materialization choice,
    and the physical layout it implies."""
    genealogy = engine.genealogy
    payload = {
        "versions": [
            [v.name, v.parent, bool(v.dropped), version_fingerprint(v)]
            for v in genealogy.schema_versions.values()
        ],
        "materialized": sorted(
            smo.uid for smo in genealogy.evolution_smos() if smo.materialized
        ),
        "layout": layout_fingerprint(engine_layout(engine)),
    }
    return digest(payload)
