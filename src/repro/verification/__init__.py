"""Formal and runtime evaluation of BiDEL's bidirectionality (Section 5).

Two complementary validators:

- :mod:`repro.verification.bidirectionality` reproduces the paper's
  *symbolic* proofs: it composes an SMO's two mapping rule sets, simplifies
  the composition with Lemmas 1–5, and checks that exactly the identity
  rules remain (Conditions 26/27) — mechanically re-deriving Section 5 and
  Appendix A.
- :mod:`repro.verification.lenses` validates the same laws (plus the write
  laws 48/49 and the chain laws 50/51) on *concrete data* against the
  executable SMO semantics, covering the identifier-generating SMOs whose
  symbolic proofs the paper also argues informally.
"""

from repro.verification.bidirectionality import (
    SymbolicSmoSpec,
    VerificationResult,
    symbolic_spec_for,
    verify_smo_symbolically,
)
from repro.verification.lenses import (
    check_chain_round_trip,
    check_round_trip,
    check_write_law,
)

__all__ = [
    "SymbolicSmoSpec",
    "VerificationResult",
    "symbolic_spec_for",
    "verify_smo_symbolically",
    "check_round_trip",
    "check_write_law",
    "check_chain_round_trip",
]
