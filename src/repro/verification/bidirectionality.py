"""Mechanical reproduction of the paper's bidirectionality proofs.

For each supported SMO we transcribe the paper's symbolic rule sets
(Section 4 for SPLIT, Appendix B for the rest) and check both symmetric
lens conditions:

- Condition 27, ``D_src = γ_src^data(γ_tgt(D_src))`` — the Section 5
  derivation;
- Condition 26, ``D_tgt = γ_tgt^data(γ_src(D_tgt))`` — the Appendix A
  derivation.

The check composes the two rule sets with Lemma 1, simplifies with Lemmas
2–5 plus subsumption and the closing ω case analysis, and asserts that the
data-table rules collapse to the identity mapping. The identifier-
generating SMOs (FK/condition DECOMPOSE and JOIN) contain function bindings
that symbolic negation cannot unfold (the paper proves those by exhibiting
the simplified result); they are covered by the runtime lens checks in
:mod:`repro.verification.lenses`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datalog.compose import compose_round_trip, is_identity
from repro.datalog.simplify import (
    DomainAxiom,
    omega_completeness_axiom,
    simplify_rules,
)
from repro.datalog.symbolic import (
    SAtom,
    SCompare,
    SCond,
    SRule,
    SVar,
    anon,
)
from repro.errors import VerificationError


@dataclass(frozen=True)
class SymbolicSmoSpec:
    """Everything needed to run both round-trip checks for one SMO."""

    name: str
    gamma_tgt: tuple[SRule, ...]
    gamma_src: tuple[SRule, ...]
    # (visible predicate, stored-table predicate, payload arity)
    src_data: tuple[tuple[str, str, int], ...]
    tgt_data: tuple[tuple[str, str, int], ...]
    src_aux: frozenset[str]
    tgt_aux: frozenset[str]
    axioms: tuple[DomainAxiom, ...] = ()
    omega_free: frozenset[str] = frozenset()
    total_conditions: frozenset[str] = frozenset()


@dataclass
class VerificationResult:
    smo: str
    condition: str
    holds: bool
    simplified: list[SRule]
    problems: list[str] = field(default_factory=list)
    trace: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.holds


def _check(
    spec: SymbolicSmoSpec,
    *,
    condition: str,
    collect_trace: bool = False,
) -> VerificationResult:
    trace: list[str] | None = [] if collect_trace else None
    if condition == "27":
        # Data stored at the source: γ_tgt first (source aux empty), then γ_src.
        rename = {pred: stored for pred, stored, _ in spec.src_data}
        composed = compose_round_trip(
            spec.gamma_tgt,
            spec.gamma_src,
            rename_base=rename,
            empty_predicates=set(spec.src_aux),
        )
        expected = [(pred, stored, arity) for pred, stored, arity in spec.src_data]
        data_preds = {pred for pred, _, _ in spec.src_data}
    elif condition == "26":
        rename = {pred: stored for pred, stored, _ in spec.tgt_data}
        composed = compose_round_trip(
            spec.gamma_src,
            spec.gamma_tgt,
            rename_base=rename,
            empty_predicates=set(spec.tgt_aux),
        )
        expected = [(pred, stored, arity) for pred, stored, arity in spec.tgt_data]
        data_preds = {pred for pred, _, _ in spec.tgt_data}
    else:  # pragma: no cover - internal misuse
        raise VerificationError(f"unknown condition {condition!r}")
    simplified = simplify_rules(
        composed,
        axioms=spec.axioms,
        omega_free=set(spec.omega_free),
        total_conditions=set(spec.total_conditions),
        trace=trace,
    )
    holds, problems = is_identity(simplified, expected, data_predicates=data_preds)
    return VerificationResult(
        smo=spec.name,
        condition=condition,
        holds=holds,
        simplified=simplified,
        problems=problems,
        trace=trace or [],
    )


def verify_smo_symbolically(
    spec: SymbolicSmoSpec, *, collect_trace: bool = False
) -> tuple[VerificationResult, VerificationResult]:
    """Run both lens conditions; returns (condition 27, condition 26)."""
    return (
        _check(spec, condition="27", collect_trace=collect_trace),
        _check(spec, condition="26", collect_trace=collect_trace),
    )


# ---------------------------------------------------------------------------
# The transcribed rule sets
# ---------------------------------------------------------------------------

_p = SVar("p")
_A = SVar("A")
_A2 = SVar("A2")
_B = SVar("B")
_b = SVar("b")


def _cond(name: str, term, positive: bool = True) -> SCond:
    return SCond(name, (term,), positive)


def split_spec() -> SymbolicSmoSpec:
    """SPLIT TABLE T INTO R WITH cR, S WITH cS (Rules 12–25)."""
    gamma_tgt = (
        SRule(
            SAtom("R", (_p, _A)),
            (SAtom("T", (_p, _A)), _cond("cR", _A), SAtom("Rminus", (_p,), False)),
        ),
        SRule(SAtom("R", (_p, _A)), (SAtom("T", (_p, _A)), SAtom("Rstar", (_p,)))),
        SRule(
            SAtom("S", (_p, _A)),
            (
                SAtom("T", (_p, _A)),
                _cond("cS", _A),
                SAtom("Sminus", (_p,), False),
                SAtom("Splus", (_p, anon()), False),
            ),
        ),
        SRule(SAtom("S", (_p, _A)), (SAtom("Splus", (_p, _A)),)),
        SRule(
            SAtom("S", (_p, _A)),
            (
                SAtom("T", (_p, _A)),
                SAtom("Sstar", (_p,)),
                SAtom("Splus", (_p, anon()), False),
            ),
        ),
        SRule(
            SAtom("Tprime", (_p, _A)),
            (
                SAtom("T", (_p, _A)),
                _cond("cR", _A, False),
                _cond("cS", _A, False),
                SAtom("Rstar", (_p,), False),
                SAtom("Sstar", (_p,), False),
            ),
        ),
    )
    gamma_src = (
        SRule(SAtom("T", (_p, _A)), (SAtom("R", (_p, _A)),)),
        SRule(
            SAtom("T", (_p, _A)),
            (SAtom("S", (_p, _A)), SAtom("R", (_p, anon()), False)),
        ),
        SRule(SAtom("T", (_p, _A)), (SAtom("Tprime", (_p, _A)),)),
        SRule(
            SAtom("Rminus", (_p,)),
            (SAtom("S", (_p, _A)), SAtom("R", (_p, anon()), False), _cond("cR", _A)),
        ),
        SRule(SAtom("Rstar", (_p,)), (SAtom("R", (_p, _A)), _cond("cR", _A, False))),
        SRule(
            SAtom("Splus", (_p, _A)),
            (SAtom("S", (_p, _A)), SAtom("R", (_p, _A2)), SCompare("!=", _A, _A2)),
        ),
        SRule(
            SAtom("Sminus", (_p,)),
            (SAtom("R", (_p, _A)), SAtom("S", (_p, anon()), False), _cond("cS", _A)),
        ),
        SRule(SAtom("Sstar", (_p,)), (SAtom("S", (_p, _A)), _cond("cS", _A, False))),
    )
    return SymbolicSmoSpec(
        name="SPLIT",
        gamma_tgt=gamma_tgt,
        gamma_src=gamma_src,
        src_data=(("T", "T_D", 1),),
        tgt_data=(("R", "R_D", 1), ("S", "S_D", 1)),
        src_aux=frozenset({"Rminus", "Rstar", "Splus", "Sminus", "Sstar"}),
        tgt_aux=frozenset({"Tprime"}),
    )


def merge_spec() -> SymbolicSmoSpec:
    """MERGE is SPLIT with γ_tgt and γ_src exchanged (Appendix A)."""
    split = split_spec()
    return SymbolicSmoSpec(
        name="MERGE",
        gamma_tgt=split.gamma_src,
        gamma_src=split.gamma_tgt,
        src_data=split.tgt_data,
        tgt_data=split.src_data,
        src_aux=split.tgt_aux,
        tgt_aux=split.src_aux,
    )


def add_column_spec() -> SymbolicSmoSpec:
    """ADD COLUMN b AS f(...) INTO R (Rules 126–132).

    The value computation ``b = f(A)`` is kept abstract as a condition-like
    binding; for the symbolic check we model it as a condition ``fB(A, b)``
    that is functional in ``A`` — sufficient because the round trips never
    need to negate it after Lemma-2 pruning of the aux table.
    """
    fb = SCond("fB", (_A, _b))
    gamma_tgt = (
        SRule(
            SAtom("R2", (_p, _A, _b)),
            (SAtom("R", (_p, _A)), fb, SAtom("B", (_p, anon()), False)),
        ),
        SRule(SAtom("R2", (_p, _A, _b)), (SAtom("R", (_p, _A)), SAtom("B", (_p, _b)))),
    )
    gamma_src = (
        SRule(SAtom("R", (_p, _A)), (SAtom("R2", (_p, _A, anon())),)),
        SRule(SAtom("B", (_p, _b)), (SAtom("R2", (_p, anon(), _b)),)),
    )
    return SymbolicSmoSpec(
        name="ADD COLUMN",
        gamma_tgt=gamma_tgt,
        gamma_src=gamma_src,
        src_data=(("R", "R_D", 1),),
        tgt_data=(("R2", "R2_D", 2),),
        src_aux=frozenset({"B"}),
        tgt_aux=frozenset(),
        total_conditions=frozenset({"fB"}),
    )


def drop_column_spec() -> SymbolicSmoSpec:
    """DROP COLUMN is the inverse of ADD COLUMN (Appendix B.1)."""
    add = add_column_spec()
    return SymbolicSmoSpec(
        name="DROP COLUMN",
        gamma_tgt=add.gamma_src,
        gamma_src=add.gamma_tgt,
        src_data=add.tgt_data,
        tgt_data=add.src_data,
        src_aux=add.tgt_aux,
        tgt_aux=add.src_aux,
        total_conditions=add.total_conditions,
    )


def decompose_pk_spec() -> SymbolicSmoSpec:
    """DECOMPOSE ON PK (Rules 133–140), with the ω case analysis."""
    from repro.datalog.symbolic import OMEGA

    gamma_tgt = (
        SRule(
            SAtom("S", (_p, _A)),
            (SAtom("R", (_p, _A, anon())), SCompare("!=", _A, OMEGA)),
        ),
        SRule(
            SAtom("T", (_p, _B)),
            (SAtom("R", (_p, anon(), _B)), SCompare("!=", _B, OMEGA)),
        ),
    )
    gamma_src = (
        SRule(SAtom("R", (_p, _A, _B)), (SAtom("S", (_p, _A)), SAtom("T", (_p, _B)))),
        SRule(
            SAtom("R", (_p, _A, OMEGA)),
            (SAtom("S", (_p, _A)), SAtom("T", (_p, anon()), False)),
        ),
        SRule(
            SAtom("R", (_p, OMEGA, _B)),
            (SAtom("S", (_p, anon()), False), SAtom("T", (_p, _B))),
        ),
    )
    return SymbolicSmoSpec(
        name="DECOMPOSE ON PK",
        gamma_tgt=gamma_tgt,
        gamma_src=gamma_src,
        src_data=(("R", "R_D", 2),),
        tgt_data=(("S", "S_D", 1), ("T", "T_D", 1)),
        src_aux=frozenset(),
        tgt_aux=frozenset(),
        axioms=(omega_completeness_axiom({"R_D", "S_D", "T_D"}),),
        omega_free=frozenset({"S_D", "T_D"}),
    )


def outer_join_pk_spec() -> SymbolicSmoSpec:
    """OUTER JOIN ON PK = inverse of DECOMPOSE ON PK."""
    decompose = decompose_pk_spec()
    return SymbolicSmoSpec(
        name="OUTER JOIN ON PK",
        gamma_tgt=decompose.gamma_src,
        gamma_src=decompose.gamma_tgt,
        src_data=decompose.tgt_data,
        tgt_data=decompose.src_data,
        src_aux=decompose.tgt_aux,
        tgt_aux=decompose.src_aux,
        axioms=decompose.axioms,
        omega_free=decompose.omega_free,
    )


def inner_join_pk_spec() -> SymbolicSmoSpec:
    """JOIN ON PK (Rules 177–186)."""
    gamma_tgt = (
        SRule(SAtom("T", (_p, _A, _B)), (SAtom("R", (_p, _A)), SAtom("S", (_p, _B)))),
        SRule(
            SAtom("Rplus", (_p, _A)),
            (SAtom("R", (_p, _A)), SAtom("S", (_p, anon()), False)),
        ),
        SRule(
            SAtom("Splus", (_p, _B)),
            (SAtom("R", (_p, anon()), False), SAtom("S", (_p, _B))),
        ),
    )
    gamma_src = (
        SRule(SAtom("R", (_p, _A)), (SAtom("T", (_p, _A, anon())),)),
        SRule(SAtom("R", (_p, _A)), (SAtom("Rplus", (_p, _A)),)),
        SRule(SAtom("S", (_p, _B)), (SAtom("T", (_p, anon(), _B)),)),
        SRule(SAtom("S", (_p, _B)), (SAtom("Splus", (_p, _B)),)),
    )
    return SymbolicSmoSpec(
        name="JOIN ON PK",
        gamma_tgt=gamma_tgt,
        gamma_src=gamma_src,
        src_data=(("R", "R_D", 1), ("S", "S_D", 1)),
        tgt_data=(("T", "T_D", 2),),
        src_aux=frozenset(),
        tgt_aux=frozenset({"Rplus", "Splus"}),
    )


ALL_SYMBOLIC_SPECS = {
    "split": split_spec,
    "merge": merge_spec,
    "add_column": add_column_spec,
    "drop_column": drop_column_spec,
    "decompose_pk": decompose_pk_spec,
    "outer_join_pk": outer_join_pk_spec,
    "inner_join_pk": inner_join_pk_spec,
}


def symbolic_spec_for(name: str) -> SymbolicSmoSpec:
    try:
        factory = ALL_SYMBOLIC_SPECS[name]
    except KeyError:
        raise VerificationError(
            f"no symbolic spec for {name!r}; available: {sorted(ALL_SYMBOLIC_SPECS)}"
        ) from None
    return factory()
