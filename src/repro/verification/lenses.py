"""Runtime validation of the symmetric lens laws on concrete data.

These checks exercise the *executable* SMO semantics (the same code the
engine runs) against Conditions 26/27, the write laws 48/49, and the chain
laws 50/51, on arbitrary concrete states. They complement the symbolic
proofs: they cover every SMO including the identifier-generating ones, and
they validate the implementation rather than the transcription of the rule
sets.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.bidel.smo.base import FixedContext, KeyedRows, SideState, SmoSemantics, TableChange
from repro.errors import VerificationError


def _project(state: SideState, roles: tuple[str, ...]) -> dict[str, KeyedRows]:
    """The paper's γ^data projection: keep only the data-table roles."""
    return {role: dict(state.get(role, {})) for role in roles}


def _shared_overlay(semantics: SmoSemantics, state: SideState) -> dict[str, KeyedRows]:
    """Shared aux tables (ID) persist across both sides."""
    return {role: dict(state.get(role, {})) for role in semantics.aux_shared() if role in state}


def check_round_trip(
    semantics: SmoSemantics,
    *,
    source_state: SideState | None = None,
    target_state: SideState | None = None,
) -> None:
    """Condition 27 (pass ``source_state``) / Condition 26 (``target_state``).

    The given state must include any stored auxiliary/shared tables of its
    side; the opposite side's aux tables are taken to be empty, exactly as
    in the paper's formal setting.
    """
    if (source_state is None) == (target_state is None):
        raise VerificationError("provide exactly one of source_state / target_state")

    if source_state is not None:
        forward = semantics.map_forward(FixedContext(source_state))
        backward_input = dict(forward)
        backward_input.update(_shared_overlay(semantics, forward))
        back = semantics.map_backward(FixedContext(backward_input))
        expected = _project(source_state, semantics.source_roles)
        actual = _project(back, semantics.source_roles)
        if expected != actual:
            raise VerificationError(
                f"{semantics.describe()}: condition 27 violated\n"
                f"  expected {expected}\n  actual   {actual}"
            )
        return

    back = semantics.map_backward(FixedContext(target_state))
    forward_input = dict(back)
    forward_input.update(_shared_overlay(semantics, back))
    forward = semantics.map_forward(FixedContext(forward_input))
    expected = _project(target_state, semantics.target_roles)
    actual = _project(forward, semantics.target_roles)
    if expected != actual:
        raise VerificationError(
            f"{semantics.describe()}: condition 26 violated\n"
            f"  expected {expected}\n  actual   {actual}"
        )


def check_write_law(
    semantics: SmoSemantics,
    *,
    source_state: SideState,
    write: Callable[[dict[str, KeyedRows]], None],
) -> None:
    """Equation 48: writing on the source of a materialized SMO through the
    lens equals writing on the source directly."""
    # Store the data at the target side.
    target = semantics.map_forward(FixedContext(source_state))
    # Temporarily map back, apply the write, and push forward again.
    visible = semantics.map_backward(FixedContext(target))
    data = _project(visible, semantics.source_roles)
    write(data)
    put_input = dict(visible)
    put_input.update(data)
    put_input.update(_shared_overlay(semantics, visible))
    new_target = semantics.map_forward(FixedContext(put_input))
    # Reading back must equal applying the write to the source directly.
    read_back = _project(
        semantics.map_backward(FixedContext(new_target)), semantics.source_roles
    )
    direct = _project(source_state, semantics.source_roles)
    write(direct)
    if read_back != direct:
        raise VerificationError(
            f"{semantics.describe()}: write law (Eq. 48) violated\n"
            f"  expected {direct}\n  actual   {read_back}"
        )


def check_chain_round_trip(
    chain: list[SmoSemantics],
    *,
    source_state: SideState,
    link: Callable[[SmoSemantics, SideState, SmoSemantics], SideState] | None = None,
) -> None:
    """Equations 50/51 for a linear chain of single-source/single-target
    SMOs: propagate the source state through every γ_tgt, back through
    every γ_src, and compare.

    ``link`` adapts the output state of one SMO to the input roles of the
    next; the default maps the single data output role onto the single data
    input role."""

    def default_link(prev: SmoSemantics, state: SideState, nxt: SmoSemantics) -> SideState:
        out_role = prev.target_roles[0]
        in_role = nxt.source_roles[0]
        return {in_role: state.get(out_role, {})}

    adapt = link or default_link

    states: list[SideState] = [source_state]
    current = source_state
    for index, semantics in enumerate(chain):
        forward = semantics.map_forward(FixedContext(current))
        states.append(forward)
        if index + 1 < len(chain):
            current = adapt(semantics, forward, chain[index + 1])
            # Preserve aux/shared roles produced for the next SMO, if any.
            current.update(_shared_overlay(chain[index + 1], forward))
        else:
            current = forward

    # Walk back down the chain.
    downward = states[-1]
    for index in range(len(chain) - 1, -1, -1):
        semantics = chain[index]
        merged = dict(states[index + 1])
        for role in semantics.target_roles:
            if role in downward:
                merged[role] = downward[role]
        downward = semantics.map_backward(FixedContext(merged))
        if index > 0:
            prev = chain[index - 1]
            out_role = prev.target_roles[0]
            in_role = semantics.source_roles[0]
            downward = {out_role: downward.get(in_role, {})}

    expected = _project(source_state, chain[0].source_roles)
    actual = _project(downward, chain[0].source_roles)
    if expected != actual:
        raise VerificationError(
            "chain round trip (Eq. 51) violated\n"
            f"  expected {expected}\n  actual   {actual}"
        )
