"""Small shared utilities: code metrics, timing, identifier handling."""

from repro.util.codemetrics import CodeMetrics, measure_code
from repro.util.naming import check_identifier, quote_identifier
from repro.util.timing import Stopwatch

__all__ = [
    "CodeMetrics",
    "measure_code",
    "check_identifier",
    "quote_identifier",
    "Stopwatch",
]
