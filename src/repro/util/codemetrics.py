"""Code-size metrics used to reproduce Table 3 of the paper.

The paper compares BiDEL scripts against equivalent handwritten SQL along
three axes: lines of code, number of statements, and number of characters
(with consecutive whitespace collapsed to a single character, as the paper
specifies: "consecutive white-space characters counted as one").
"""

from __future__ import annotations

import re
from dataclasses import dataclass

_COMMENT_LINE = re.compile(r"^\s*--")
_WHITESPACE_RUN = re.compile(r"\s+")


@dataclass(frozen=True)
class CodeMetrics:
    """Size measurements of one script."""

    lines: int
    statements: int
    characters: int

    def ratio_to(self, other: "CodeMetrics") -> "CodeRatio":
        """Express ``self`` relative to ``other`` (``other`` is typically the
        BiDEL script, ``self`` the SQL script)."""
        return CodeRatio(
            lines=self.lines / max(other.lines, 1),
            statements=self.statements / max(other.statements, 1),
            characters=self.characters / max(other.characters, 1),
        )


@dataclass(frozen=True)
class CodeRatio:
    """Relative size of one script versus another (e.g. SQL / BiDEL)."""

    lines: float
    statements: float
    characters: float


def count_lines(code: str) -> int:
    """Count non-empty, non-comment lines."""
    count = 0
    for line in code.splitlines():
        if not line.strip():
            continue
        if _COMMENT_LINE.match(line):
            continue
        count += 1
    return count


def count_statements(code: str) -> int:
    """Count ``;``-terminated statements, ignoring comments and string
    literals so a semicolon inside ``'a;b'`` is not miscounted."""
    in_string = False
    statements = 0
    saw_content = False
    i = 0
    while i < len(code):
        ch = code[i]
        if in_string:
            if ch == "'":
                # '' is an escaped quote inside a SQL string literal
                if i + 1 < len(code) and code[i + 1] == "'":
                    i += 1
                else:
                    in_string = False
        elif ch == "'":
            in_string = True
            saw_content = True
        elif ch == "-" and code[i : i + 2] == "--":
            eol = code.find("\n", i)
            i = len(code) if eol == -1 else eol
        elif ch == ";":
            if saw_content:
                statements += 1
            saw_content = False
        elif not ch.isspace():
            saw_content = True
        i += 1
    if saw_content:
        statements += 1
    return statements


def count_characters(code: str) -> int:
    """Count characters with every run of whitespace collapsed to one
    character and comments removed."""
    stripped_lines = [
        line for line in code.splitlines() if line.strip() and not _COMMENT_LINE.match(line)
    ]
    collapsed = _WHITESPACE_RUN.sub(" ", "\n".join(stripped_lines)).strip()
    return len(collapsed)


def measure_code(code: str) -> CodeMetrics:
    """Measure a script along all three Table-3 axes."""
    return CodeMetrics(
        lines=count_lines(code),
        statements=count_statements(code),
        characters=count_characters(code),
    )
