"""Compatibility shim: the timing primitive moved to ``repro.obs.timing``.

Import :class:`repro.obs.Stopwatch` in new code.
"""

from __future__ import annotations

from repro.obs.timing import Stopwatch

__all__ = ["Stopwatch"]
