"""Minimal timing helper used by the benchmark harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class Stopwatch:
    """Accumulates wall-clock time across several timed sections.

    >>> watch = Stopwatch()
    >>> with watch:
    ...     pass
    >>> watch.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    laps: list[float] = field(default_factory=list)
    _started_at: float | None = None

    def __enter__(self) -> "Stopwatch":
        self._started_at = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._started_at is not None
        lap = time.perf_counter() - self._started_at
        self._started_at = None
        self.elapsed += lap
        self.laps.append(lap)

    @property
    def elapsed_ms(self) -> float:
        return self.elapsed * 1000.0

    def reset(self) -> None:
        self.elapsed = 0.0
        self.laps.clear()
        self._started_at = None
