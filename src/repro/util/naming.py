"""Identifier validation and quoting shared by BiDEL and the SQL generator."""

from __future__ import annotations

import re

from repro.errors import SchemaError

# BiDEL accepts slightly exotic version names such as ``Do!`` (the paper's
# phone app), so version identifiers allow a trailing bang.
_IDENTIFIER = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")
_VERSION_IDENTIFIER = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*!?$")

_SQL_KEYWORDS = frozenset(
    {
        "select", "from", "where", "insert", "update", "delete", "table",
        "view", "trigger", "into", "values", "set", "and", "or", "not",
        "null", "join", "union", "on", "as", "create", "drop", "alter",
        "group", "order", "by", "exists", "in", "is", "like", "case",
        "when", "then", "else", "end",
    }
)


def check_identifier(name: str, *, what: str = "identifier") -> str:
    """Validate a table/column identifier, returning it unchanged."""
    if not _IDENTIFIER.match(name):
        raise SchemaError(f"invalid {what}: {name!r}")
    return name


def check_version_name(name: str) -> str:
    """Validate a schema-version name (``TasKy``, ``Do!``, ``TasKy2``...)."""
    if not _VERSION_IDENTIFIER.match(name):
        raise SchemaError(f"invalid schema version name: {name!r}")
    return name


def quote_identifier(name: str) -> str:
    """Quote an identifier for SQL output when needed."""
    if _IDENTIFIER.match(name) and name.lower() not in _SQL_KEYWORDS:
        return name
    escaped = name.replace('"', '""')
    return f'"{escaped}"'


def physical_name(*parts: str) -> str:
    """Build a deterministic physical object name from name parts.

    Characters outside ``[A-Za-z0-9_]`` (e.g. the bang in ``Do!``) are
    replaced so physical names are always plain identifiers.
    """
    joined = "__".join(parts)
    return re.sub(r"[^A-Za-z0-9_]", "_", joined)
