"""Experiment registry, timing helpers, and result formatting."""

from __future__ import annotations

import time
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

from repro.errors import ReproError


@dataclass
class ExperimentResult:
    """Rows of one regenerated table/figure plus free-form notes."""

    experiment: str
    title: str
    columns: tuple[str, ...]
    rows: list[tuple] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, *values) -> None:
        self.rows.append(tuple(values))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def format(self) -> str:
        header = f"{self.title} [{self.experiment}]"
        lines = [header, "=" * len(header)]
        widths = [len(name) for name in self.columns]
        rendered_rows = []
        for row in self.rows:
            rendered = tuple(_render_cell(value) for value in row)
            rendered_rows.append(rendered)
            for index, cell in enumerate(rendered):
                widths[index] = max(widths[index], len(cell))
        lines.append("  ".join(name.ljust(widths[i]) for i, name in enumerate(self.columns)))
        lines.append("  ".join("-" * widths[i] for i in range(len(self.columns))))
        for rendered in rendered_rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(rendered)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def _render_cell(value) -> str:
    if isinstance(value, float):
        if value >= 100:
            return f"{value:.1f}"
        if value >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


@dataclass(frozen=True)
class Experiment:
    name: str
    title: str
    paper_artifact: str
    runner: Callable[..., ExperimentResult]
    quick_kwargs: dict = field(default_factory=dict)
    paper_kwargs: dict = field(default_factory=dict)

    def run(self, *, paper_scale: bool = False, **overrides) -> ExperimentResult:
        kwargs = dict(self.paper_kwargs if paper_scale else self.quick_kwargs)
        kwargs.update(overrides)
        return self.runner(**kwargs)


REGISTRY: dict[str, Experiment] = {}


def register(experiment: Experiment) -> Experiment:
    if experiment.name in REGISTRY:
        raise ReproError(f"duplicate experiment {experiment.name!r}")
    REGISTRY[experiment.name] = experiment
    return experiment


def get_experiment(name: str) -> Experiment:
    _ensure_loaded()
    try:
        return REGISTRY[name]
    except KeyError:
        raise ReproError(
            f"unknown experiment {name!r}; available: {sorted(REGISTRY)}"
        ) from None


def all_experiments() -> list[Experiment]:
    _ensure_loaded()
    return [REGISTRY[name] for name in sorted(REGISTRY)]


def _ensure_loaded() -> None:
    # Importing the experiment modules populates the registry.
    from repro.bench import experiments  # noqa: F401


def time_call(fn: Callable[[], object], *, repeat: int = 3) -> float:
    """Median wall-clock seconds of ``fn`` over ``repeat`` calls."""
    samples = []
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    samples.sort()
    return samples[len(samples) // 2]


def time_once(fn: Callable[[], object]) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def accumulate(callables: Iterable[Callable[[], object]]) -> float:
    total = 0.0
    for fn in callables:
        start = time.perf_counter()
        fn()
        total += time.perf_counter() - start
    return total
