"""CLI: ``python -m repro.bench <experiment> [--paper-scale]``."""

from __future__ import annotations

import argparse
import sys

from repro.bench.harness import all_experiments, get_experiment


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation tables and figures.",
    )
    parser.add_argument("experiment", nargs="*", help="experiment names (or 'all')")
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="run with paper-sized workloads (slow; defaults are scaled down)",
    )
    args = parser.parse_args(argv)

    if args.list or not args.experiment:
        for experiment in all_experiments():
            print(f"{experiment.name:12s} {experiment.paper_artifact:10s} {experiment.title}")
        return 0

    names = args.experiment
    if names == ["all"]:
        names = [experiment.name for experiment in all_experiments()]
    for name in names:
        experiment = get_experiment(name)
        result = experiment.run(paper_scale=args.paper_scale)
        print(result.format())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
