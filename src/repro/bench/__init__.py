"""Benchmark harness regenerating every table and figure of the paper.

Run ``python -m repro.bench --list`` for the experiment catalog, or
``python -m repro.bench fig8`` (etc.) to print one artifact's rows. The
pytest-benchmark wrappers in ``benchmarks/`` call the same runners.
"""

from repro.bench.harness import Experiment, ExperimentResult, REGISTRY, get_experiment

__all__ = ["Experiment", "ExperimentResult", "REGISTRY", "get_experiment"]
