"""Figure 13: scaling behaviour of two-SMO chains (ADD COLUMN as 2nd SMO).

For every first SMO, build ``v1 —SMO1→ v2 —SMO2=ADD COLUMN→ v3`` over a
growing table R(a, b, c) and measure reading v3's table under the three
materializations. The paper's "calculated" series for the two-hop case is
the sum of the two single-hop times minus the local read (the data is
already in memory after the first hop); measured ≈ calculated shows SMOs
compose without extra overhead.
"""

from __future__ import annotations

from repro.bench.harness import Experiment, ExperimentResult, register, time_call
from repro.sql.connection import connect
from repro.workloads.micro import TWO_SMO_FIRST, V3_READ_TABLE, build_two_smo_scenario


def _read_ms(engine, version: str, table: str, repeat: int) -> float:
    cursor = connect(engine, version, autocommit=True).cursor()
    query = f"SELECT * FROM {table}"
    return time_call(lambda: cursor.execute(query).fetchall(), repeat=repeat) * 1000


def run(
    sizes: tuple[int, ...] = (500, 1000, 2000),
    second: str = "add_column",
    repeat: int = 3,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig13",
        title=f"Figure 13: two-SMO scaling, 2nd SMO = {second} (ms)",
        columns=("first SMO", "rows", "local(v3)", "one hop(v2 mat)", "two hops(v1 mat)", "calculated"),
    )
    table_v3 = V3_READ_TABLE[second]
    for first in sorted(TWO_SMO_FIRST):
        for rows in sizes:
            engine = build_two_smo_scenario(first, second, rows)
            # two hops: data still at v1 (initial materialization)
            two_hops = _read_ms(engine, "v3", table_v3, repeat)
            # one hop: materialize v2
            engine.execute("MATERIALIZE 'v2';")
            one_hop = _read_ms(engine, "v3", table_v3, repeat)
            read_v2_local = _read_ms(engine, "v2", "R", repeat)
            # local: materialize v3
            engine.execute("MATERIALIZE 'v3';")
            local = _read_ms(engine, "v3", table_v3, repeat)
            # v1-materialized read of v2 for the calculation below
            engine.execute("MATERIALIZE 'v1';")
            read_v2_remote = _read_ms(engine, "v2", "R", repeat)
            calculated = read_v2_remote + one_hop - read_v2_local
            result.add(first, rows, local, one_hop, two_hops, calculated)
    result.note(
        "paper shape: local < one hop < two hops; measured two-hop time in "
        "the same range as the calculated composition (~6% deviation in the "
        "paper), i.e. SMOs do not penalize each other"
    )
    return result


register(
    Experiment(
        name="fig13",
        title="Two-SMO chain scaling",
        paper_artifact="Figure 13",
        runner=run,
        quick_kwargs={"sizes": (500, 1000, 2000)},
        paper_kwargs={"sizes": (10_000, 30_000, 100_000, 300_000)},
    )
)
