"""Figure 11: access cost per schema version under all five TasKy
materializations, for three workload mixes (paper mix / read-only /
write-only)."""

from __future__ import annotations

import random
import time

from repro.bench.harness import Experiment, ExperimentResult, register
from repro.catalog.materialization import enumerate_valid_materializations
from repro.workloads.mixes import PAPER_MIX, READ_ONLY, WRITE_ONLY, WorkloadMix, run_mix
from repro.workloads.tasky import build_tasky

_MAT_LABELS = {
    frozenset(): "[]",
    frozenset({"Split"}): "[S]",
    frozenset({"Split", "DropColumn"}): "[S,DC]",
    frozenset({"Decompose"}): "[D]",
    frozenset({"Decompose", "RenameColumn"}): "[D,RC]",
}


def _label(schema) -> str:
    kinds = frozenset(smo.smo_type for smo in schema)
    return _MAT_LABELS.get(kinds, "[" + ",".join(sorted(kinds)) + "]")


def _workload_cost(scenario, version: str, mix: WorkloadMix, ops: int) -> float:
    rng = random.Random(5)
    connection = scenario.connect(version)
    table = "Todo" if version == "Do!" else "Task"

    def make_row():
        row = scenario.next_task()
        if version == "Do!":
            return {"author": row["author"], "task": row["task"]}
        if version == "TasKy2":
            authors = (
                connection.execute("SELECT id FROM Author").fetchall()
                if "Author" in connection.table_names()
                else []
            )
            fk = rng.choice(authors)[0] if authors else None
            return {"task": row["task"], "prio": row["prio"], "author": fk}
        return row

    def update_row(row):
        if version == "Do!":
            return {"task": row["task"] + "!"}
        return {"prio": rng.randint(1, 5)}

    start = time.perf_counter()
    run_mix(connection, table, ops, mix, rng, make_row=make_row, update_row=update_row)
    return time.perf_counter() - start


def run(num_tasks: int = 2000, ops: int = 30) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig11",
        title="Figure 11: workload cost on each version x materialization (seconds)",
        columns=("mix", "materialization", "TasKy", "Do!", "TasKy2"),
    )
    mixes = [("paper mix 50/20/20/10", PAPER_MIX), ("100% reads", READ_ONLY), ("100% writes", WRITE_ONLY)]
    base = build_tasky(10)
    schemas = enumerate_valid_materializations(base.engine.genealogy)
    labels = [_label(schema) for schema in schemas]
    for mix_name, mix in mixes:
        for schema_index, schema in enumerate(schemas):
            scenario = build_tasky(num_tasks)
            own_schemas = enumerate_valid_materializations(scenario.engine.genealogy)
            scenario.engine.apply_materialization(own_schemas[schema_index])
            costs = [
                _workload_cost(scenario, version, mix, ops)
                for version in ("TasKy", "Do!", "TasKy2")
            ]
            result.add(mix_name, labels[schema_index], *costs)
    result.note(
        "paper shape: each version is fastest when its own table versions "
        "are materialized; the globally best schema depends on the mix"
    )
    return result


register(
    Experiment(
        name="fig11",
        title="All materializations x workloads",
        paper_artifact="Figure 11",
        runner=run,
        quick_kwargs={"num_tasks": 2000, "ops": 30},
        paper_kwargs={"num_tasks": 100_000, "ops": 300},
    )
)
