"""Figure 12: optimization potential on the Wikimedia evolution.

Query an early version (the 28th, the paper's v04619) and the last version
(the 171st, v25635) under three materializations — the first, the 109th
(where the data is loaded, v16524), and the 171st version — and report the
query execution times. The paper observes up to two orders of magnitude
between matching and mismatching materializations.
"""

from __future__ import annotations

from repro.bench.harness import Experiment, ExperimentResult, register, time_call
from repro.sql.connection import connect
from repro.workloads.wikimedia import PAPER_VERSION_LABELS, build_wikimedia


def run(scale: float = 0.005, versions: int = 171, repeat: int = 3) -> ExperimentResult:
    scenario = build_wikimedia(scale=scale, versions=versions)
    engine = scenario.engine
    total = len(scenario.version_names)
    query_indices = [min(28, total), total]
    materialization_indices = [1, min(109, total), total]

    result = ExperimentResult(
        experiment="fig12",
        title="Figure 12: Wikimedia query time by materialized version (ms)",
        columns=("queries on", "materialized", "table", "ms"),
    )
    for mat_index in materialization_indices:
        mat_version = scenario.version_at(mat_index)
        engine.execute(f"MATERIALIZE '{mat_version}';")
        for query_index in query_indices:
            query_version = scenario.version_at(query_index)
            cursor = connect(engine, query_version, autocommit=True).cursor()
            for table, _desc in scenario.template_queries(query_version):
                query = f"SELECT * FROM {table}"
                ms = time_call(lambda: cursor.execute(query).fetchall(), repeat=repeat) * 1000
                result.add(
                    f"{query_version} ({PAPER_VERSION_LABELS.get(query_index, '-')})",
                    f"{mat_version} ({PAPER_VERSION_LABELS.get(mat_index, '-')})",
                    table,
                    ms,
                )
    result.note(
        "paper shape: queries are fastest when the materialized version "
        "matches the queried one; long forward chains of ADD COLUMN are "
        "asymmetrically expensive"
    )
    result.note(f"scale={scale} of the Akan wiki (14,359 pages / 536,283 links)")
    return result


register(
    Experiment(
        name="fig12",
        title="Wikimedia optimization potential",
        paper_artifact="Figure 12",
        runner=run,
        quick_kwargs={"scale": 0.005, "versions": 171},
        paper_kwargs={"scale": 1.0, "versions": 171},
    )
)
